//! Corpus-level parallelism: many inputs, one schema, one pipeline per
//! input.
//!
//! The paper's multi-sample inference is a semilattice fold (Fig. 3:
//! `σi = csh(σi−1, S(di))`), so a many-file corpus is embarrassingly
//! parallel at the *file* level too — coarser-grained than the record
//! bundles the streaming driver deals out, with zero coordination while
//! a file is in flight. [`infer_sources_parallel`] runs one full
//! pipeline per input on a small pool of file workers, each folding
//! into its own scoped name arena (the PR 8 discipline: a file's whole
//! data vocabulary is reclaimed when its arena drops; only the
//! schema-sized survivor shape is reinterned by the caller). Results
//! come back in source order, so the caller's `csh` join — and its
//! first-error-wins abort — reproduce the sequential per-file loop
//! byte for byte.
//!
//! The `jobs` budget spans both levels: `min(jobs, files)` file workers
//! run concurrently, and each passes the leftover factor to its file's
//! own sharded/streaming driver, so `--jobs 8` over two files runs two
//! pipelines of four workers instead of one pipeline of eight.

use crate::infer::InferOptions;
use crate::recover::{
    infer_reader_policy_dyn_in, infer_slice_policy_dyn_in, Recovered, RecoveryPolicy,
};
use crate::stream::{StreamError, StreamFormat};
use std::sync::atomic::{AtomicUsize, Ordering};
use tfd_value::Interner;

/// One input of a many-file corpus, plus how to get at its bytes.
#[derive(Debug, Clone, Copy)]
pub enum CorpusSource<'a> {
    /// Stream the file at `path` through the bounded-memory reader
    /// driver in `chunk_size`-byte chunks (the `--stream` pipeline).
    Stream {
        /// Filesystem path of the input.
        path: &'a str,
        /// Read granularity for the chunk feeder.
        chunk_size: usize,
    },
    /// Read the file at `path` whole and shard it in memory (the
    /// `--jobs` pipeline).
    File {
        /// Filesystem path of the input.
        path: &'a str,
    },
    /// A corpus already in memory (the registry's ingest body).
    Bytes(&'a [u8]),
}

/// One source's fold: the recovered summary plus the scoped arena its
/// shape's names live in. Callers [`reintern`](crate::Shape::reintern)
/// the schema-sized shape into a longer-lived arena, then drop the
/// `arena` field to reclaim the file's data vocabulary.
#[derive(Debug)]
pub struct FileSummary {
    /// The per-source fold and its skip report.
    pub recovered: Recovered,
    /// The scoped name arena the fold interned into.
    pub arena: Interner,
}

/// Runs one inference pipeline per source on `min(jobs, sources)` file
/// workers, returning per-source results **in source order**.
///
/// Each worker claims the next unclaimed source, builds a fresh scoped
/// [`Interner`] for it, and runs the full recovery pipeline with the
/// remaining job budget (`jobs / workers`, at least 1) as that file's
/// inner parallelism. An unreadable file surfaces as
/// [`StreamError::Io`] in its slot; other sources still complete.
///
/// The join is the caller's: fold the summaries' shapes with
/// [`csh`](crate::csh) in source order (after reinterning), exactly as
/// the sequential per-file loop did.
#[allow(clippy::expect_used)] // checked invariant, documented at each site
pub fn infer_sources_parallel(
    format: StreamFormat,
    sources: &[CorpusSource<'_>],
    options: &InferOptions,
    policy: &RecoveryPolicy,
    jobs: usize,
) -> Vec<Result<FileSummary, StreamError>> {
    let n = sources.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = jobs.max(1).min(n);
    // The leftover budget becomes each file's inner parallelism, so the
    // total worker count stays ≈ `jobs` across both levels.
    let inner_jobs = (jobs.max(1) / workers).max(1);
    if workers <= 1 {
        return sources
            .iter()
            .map(|s| infer_source(format, s, options, policy, inner_jobs))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<FileSummary, StreamError>>> = (0..n).map(|_| None).collect();
    let collected: Vec<(usize, Result<FileSummary, StreamError>)> = std::thread::scope(|scope| {
        let next = &next;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(src) = sources.get(i) else { break };
                        out.push((i, infer_source(format, src, options, policy, inner_jobs)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("file worker panicked"))
            .collect()
    });
    for (i, r) in collected {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every source index claimed exactly once"))
        .collect()
}

/// One source through the full recovery pipeline, in a fresh arena.
fn infer_source(
    format: StreamFormat,
    source: &CorpusSource<'_>,
    options: &InferOptions,
    policy: &RecoveryPolicy,
    jobs: usize,
) -> Result<FileSummary, StreamError> {
    let arena = Interner::new();
    let recovered = match *source {
        CorpusSource::Stream { path, chunk_size } => {
            let file = std::fs::File::open(path).map_err(StreamError::Io)?;
            infer_reader_policy_dyn_in(format, file, options, policy, chunk_size, jobs, &arena)?
        }
        CorpusSource::File { path } => {
            let bytes = std::fs::read(path).map_err(StreamError::Io)?;
            infer_slice_policy_dyn_in(format, &bytes, options, policy, jobs, &arena)?
        }
        CorpusSource::Bytes(bytes) => {
            infer_slice_policy_dyn_in(format, bytes, options, policy, jobs, &arena)?
        }
    };
    Ok(FileSummary { recovered, arena })
}

/// [`infer_sources_parallel`] over whole files read into memory — the
/// many-file corpus entry (`tfd infer a.json b.json --jobs N`).
pub fn infer_files_parallel(
    format: StreamFormat,
    paths: &[String],
    options: &InferOptions,
    policy: &RecoveryPolicy,
    jobs: usize,
) -> Vec<Result<FileSummary, StreamError>> {
    let sources: Vec<CorpusSource<'_>> = paths
        .iter()
        .map(|p| CorpusSource::File { path: p })
        .collect();
    infer_sources_parallel(format, &sources, options, policy, jobs)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::csh::csh;
    use crate::engine::{infer_options_dyn, wrap_corpus_shape_dyn};
    use crate::Shape;

    /// The sequential per-file fold the parallel entry must reproduce.
    fn sequential_fold(format: StreamFormat, corpora: &[&[u8]], jobs: usize) -> Shape {
        let options = infer_options_dyn(format);
        let mut combined = Shape::Bottom;
        for c in corpora {
            let arena = Interner::new();
            let mut rec = infer_slice_policy_dyn_in(
                format,
                c,
                &options,
                &RecoveryPolicy::default(),
                jobs,
                &arena,
            )
            .unwrap();
            rec.summary.shape.reintern(Interner::global());
            combined = csh(combined, rec.summary.shape);
        }
        wrap_corpus_shape_dyn(format, combined)
    }

    fn parallel_fold(format: StreamFormat, corpora: &[&[u8]], jobs: usize) -> Shape {
        let options = infer_options_dyn(format);
        let sources: Vec<CorpusSource<'_>> =
            corpora.iter().map(|c| CorpusSource::Bytes(c)).collect();
        let results =
            infer_sources_parallel(format, &sources, &options, &RecoveryPolicy::default(), jobs);
        let mut combined = Shape::Bottom;
        for r in results {
            let mut out = r.unwrap();
            out.recovered.summary.shape.reintern(Interner::global());
            combined = csh(combined, out.recovered.summary.shape);
        }
        wrap_corpus_shape_dyn(format, combined)
    }

    #[test]
    fn parallel_files_match_sequential_fold() {
        let corpora: Vec<&[u8]> = vec![
            b"{\"a\": 1}\n{\"a\": 2, \"b\": true}\n",
            b"{\"a\": 2.5}\n{\"c\": null}\n",
            b"{\"a\": 1, \"d\": [1, 2]}\n",
        ];
        let want = sequential_fold(StreamFormat::Json, &corpora, 1);
        for jobs in [1, 2, 3, 8] {
            let got = parallel_fold(StreamFormat::Json, &corpora, jobs);
            assert_eq!(got, want, "jobs {jobs}");
        }
    }

    #[test]
    fn csv_corpora_keep_file_order_in_the_join() {
        // csh appends record fields in first-encounter order, so a
        // wrong join order changes the rendered shape — the files'
        // disjoint columns make any reordering visible.
        let corpora: Vec<&[u8]> = vec![b"a,b\n1,2\n", b"c,a\n3,4\n", b"d\nx\n"];
        let want = sequential_fold(StreamFormat::Csv, &corpora, 1);
        for jobs in [2, 3, 16] {
            let got = parallel_fold(StreamFormat::Csv, &corpora, jobs);
            assert_eq!(got.to_string(), want.to_string(), "jobs {jobs}");
        }
    }

    #[test]
    fn missing_file_errors_in_its_own_slot() {
        let options = infer_options_dyn(StreamFormat::Json);
        let paths = vec![
            "/nonexistent/definitely-missing.json".to_owned(),
            "/nonexistent/also-missing.json".to_owned(),
        ];
        let results = infer_files_parallel(
            StreamFormat::Json,
            &paths,
            &options,
            &RecoveryPolicy::default(),
            4,
        );
        assert_eq!(results.len(), 2);
        for r in results {
            assert!(matches!(r, Err(StreamError::Io(_))));
        }
    }

    #[test]
    fn empty_source_list_is_empty() {
        let options = infer_options_dyn(StreamFormat::Json);
        assert!(infer_sources_parallel(
            StreamFormat::Json,
            &[],
            &options,
            &RecoveryPolicy::default(),
            4
        )
        .is_empty());
    }
}
