//! Resilient ingest: error-recovering, resource-bounded parse→infer.
//!
//! The paper's multi-sample inference is a semilattice fold (Fig. 3:
//! `σi = csh(σi−1, S(di))`), and the fold is associative and
//! commutative. That makes *recovery* composable in a way it is not for
//! most parsers: dropping a malformed record is exactly the same thing
//! as deleting it from the corpus before folding, so a skip-mode run
//! over a corrupted corpus must produce **byte-identically** the shape
//! of the clean subset — a property `tests/recovery_differential.rs`
//! checks for every format × driver × shard-count combination.
//!
//! The module contributes three things on top of the engine:
//!
//! 1. [`RecoveryPolicy`] — how a run responds to malformed records
//!    ([`RecoveryMode::FailFast`] or [`RecoveryMode::Skip`]) and the
//!    hard resource caps every driver honours (`max_record_bytes`,
//!    `max_depth`, and in Skip mode the `max_errors` budget).
//! 2. [`ErrorReport`] — the bounded, document-ordered record of what a
//!    Skip-mode run dropped: the first [`ERROR_REPORT_KEEP`] errors
//!    verbatim, plus the total count and the last error.
//! 3. The policy drivers [`infer_slice_policy`] /
//!    [`infer_reader_policy`] (and their `*_dyn` twins), which wrap the
//!    engine's four pipelines. Fail-fast mode delegates to the engine
//!    with the caps applied; Skip mode re-synchronises at the next
//!    record boundary after every malformed record, using the same
//!    boundary scanner the parallel planner trusts not to split
//!    records.
//!
//! Skip-mode recovery leans on one invariant: the per-format boundary
//! scanners are *resumable state machines over raw bytes* that never
//! feed back into the parser, so a record whose **content** is garbage
//! still gets delimited correctly as long as its string/quote/depth
//! structure closes. Each delimited record then runs through a fresh,
//! context-seeded streamer (the engine's shard primitive), so a failed
//! record reproduces exactly the error the sequential pipeline would
//! report for it — shifted to stream-global coordinates — and a clean
//! record contributes exactly its sequential shape.

use crate::csh::csh;
use crate::engine::{
    infer_reader_parallel_with, infer_slice_with, run_shard, with_format, ChunkFeeder, CsvFormat,
    DataFormat, JsonFormat, TextPos, WorkQueue, XmlFormat,
};
use crate::infer::InferOptions;
use crate::stream::{InferAccumulator, StreamError, StreamFormat, StreamSummary};
use crate::Shape;
use std::io::Read;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tfd_value::{Interner, Value};

/// Default Skip-mode error budget: after this many skipped records the
/// run aborts with [`StreamError::TooManyErrors`] instead of silently
/// inferring a shape from what may be mostly noise.
pub const DEFAULT_MAX_ERRORS: usize = 1000;

/// Default cap on a single record's byte size (16 MiB), matching the
/// front-end streamers' own carry-over default.
pub const DEFAULT_MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;

/// How many skipped errors an [`ErrorReport`] keeps verbatim; beyond
/// this the report keeps counting (and remembers the last error) but
/// drops the middle, so a pathological corpus cannot turn the report
/// itself into a memory hazard.
pub const ERROR_REPORT_KEEP: usize = 256;

/// What a driver does when it meets a malformed record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Stop at the first malformed record and return its error — the
    /// engine's classical behaviour.
    FailFast,
    /// Drop the malformed record, re-synchronise at the next record
    /// boundary, and keep folding; every dropped record is logged in
    /// the run's [`ErrorReport`].
    Skip,
}

/// How a parse→infer run responds to malformed input and how much of
/// any one record it is willing to buffer.
///
/// The default policy is fail-fast with the streamers' default caps, so
/// threading it through the engine changes nothing for existing
/// callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Fail fast or skip-and-log.
    pub mode: RecoveryMode,
    /// Skip mode only: abort with [`StreamError::TooManyErrors`] once
    /// more than this many records have been skipped.
    pub max_errors: usize,
    /// Hard cap on a single record's byte size. In every driver this
    /// bounds the carry-over buffering for records that straddle chunk
    /// boundaries; in Skip mode it is additionally enforced per record,
    /// and an oversized record is dropped like any other bad record.
    pub max_record_bytes: usize,
    /// Overrides the format's nesting-depth limit (JSON default 128,
    /// XML default 256); `None` keeps the format default. CSV has no
    /// nesting and ignores it.
    pub max_depth: Option<usize>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            mode: RecoveryMode::FailFast,
            max_errors: DEFAULT_MAX_ERRORS,
            max_record_bytes: DEFAULT_MAX_RECORD_BYTES,
            max_depth: None,
        }
    }
}

impl RecoveryPolicy {
    /// The default Skip-mode policy: drop malformed records, keep
    /// folding, abort after [`DEFAULT_MAX_ERRORS`] skips.
    pub fn skip() -> Self {
        RecoveryPolicy {
            mode: RecoveryMode::Skip,
            ..RecoveryPolicy::default()
        }
    }
}

/// The document-ordered record of what a Skip-mode run dropped.
///
/// The first [`ERROR_REPORT_KEEP`] errors are kept verbatim; past that
/// the report keeps only the running total and the most recent error,
/// so its memory is bounded no matter how corrupt the corpus is.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ErrorReport {
    errors: Vec<StreamError>,
    total: usize,
    last: Option<StreamError>,
}

impl ErrorReport {
    /// An empty report.
    pub fn new() -> ErrorReport {
        ErrorReport::default()
    }

    /// True when nothing was skipped.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// How many records were skipped in total (kept or not).
    pub fn total(&self) -> usize {
        self.total
    }

    /// The kept document-order prefix of skipped errors (at most
    /// [`ERROR_REPORT_KEEP`] of them).
    pub fn errors(&self) -> &[StreamError] {
        &self.errors
    }

    /// The first skipped error in document order, if any.
    pub fn first(&self) -> Option<&StreamError> {
        self.errors.first()
    }

    /// The last skipped error in document order, if any (kept even when
    /// the middle of the report was dropped).
    pub fn last(&self) -> Option<&StreamError> {
        self.last.as_ref().or_else(|| self.errors.last())
    }

    /// Logs one skipped error (document order is the caller's
    /// responsibility).
    pub fn record(&mut self, e: StreamError) {
        self.total += 1;
        if self.errors.len() < ERROR_REPORT_KEEP {
            self.errors.push(e);
        } else {
            self.last = Some(e);
        }
    }

    /// Appends `other` (whose errors all follow `self`'s in document
    /// order), preserving the kept-prefix + total + last structure.
    pub fn merge(&mut self, other: ErrorReport) {
        if other.total == 0 {
            return;
        }
        let new_last = other.last().cloned();
        // Only extend the kept prefix if `self` has not already dropped
        // errors — otherwise `other`'s errors come after a gap and the
        // prefix would stop being a prefix.
        let self_complete = self.total == self.errors.len();
        self.total += other.total;
        if self_complete {
            for e in other.errors {
                if self.errors.len() < ERROR_REPORT_KEEP {
                    self.errors.push(e);
                } else {
                    break;
                }
            }
        }
        self.last = if self.total > self.errors.len() {
            new_last
        } else {
            None
        };
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    /// Consumes the report into the budget-exceeded error. Must only be
    /// called when at least one error was recorded.
    fn into_budget_error(mut self, limit: usize) -> StreamError {
        let first = self
            .errors
            .drain(..)
            .next()
            .expect("an exceeded budget implies at least one recorded error");
        StreamError::TooManyErrors {
            limit,
            first: Box::new(first),
        }
    }
}

/// A successful (possibly partial) resilient run: the fold over every
/// record that parsed, plus the report of everything that did not.
///
/// As with the engine drivers, `summary.shape` is the *record fold*;
/// lift it with [`DataFormat::wrap_corpus_shape`] /
/// [`crate::engine::wrap_corpus_shape_dyn`] to match the one-shot
/// corpus shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered {
    /// The shape, record count and byte count of the clean subset.
    pub summary: StreamSummary,
    /// What was skipped (empty in fail-fast mode and on clean input).
    pub report: ErrorReport,
}

/// Runs one delimited record through the engine's per-record primitive,
/// folding its value on success and logging its (stream-global) error
/// on failure. The record-size cap is enforced here explicitly, so
/// oversized records are skipped uniformly across drivers.
fn skip_record<F: DataFormat>(
    slice: &[u8],
    pos: &TextPos,
    ctx: &F::Context,
    policy: &RecoveryPolicy,
    interner: &Interner,
    acc: &mut InferAccumulator,
    report: &mut ErrorReport,
) {
    if slice.len() > policy.max_record_bytes {
        report.record(F::wrap_error(F::record_too_large(
            policy.max_record_bytes,
            pos,
        )));
        return;
    }
    // Stage values so a record that errors after partial progress
    // contributes nothing to the fold (a delimited slice holds one
    // record, but this keeps the invariant local and obvious).
    let mut staged: Vec<Value> = Vec::new();
    match run_shard::<F>(slice, pos, ctx, policy, interner, &mut |v| staged.push(v)) {
        Ok(()) => {
            for v in &staged {
                acc.push(v);
            }
        }
        Err(e) => report.record(F::wrap_error(e)),
    }
}

/// Policy-driven parse→infer over an in-memory corpus: the resilient
/// sibling of [`infer_slice`](crate::engine::infer_slice).
///
/// Fail-fast mode is the engine driver with the policy's resource caps
/// applied. Skip mode delimits every record with the format's boundary
/// scanner, runs each through a fresh context-seeded streamer (in
/// `jobs` document-order shards), folds the survivors, and logs the
/// rest — so the returned shape equals, byte for byte, a fail-fast run
/// over the corpus with the bad records deleted.
///
/// # Errors
///
/// In fail-fast mode, the first parse error in document order. In Skip
/// mode, [`StreamError::TooManyErrors`] once more than
/// `policy.max_errors` records were skipped — plus, for an empty CSV
/// corpus, the format's empty-input error, exactly as fail-fast reports
/// it (an absent corpus is not a skippable record).
///
/// ```
/// use tfd_core::engine::JsonFormat;
/// use tfd_core::recover::{infer_slice_policy, RecoveryPolicy};
/// use tfd_core::InferOptions;
///
/// let corpus = br#"{"a": 1} {"a": ???} {"a": 3}"#;
/// let out = infer_slice_policy::<JsonFormat>(
///     corpus,
///     &InferOptions::json(),
///     &RecoveryPolicy::skip(),
///     4,
/// )?;
/// assert_eq!(out.summary.records, 2);
/// assert_eq!(out.report.total(), 1);
/// # Ok::<(), tfd_core::stream::StreamError>(())
/// ```
pub fn infer_slice_policy<F: DataFormat>(
    corpus: &[u8],
    options: &InferOptions,
    policy: &RecoveryPolicy,
    jobs: usize,
) -> Result<Recovered, StreamError> {
    infer_slice_policy_in::<F>(corpus, options, policy, jobs, Interner::global())
}

/// [`infer_slice_policy`] interning every name into `interner`.
///
/// # Errors
///
/// As [`infer_slice_policy`].
pub fn infer_slice_policy_in<F: DataFormat>(
    corpus: &[u8],
    options: &InferOptions,
    policy: &RecoveryPolicy,
    jobs: usize,
    interner: &Interner,
) -> Result<Recovered, StreamError> {
    match policy.mode {
        RecoveryMode::FailFast => {
            let summary = infer_slice_with::<F>(corpus, options, policy, jobs, interner)
                .map_err(F::wrap_error)?;
            Ok(Recovered {
                summary,
                report: ErrorReport::new(),
            })
        }
        RecoveryMode::Skip => skip_slice::<F>(corpus, options, policy, jobs, interner),
    }
}

#[allow(clippy::expect_used)] // checked invariant, documented at each site
/// The Skip-mode in-memory driver (see [`infer_slice_policy`]).
fn skip_slice<F: DataFormat>(
    corpus: &[u8],
    options: &InferOptions,
    policy: &RecoveryPolicy,
    jobs: usize,
    interner: &Interner,
) -> Result<Recovered, StreamError> {
    let n = corpus.len();
    if n == 0 {
        // An empty corpus is not a skippable record: report exactly
        // what fail-fast reports (CsvError::Empty for CSV; an empty
        // summary for the self-describing formats).
        F::prologue(&[], interner).map_err(F::wrap_error)?;
        return Ok(Recovered {
            summary: StreamSummary {
                shape: Shape::Bottom,
                records: 0,
                bytes: 0,
            },
            report: ErrorReport::new(),
        });
    }

    // One pass of the boundary scanner delimits every record.
    let mut scanner = F::boundaries();
    let mut bounds: Vec<usize> = Vec::new();
    F::scan(&mut scanner, corpus, &mut |off| bounds.push(off));

    let mut report = ErrorReport::new();
    let mut pos = TextPos::start();

    // Prologue hunt: the first record that parses as the prologue wins.
    // For the self-describing formats the first candidate always
    // succeeds (consuming nothing); for CSV a corrupt header row is
    // logged and the next record is tried as the header — exactly what
    // deleting the bad row from the corpus would mean.
    let mut start = 0usize;
    let mut k = 0usize;
    let (ctx, data_start) = loop {
        let end = bounds.get(k).copied().unwrap_or(n);
        match F::prologue(&corpus[start..end], interner) {
            Ok((consumed, c)) => {
                F::advance_pos(&mut pos, &corpus[start..start + consumed]);
                break (Some(c), start + consumed);
            }
            Err(e) => {
                report.record(F::wrap_error(F::shift_error(e, &pos)));
                if report.total() > policy.max_errors {
                    return Err(report.into_budget_error(policy.max_errors));
                }
                F::advance_pos(&mut pos, &corpus[start..end]);
                start = end;
                k += 1;
                if start >= n {
                    break (None, n);
                }
            }
        }
    };
    let Some(ctx) = ctx else {
        // Every record failed as a prologue candidate; nothing to fold.
        return Ok(Recovered {
            summary: StreamSummary {
                shape: Shape::Bottom,
                records: 0,
                bytes: n as u64,
            },
            report,
        });
    };

    // Delimit the data records: consecutive boundary-to-boundary
    // slices from the end of the prologue, plus the unterminated tail.
    let mut recs: Vec<(usize, usize)> = Vec::new();
    let mut s = data_start;
    for &b in bounds.iter().filter(|&&b| b > data_start) {
        recs.push((s, b));
        s = b;
    }
    if s < n {
        recs.push((s, n));
    }

    // Shard the record list into document-order runs and recover each
    // run on its own thread, exactly like the engine's shard workers.
    let jobs = jobs.max(1);
    let per_shard = recs.len().div_ceil(jobs.min(recs.len().max(1)));
    let mut shards: Vec<(usize, usize, TextPos)> = Vec::new();
    {
        let mut p = pos;
        let mut i = 0;
        while i < recs.len() {
            let j = (i + per_shard).min(recs.len());
            shards.push((i, j, p));
            F::advance_pos(&mut p, &corpus[recs[i].0..recs[j - 1].1]);
            i = j;
        }
    }
    let results: Vec<(InferAccumulator, ErrorReport)> = std::thread::scope(|scope| {
        let ctx = &ctx;
        let recs = &recs;
        let handles: Vec<_> = shards
            .iter()
            .map(|&(i, j, p)| {
                let options = options.clone();
                scope.spawn(move || {
                    let mut acc = InferAccumulator::new(options);
                    let mut rep = ErrorReport::new();
                    let mut pos = p;
                    for &(s, e) in &recs[i..j] {
                        let slice = &corpus[s..e];
                        skip_record::<F>(slice, &pos, ctx, policy, interner, &mut acc, &mut rep);
                        if rep.total() > policy.max_errors {
                            // This shard alone exceeds the budget, so
                            // the merged run aborts no matter what the
                            // other shards find; stop wasting work.
                            break;
                        }
                        F::advance_pos(&mut pos, slice);
                    }
                    (acc, rep)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("recovery worker panicked"))
            .collect()
    });

    let mut shape = Shape::Bottom;
    let mut records = 0usize;
    for (acc, rep) in results {
        records += acc.records();
        shape = csh(shape, acc.finish());
        report.merge(rep);
    }
    if report.total() > policy.max_errors {
        return Err(report.into_budget_error(policy.max_errors));
    }
    Ok(Recovered {
        summary: StreamSummary {
            shape,
            records,
            bytes: n as u64,
        },
        report,
    })
}

/// A bundle of whole records bound for a Skip-mode parser worker: the
/// reading thread also forwards the record boundaries it already
/// scanned, so the worker can recover per record without re-scanning.
struct SkipBundle {
    idx: usize,
    pos: TextPos,
    bytes: Vec<u8>,
    /// Bundle-relative record end offsets (ascending; a final implicit
    /// segment runs to `bytes.len()` when the last cut falls short,
    /// which only happens for the EOF tail bundle).
    cuts: Vec<usize>,
}

/// Policy-driven streaming parse→infer over any [`Read`] source, in
/// bounded memory: the resilient sibling of
/// [`infer_reader_parallel`](crate::engine::infer_reader_parallel).
///
/// Fail-fast mode is the engine driver with the policy's resource caps
/// applied (including the reading thread's carry cap). Skip mode keeps
/// the same reading-thread/worker split, but workers recover per
/// record, and the reading thread handles the two failures only it can
/// see: a corrupt prologue (the next record is tried as the prologue)
/// and a record that outgrows `max_record_bytes` while straddling
/// chunks (it is dropped *while streaming* — the carry is discarded and
/// re-synchronised at the record's eventual end, so memory stays
/// bounded by the cap, not the record).
///
/// # Errors
///
/// I/O errors always abort (a lost stream is not a malformed record).
/// Otherwise as [`infer_slice_policy`].
pub fn infer_reader_policy<F: DataFormat, R: Read + Send>(
    reader: R,
    options: &InferOptions,
    policy: &RecoveryPolicy,
    chunk_size: usize,
    jobs: usize,
) -> Result<Recovered, StreamError> {
    infer_reader_policy_in::<F, R>(
        reader,
        options,
        policy,
        chunk_size,
        jobs,
        Interner::global(),
    )
}

/// [`infer_reader_policy`] interning every name into `interner`.
///
/// # Errors
///
/// As [`infer_reader_policy`].
pub fn infer_reader_policy_in<F: DataFormat, R: Read + Send>(
    reader: R,
    options: &InferOptions,
    policy: &RecoveryPolicy,
    chunk_size: usize,
    jobs: usize,
    interner: &Interner,
) -> Result<Recovered, StreamError> {
    match policy.mode {
        RecoveryMode::FailFast => {
            let summary = infer_reader_parallel_with::<F, R>(
                reader, options, policy, chunk_size, jobs, interner,
            )?;
            Ok(Recovered {
                summary,
                report: ErrorReport::new(),
            })
        }
        RecoveryMode::Skip => {
            skip_reader::<F, R>(reader, options, policy, chunk_size, jobs, interner)
        }
    }
}

#[allow(clippy::expect_used)] // checked invariant, documented at each site
/// The Skip-mode streaming driver (see [`infer_reader_policy`]).
fn skip_reader<F: DataFormat, R: Read + Send>(
    reader: R,
    options: &InferOptions,
    policy: &RecoveryPolicy,
    chunk_size: usize,
    jobs: usize,
    interner: &Interner,
) -> Result<Recovered, StreamError> {
    let jobs = jobs.max(1);
    // Shared skip counter: workers add their skips so the reading
    // thread can stop dispatching once the budget is certainly blown.
    let err_count = AtomicUsize::new(0);
    // The engine driver's shared injector queue (see
    // `engine::WorkQueue`): idle-worker pull instead of round-robin
    // dealing, byte-budgeted to two chunks per worker.
    let queue: WorkQueue<SkipBundle> =
        WorkQueue::new(jobs.saturating_mul(chunk_size.max(1)).saturating_mul(2));
    std::thread::scope(|scope| {
        let err_count = &err_count;
        let queue = &queue;
        let feeder = ChunkFeeder::spawn(scope, reader, chunk_size);
        let mut scanner = F::boundaries();
        let mut carry: Vec<u8> = Vec::new();
        let mut cuts: Vec<usize> = Vec::new(); // relative to `carry`
        let mut bytes_total = 0u64;
        let mut pos = TextPos::start();
        let mut dropping = false;
        let mut ctx: Option<Arc<F::Context>> = None;
        let mut handles = Vec::new();
        let mut bundle_idx = 0usize;
        // Workers borrow `queue` and block in `pop` until it closes, so
        // no path may leave this closure before `queue.close()` — every
        // failure sets `fatal` and falls through to the single exit.
        let mut fatal: Option<StreamError> = None;
        // Error-report fragments keyed for the document-order merge:
        // reader-side errors land at key 2·(next bundle idx) — they sit
        // between the already-dispatched bundles and the next one —
        // and bundle `k`'s worker report lands at 2k + 1.
        let mut parts: Vec<(u64, ErrorReport)> = Vec::new();

        macro_rules! reader_record_err {
            ($e:expr) => {{
                let mut r = ErrorReport::new();
                r.record($e);
                err_count.fetch_add(1, Ordering::Relaxed);
                parts.push(((bundle_idx as u64) * 2, r));
            }};
        }
        macro_rules! spawn_workers {
            ($ctx_value:expr) => {{
                let ctx_arc = Arc::new($ctx_value);
                for _ in 0..jobs {
                    let worker_ctx = Arc::clone(&ctx_arc);
                    let options = options.clone();
                    handles.push(scope.spawn(move || {
                        let mut out: Vec<(usize, Shape, usize, ErrorReport)> = Vec::new();
                        while let Some(SkipBundle {
                            idx,
                            pos,
                            bytes,
                            mut cuts,
                        }) = queue.pop()
                        {
                            if cuts.last().copied().unwrap_or(0) < bytes.len() {
                                cuts.push(bytes.len());
                            }
                            let mut acc = InferAccumulator::new(options.clone());
                            let mut rep = ErrorReport::new();
                            let mut p = pos;
                            let mut s = 0usize;
                            for e in cuts {
                                let slice = &bytes[s..e];
                                let before = rep.total();
                                skip_record::<F>(
                                    slice,
                                    &p,
                                    &worker_ctx,
                                    policy,
                                    interner,
                                    &mut acc,
                                    &mut rep,
                                );
                                let added = rep.total() - before;
                                if added > 0 {
                                    err_count.fetch_add(added, Ordering::Relaxed);
                                }
                                F::advance_pos(&mut p, slice);
                                s = e;
                            }
                            let records = acc.records();
                            out.push((idx, acc.finish(), records, rep));
                        }
                        out
                    }));
                }
                ctx = Some(ctx_arc);
            }};
        }

        loop {
            if err_count.load(Ordering::Relaxed) > policy.max_errors {
                // The budget is certainly blown: the dispatched bundles
                // form a document-order prefix that already contains
                // more than `max_errors` skips (and therefore the first
                // error), so reading further cannot change the outcome.
                carry.clear();
                cuts.clear();
                break;
            }
            let chunk = match feeder.next() {
                None => break, // EOF
                Some(Err(e)) => {
                    fatal = Some(StreamError::Io(e));
                    break;
                }
                Some(Ok(chunk)) => chunk,
            };
            bytes_total += chunk.len() as u64;
            let mut newb: Vec<usize> = Vec::new(); // chunk-relative
            F::scan(&mut scanner, &chunk, &mut |off| newb.push(off));
            if dropping {
                // The oversized record (already logged) is still open:
                // discard its bytes until its end boundary shows up.
                match newb.first().copied() {
                    None => {
                        F::advance_pos(&mut pos, &chunk);
                        feeder.recycle(chunk);
                        continue;
                    }
                    Some(b0) => {
                        F::advance_pos(&mut pos, &chunk[..b0]);
                        dropping = false;
                        carry.extend_from_slice(&chunk[b0..]);
                        cuts.extend(newb[1..].iter().map(|&b| b - b0));
                    }
                }
            } else {
                let base = carry.len();
                cuts.extend(newb.iter().map(|&b| base + b));
                carry.extend_from_slice(&chunk);
            }
            feeder.recycle(chunk);
            // Prologue hunt over the complete records available so far.
            while ctx.is_none() {
                let Some(&c0) = cuts.first() else { break };
                match F::prologue(&carry[..c0], interner) {
                    Ok((consumed, c)) => {
                        F::advance_pos(&mut pos, &carry[..consumed]);
                        carry.drain(..consumed);
                        for b in &mut cuts {
                            *b -= consumed;
                        }
                        if cuts.first() == Some(&0) {
                            // The prologue was the whole first record
                            // (CSV): its boundary is spent.
                            cuts.remove(0);
                        }
                        spawn_workers!(c);
                    }
                    Err(e) => {
                        reader_record_err!(F::wrap_error(F::shift_error(e, &pos)));
                        F::advance_pos(&mut pos, &carry[..c0]);
                        carry.drain(..c0);
                        cuts.remove(0);
                        for b in &mut cuts {
                            *b -= c0;
                        }
                    }
                }
            }
            // Dispatch everything up to the last known boundary.
            if ctx.is_some() {
                if let Some(&last) = cuts.last() {
                    if last > 0 {
                        let bytes = carry[..last].to_vec();
                        let bcuts: Vec<usize> = std::mem::take(&mut cuts);
                        let bpos = pos;
                        F::advance_pos(&mut pos, &bytes);
                        carry.drain(..last);
                        let size = bytes.len();
                        queue.push(
                            SkipBundle {
                                idx: bundle_idx,
                                pos: bpos,
                                bytes,
                                cuts: bcuts,
                            },
                            size,
                        );
                        bundle_idx += 1;
                    } else {
                        cuts.clear();
                    }
                }
            }
            // After draining, the carry holds only the open record (or
            // open prologue candidate). If it has outgrown the cap,
            // log it and switch to discard mode: memory stays bounded
            // by the cap while the scanner hunts the record's end.
            if carry.len() > policy.max_record_bytes {
                reader_record_err!(F::wrap_error(F::record_too_large(
                    policy.max_record_bytes,
                    &pos,
                )));
                F::advance_pos(&mut pos, &carry);
                carry.clear();
                cuts.clear();
                dropping = true;
            }
        }

        // End of input (budget aborts arrive here too, with an empty
        // carry). A still-dropping record was already logged; an under-
        // budget run finishes the prologue hunt and the tail bundle.
        if fatal.is_none() && !dropping && err_count.load(Ordering::Relaxed) <= policy.max_errors {
            if ctx.is_none() {
                if bytes_total == 0 {
                    // Empty input: behave exactly like fail-fast.
                    if let Err(e) = F::prologue(&[], interner) {
                        fatal = Some(F::wrap_error(e));
                    }
                } else if !carry.is_empty() {
                    // A boundary-free corpus (or one whose every record
                    // already failed the hunt): the rest is the final
                    // prologue candidate.
                    let tail = std::mem::take(&mut carry);
                    match F::prologue(&tail, interner) {
                        Ok((consumed, c)) => {
                            F::advance_pos(&mut pos, &tail[..consumed]);
                            carry = tail[consumed..].to_vec();
                            spawn_workers!(c);
                        }
                        Err(e) => {
                            reader_record_err!(F::wrap_error(F::shift_error(e, &pos)));
                        }
                    }
                }
            }
            if fatal.is_none() && !carry.is_empty() && ctx.is_some() {
                let bytes = std::mem::take(&mut carry);
                let bcuts: Vec<usize> = std::mem::take(&mut cuts);
                let size = bytes.len();
                queue.push(
                    SkipBundle {
                        idx: bundle_idx,
                        pos,
                        bytes,
                        cuts: bcuts,
                    },
                    size,
                );
            }
        }
        // The single exit: release the workers, join, then report.
        queue.close();

        let mut folds: Vec<(usize, Shape, usize, ErrorReport)> = Vec::new();
        for h in handles {
            folds.extend(h.join().expect("recovery worker panicked"));
        }
        if let Some(e) = fatal {
            return Err(e);
        }
        folds.sort_unstable_by_key(|f| f.0);
        let mut shape = Shape::Bottom;
        let mut records = 0usize;
        for (idx, s, r, rep) in folds {
            parts.push((idx as u64 * 2 + 1, rep));
            shape = csh(shape, s);
            records += r;
        }
        // Stable sort: reader-side fragments sharing a key keep their
        // insertion (document) order.
        parts.sort_by_key(|p| p.0);
        let mut report = ErrorReport::new();
        for (_, rep) in parts {
            report.merge(rep);
        }
        if report.total() > policy.max_errors {
            return Err(report.into_budget_error(policy.max_errors));
        }
        Ok(Recovered {
            summary: StreamSummary {
                shape,
                records,
                bytes: bytes_total,
            },
            report,
        })
    })
}

/// [`infer_slice_policy`] for a runtime-chosen format.
///
/// # Errors
///
/// As [`infer_slice_policy`].
pub fn infer_slice_policy_dyn(
    format: StreamFormat,
    corpus: &[u8],
    options: &InferOptions,
    policy: &RecoveryPolicy,
    jobs: usize,
) -> Result<Recovered, StreamError> {
    with_format!(format, F => infer_slice_policy::<F>(corpus, options, policy, jobs))
}

/// [`infer_slice_policy_in`] for a runtime-chosen format.
///
/// # Errors
///
/// As [`infer_slice_policy`].
pub fn infer_slice_policy_dyn_in(
    format: StreamFormat,
    corpus: &[u8],
    options: &InferOptions,
    policy: &RecoveryPolicy,
    jobs: usize,
    interner: &Interner,
) -> Result<Recovered, StreamError> {
    with_format!(format, F => infer_slice_policy_in::<F>(corpus, options, policy, jobs, interner))
}

/// [`infer_reader_policy`] for a runtime-chosen format.
///
/// # Errors
///
/// As [`infer_reader_policy`].
pub fn infer_reader_policy_dyn<R: Read + Send>(
    format: StreamFormat,
    reader: R,
    options: &InferOptions,
    policy: &RecoveryPolicy,
    chunk_size: usize,
    jobs: usize,
) -> Result<Recovered, StreamError> {
    with_format!(format, F => infer_reader_policy::<F, R>(reader, options, policy, chunk_size, jobs))
}

/// [`infer_reader_policy_in`] for a runtime-chosen format.
///
/// # Errors
///
/// As [`infer_reader_policy`].
pub fn infer_reader_policy_dyn_in<R: Read + Send>(
    format: StreamFormat,
    reader: R,
    options: &InferOptions,
    policy: &RecoveryPolicy,
    chunk_size: usize,
    jobs: usize,
    interner: &Interner,
) -> Result<Recovered, StreamError> {
    with_format!(format, F =>
        infer_reader_policy_in::<F, R>(reader, options, policy, chunk_size, jobs, interner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::infer_slice;

    fn skip() -> RecoveryPolicy {
        RecoveryPolicy::skip()
    }

    #[test]
    fn skip_mode_shape_equals_clean_subset_json() {
        let dirty = "{\"a\": 1}\n{\"a\": @}\n{\"a\": 2, \"b\": true}\n[1,]\n{\"a\": 3}\n";
        let clean = "{\"a\": 1}\n{\"a\": 2, \"b\": true}\n{\"a\": 3}\n";
        let opts = InferOptions::json();
        let want = infer_slice::<JsonFormat>(clean.as_bytes(), &opts, 1).unwrap();
        for jobs in [1, 2, 7] {
            let got =
                infer_slice_policy::<JsonFormat>(dirty.as_bytes(), &opts, &skip(), jobs).unwrap();
            assert_eq!(got.summary.shape, want.shape, "jobs {jobs}");
            assert_eq!(got.summary.records, 3, "jobs {jobs}");
            assert_eq!(got.report.total(), 2, "jobs {jobs}");
        }
    }

    #[test]
    fn skip_mode_error_positions_are_stream_global() {
        let dirty = "{\"a\": 1}\n{\"a\": @}\n{\"a\": 3}\n";
        let got =
            infer_slice_policy::<JsonFormat>(dirty.as_bytes(), &InferOptions::json(), &skip(), 3)
                .unwrap();
        assert_eq!(got.report.total(), 1);
        match got.report.first().unwrap() {
            StreamError::Json(e) => assert_eq!(e.pos.line, 2),
            other => panic!("expected a JSON error, got {other:?}"),
        }
    }

    #[test]
    fn skip_mode_csv_recovers_rows_and_a_corrupt_header() {
        let opts = InferOptions::csv();
        // A corrupt data row is dropped; the rest folds.
        let dirty = "a,b\n1,x\n\"bad\"y,2\n3,z\n";
        let clean = "a,b\n1,x\n3,z\n";
        let want = infer_slice::<CsvFormat>(clean.as_bytes(), &opts, 1).unwrap();
        let got = infer_slice_policy::<CsvFormat>(dirty.as_bytes(), &opts, &skip(), 2).unwrap();
        assert_eq!(got.summary.shape, want.shape);
        assert_eq!(got.summary.records, 2);
        assert_eq!(got.report.total(), 1);
        // A corrupt header row (the quote closes, so the row still ends
        // at its newline): the next record becomes the header — exactly
        // what deleting the bad row means.
        let dirty = "\"a\"!,b\nx,y\n1,2\n";
        let clean = "x,y\n1,2\n";
        let want = infer_slice::<CsvFormat>(clean.as_bytes(), &opts, 1).unwrap();
        let got = infer_slice_policy::<CsvFormat>(dirty.as_bytes(), &opts, &skip(), 1).unwrap();
        assert_eq!(got.summary.shape, want.shape);
        assert_eq!(got.report.total(), 1);
    }

    #[test]
    fn skip_mode_empty_csv_is_still_a_hard_error() {
        let e = infer_slice_policy::<CsvFormat>(b"", &InferOptions::csv(), &skip(), 1).unwrap_err();
        assert_eq!(e, StreamError::Csv(tfd_csv::CsvError::Empty));
        let e = infer_reader_policy::<CsvFormat, _>(&b""[..], &InferOptions::csv(), &skip(), 8, 2)
            .unwrap_err();
        assert_eq!(e, StreamError::Csv(tfd_csv::CsvError::Empty));
    }

    #[test]
    fn exceeding_the_error_budget_aborts_with_the_first_error() {
        let dirty = "{\"a\": @}\n{\"b\": @}\n{\"c\": @}\n{\"a\": 1}\n";
        let policy = RecoveryPolicy {
            max_errors: 2,
            ..RecoveryPolicy::skip()
        };
        for jobs in [1, 4] {
            let e = infer_slice_policy::<JsonFormat>(
                dirty.as_bytes(),
                &InferOptions::json(),
                &policy,
                jobs,
            )
            .unwrap_err();
            match e {
                StreamError::TooManyErrors { limit, first } => {
                    assert_eq!(limit, 2);
                    match *first {
                        StreamError::Json(ref pe) => assert_eq!(pe.pos.line, 1),
                        ref other => panic!("expected a JSON first error, got {other:?}"),
                    }
                }
                other => panic!("expected TooManyErrors, got {other:?}"),
            }
        }
    }

    #[test]
    fn reader_skip_agrees_with_slice_skip_across_chunk_sizes() {
        // The corrupt records keep their tag depth balanced, so the
        // boundary scanner still delimits them as single records (an
        // unquoted attribute and an unknown entity are content-level
        // errors the scanner never sees).
        let dirty = "<r><v>1</v></r>\n<bad x=1></bad>\n<r><v>2</v><w/></r>\n<r>&undef;</r>\n<r/>\n";
        let opts = InferOptions::xml();
        let want = infer_slice_policy::<XmlFormat>(dirty.as_bytes(), &opts, &skip(), 1).unwrap();
        assert_eq!(want.report.total(), 2);
        for (chunk, jobs) in [(1, 1), (3, 2), (7, 4), (4096, 2)] {
            let got =
                infer_reader_policy::<XmlFormat, _>(dirty.as_bytes(), &opts, &skip(), chunk, jobs)
                    .unwrap();
            assert_eq!(got.summary.shape, want.summary.shape, "chunk {chunk}");
            assert_eq!(got.summary.records, want.summary.records, "chunk {chunk}");
            assert_eq!(got.report.total(), 2, "chunk {chunk}");
        }
    }

    #[test]
    fn reader_skip_drops_a_record_that_outgrows_the_cap_in_bounded_memory() {
        // Record 2 is a string that never closes until much later; with
        // a 64-byte cap it must be dropped mid-stream and the fold must
        // still see records 1 and 3.
        let mut dirty = String::from("{\"ok\": 1}\n");
        dirty.push_str(&format!("\"{}\"\n", "x".repeat(1000)));
        dirty.push_str("{\"ok\": 3}\n");
        let clean = "{\"ok\": 1}\n{\"ok\": 3}\n";
        let opts = InferOptions::json();
        let policy = RecoveryPolicy {
            max_record_bytes: 64,
            ..RecoveryPolicy::skip()
        };
        let want = infer_slice::<JsonFormat>(clean.as_bytes(), &opts, 1).unwrap();
        for (chunk, jobs) in [(1, 1), (8, 2), (4096, 4)] {
            let got =
                infer_reader_policy::<JsonFormat, _>(dirty.as_bytes(), &opts, &policy, chunk, jobs)
                    .unwrap();
            assert_eq!(got.summary.shape, want.shape, "chunk {chunk}");
            assert_eq!(got.summary.records, 2, "chunk {chunk}");
            assert_eq!(got.report.total(), 1, "chunk {chunk}");
            assert!(
                matches!(
                    got.report.first(),
                    Some(StreamError::Json(e))
                        if matches!(e.kind, tfd_json::ParseErrorKind::RecordTooLarge(64))
                ),
                "chunk {chunk}: {:?}",
                got.report.first()
            );
        }
    }

    #[test]
    fn failfast_policy_matches_the_plain_engine_driver() {
        let corpus = "{\"a\": 1}\n{\"a\": 2}\n";
        let opts = InferOptions::json();
        let plain = infer_slice::<JsonFormat>(corpus.as_bytes(), &opts, 2).unwrap();
        let via_policy = infer_slice_policy::<JsonFormat>(
            corpus.as_bytes(),
            &opts,
            &RecoveryPolicy::default(),
            2,
        )
        .unwrap();
        assert_eq!(via_policy.summary, plain);
        assert!(via_policy.report.is_empty());
    }

    #[test]
    fn error_report_keeps_a_prefix_a_total_and_the_last() {
        let mut r = ErrorReport::new();
        for i in 0..(ERROR_REPORT_KEEP + 10) {
            r.record(StreamError::Csv(tfd_csv::CsvError::UnterminatedQuote(
                i + 1,
            )));
        }
        assert_eq!(r.total(), ERROR_REPORT_KEEP + 10);
        assert_eq!(r.errors().len(), ERROR_REPORT_KEEP);
        assert_eq!(
            r.first(),
            Some(&StreamError::Csv(tfd_csv::CsvError::UnterminatedQuote(1)))
        );
        assert_eq!(
            r.last(),
            Some(&StreamError::Csv(tfd_csv::CsvError::UnterminatedQuote(
                ERROR_REPORT_KEEP + 10
            )))
        );
        // Merging preserves the structure.
        let mut a = ErrorReport::new();
        a.record(StreamError::Csv(tfd_csv::CsvError::Empty));
        let mut b = ErrorReport::new();
        b.record(StreamError::Csv(tfd_csv::CsvError::UnterminatedQuote(9)));
        a.merge(b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.first(), Some(&StreamError::Csv(tfd_csv::CsvError::Empty)));
        assert_eq!(
            a.last(),
            Some(&StreamError::Csv(tfd_csv::CsvError::UnterminatedQuote(9)))
        );
    }
}
