//! # tfd-core — the shape algebra and inference of *Types from data*
//!
//! This crate is the paper's primary contribution (§3):
//!
//! * [`Shape`] — the shape algebra σ (§3.1), with the labelled top shapes
//!   of §3.5, the heterogeneous collections of §6.4 and the `bit`/`date`
//!   primitive extensions of §6.2;
//! * [`is_preferred`] — the preferred shape relation `σ1 ⊑ σ2`
//!   (Definition 1, Fig. 1);
//! * [`csh`] / [`csh_all`] — the common preferred shape (least upper
//!   bound) function (Definition 2, Fig. 2 and Fig. 4);
//! * [`infer`] / [`infer_with`] / [`infer_many`] — shape inference from
//!   sample data `S(d1, …, dn)` (Fig. 3);
//! * [`globalize_env`] — the XML global (by-name) inference mode (§6.2),
//!   returning a [`GlobalShape`]: a root shape plus a [`ShapeEnv`]
//!   definitions table, with recursion represented by [`Shape::Ref`]
//!   μ-references ([`globalize`] is the finite-tree rendering);
//! * [`is_preferred_in`] / [`csh_in`] / [`conforms_in`] / [`tag_of_in`]
//!   — the algebra under a shape environment (coinductive μ-unfolding);
//! * [`tag_of`] — the shape tags of Fig. 4.
//!
//! # Example: the paper's §3.1 row-variable illustration
//!
//! ```
//! use tfd_core::{infer_many, InferOptions, Shape};
//! use tfd_value::{rec, Value};
//!
//! let p1 = rec("Point", [("x", Value::Int(3))]);
//! let p2 = rec("Point", [("x", Value::Int(3)), ("y", Value::Int(4))]);
//! let joined = infer_many([&p1, &p2], &InferOptions::formal());
//! assert_eq!(
//!     joined,
//!     Shape::record("Point", [("x", Shape::Int), ("y", Shape::Int.ceil())])
//! );
//! ```
//!
//! # Relationship to the formal development
//!
//! The subset reachable with [`InferOptions::formal`] is exactly the
//! paper's core calculus; every rule of Figures 1–4 has a corresponding
//! unit test in this crate, and the crate-level property tests (see
//! `tests/` at the workspace root) check Lemma 1 (csh is the least upper
//! bound) and the soundness of inference (`S(dᵢ) ⊑ S(d1, …, dn)`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
mod conforms;
pub mod corpus;
mod csh;
pub mod engine;
mod env;
mod global;
mod infer;
mod multiplicity;
mod prefer;
pub mod recover;
pub mod report;
mod shape;
pub mod stream;
mod tags;

pub use conforms::{conforms, conforms_in, value_matches_tag};
pub use corpus::{infer_files_parallel, infer_sources_parallel, CorpusSource, FileSummary};
pub use csh::{csh, csh_all, csh_in};
pub use engine::{CsvFormat, DataFormat, JsonFormat, XmlFormat};
pub use env::{GlobalShape, ShapeEnv};

/// [`csh`] for callers that only hold references: clones both arguments
/// and delegates. Tests and diagnostic tooling use this; the inference
/// hot path consumes shapes with [`csh`] directly and never clones.
pub fn csh_ref(a: &Shape, b: &Shape) -> Shape {
    csh(a.clone(), b.clone())
}
pub use global::{globalize, globalize_env, globalize_ref};
pub use infer::{infer, infer_many, infer_with, InferOptions};
pub use multiplicity::Multiplicity;
pub use prefer::{is_preferred, is_preferred_global, is_preferred_in};
pub use recover::{ErrorReport, Recovered, RecoveryMode, RecoveryPolicy};
pub use shape::{FieldShape, RecordShape, Shape};
pub use stream::{infer_reader, InferAccumulator, StreamFormat, StreamSummary};
pub use tags::{tag_of, tag_of_in, Tag};
