//! The format-generic inference engine and the sharded parallel driver.
//!
//! Before this module existed the JSON/XML/CSV front-ends were wired
//! into the CLI, the provider macros and the bench harness through three
//! hand-copied dispatch paths. [`DataFormat`] replaces them: one trait
//! capturing everything the pipeline needs from a front-end — one-shot
//! parsing, multi-document parsing, the chunk-fed streamer, the
//! record-boundary scanner, error translation — and every downstream
//! consumer dispatches through it (statically via the [`JsonFormat`] /
//! [`XmlFormat`] / [`CsvFormat`] witnesses, or dynamically via the
//! `*_dyn` entry points keyed by [`StreamFormat`]).
//!
//! On top of the trait sits the parallel driver. The paper's
//! multi-sample inference is a semilattice fold (Fig. 3:
//! `σi = csh(σi−1, S(di))`), which makes corpus inference associative
//! and commutative — and therefore embarrassingly parallel:
//!
//! 1. the format's [resumable boundary scanner] finds shard cut points
//!    that never split a record (`plan`), plus the format prologue (the
//!    CSV header row) that every shard needs;
//! 2. each shard runs the ordinary byte parser into its own
//!    [`InferAccumulator`] on its own `std::thread` worker;
//! 3. the per-shard shapes join with [`csh`] — the semilattice laws
//!    (property-tested in `tests/lattice_laws.rs`) make the result
//!    byte-identical to the sequential fold, which
//!    `tests/parallel_agreement.rs` verifies under adversarial shard
//!    counts, error positions included (the first error in document
//!    order wins, translated to stream-global coordinates).
//!
//! [`infer_slice`] is the in-memory driver; [`infer_reader_parallel`]
//! is its bounded-memory sibling, where the reading thread runs only the
//! cheap boundary scan and fans record bundles out to parser workers.
//!
//! [resumable boundary scanner]: tfd_json::stream::BoundaryScanner

pub use crate::corpus::{infer_files_parallel, infer_sources_parallel, CorpusSource, FileSummary};
use crate::csh::csh;
use crate::infer::InferOptions;
use crate::recover::RecoveryPolicy;
use crate::stream::{InferAccumulator, StreamError, StreamFormat, StreamSummary};
use crate::Shape;
use std::collections::VecDeque;
use std::io::Read;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use tfd_value::{Interner, Name, Value};

/// A position in a byte stream, carried across shard boundaries so
/// record-local error positions can be lifted into the stream-global
/// frame. Which fields matter depends on the format (JSON reports
/// offset/line/char-column, XML line/char-column, CSV line only);
/// [`DataFormat::advance_pos`] keeps all of them current under the
/// format's own line-ending rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextPos {
    /// 0-based byte offset.
    pub offset: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based character column on the current line.
    pub column: usize,
    /// Whether the previous byte was `\r` (CRLF pairs count one line in
    /// the XML/CSV rules).
    pub prev_cr: bool,
}

impl TextPos {
    /// The start of a stream.
    pub fn start() -> TextPos {
        TextPos {
            offset: 0,
            line: 1,
            column: 1,
            prev_cr: false,
        }
    }
}

impl Default for TextPos {
    fn default() -> Self {
        TextPos::start()
    }
}

/// One front-end, as the engine sees it: parsing entry points, the
/// chunk-fed streamer, the scan-only boundary finder, and the error
/// arithmetic that makes sharding transparent.
///
/// The trait is implemented by three zero-sized witnesses —
/// [`JsonFormat`], [`XmlFormat`], [`CsvFormat`] — and everything
/// downstream of the front-ends (CLI, provider macros, bench harness,
/// the parallel driver) dispatches through it instead of hand-copied
/// per-format match arms. All implementations operate with the format's
/// default parser options (the same ones the one-shot `parse_value`
/// entry points use).
pub trait DataFormat {
    /// The front-end's parse error.
    type Error: std::error::Error + Clone + Send + 'static;
    /// The chunk-fed streamer (`tfd_json::stream::Streamer` etc.).
    type Streamer: Send;
    /// The scan-only record-boundary finder.
    type Boundaries: Send;
    /// Per-corpus parse context extracted by [`DataFormat::prologue`]
    /// and seeded into every shard's streamer (the CSV header names;
    /// `()` for the self-describing formats).
    type Context: Clone + Send + Sync;

    /// Format name for diagnostics (`"json"`, `"xml"`, `"csv"`).
    const NAME: &'static str;

    /// The inference preset this format's values are folded with.
    fn infer_options() -> InferOptions;

    /// One-shot parse of a single document to the universal value,
    /// interning names into `interner` (pass
    /// [`Interner::global`] for the legacy process-default behaviour).
    fn parse_value(text: &str, interner: &Interner) -> Result<Value, Self::Error>;

    /// One-shot parse of a whole multi-record corpus, one value per
    /// record (documents for JSON/XML, data rows for CSV), interning
    /// names into `interner`.
    fn parse_many_values(text: &str, interner: &Interner) -> Result<Vec<Value>, Self::Error>;

    /// A fresh chunk-fed streamer interning names into `interner` (an
    /// owned handle — cloning shares the arena, which is how every
    /// shard worker of one corpus interns into the same arena).
    fn streamer(interner: Interner) -> Self::Streamer;

    /// A fresh chunk-fed streamer honouring the policy's resource
    /// limits: `max_record_bytes` caps the carry-over tail buffer (so a
    /// single pathological record cannot buffer unboundedly) and
    /// `max_depth`, when set, overrides the format's nesting limit (CSV
    /// has no nesting and ignores it). Names intern into `interner`.
    fn streamer_with(policy: &RecoveryPolicy, interner: Interner) -> Self::Streamer;

    /// Feeds a chunk through the streamer.
    ///
    /// # Errors
    ///
    /// The first malformed record, with streamer-local positions.
    fn feed(
        streamer: &mut Self::Streamer,
        chunk: &[u8],
        sink: &mut dyn FnMut(Value),
    ) -> Result<(), Self::Error>;

    /// Signals end of input to the streamer.
    ///
    /// # Errors
    ///
    /// As [`DataFormat::feed`].
    fn finish(
        streamer: &mut Self::Streamer,
        sink: &mut dyn FnMut(Value),
    ) -> Result<(), Self::Error>;

    /// A fresh boundary scanner.
    fn boundaries() -> Self::Boundaries;

    /// Feeds a chunk through the boundary scanner; `boundary` receives
    /// the chunk-relative offset just past each completed record — a
    /// position where a fresh parser sees exactly the remaining record
    /// sequence.
    fn scan(scanner: &mut Self::Boundaries, chunk: &[u8], boundary: &mut dyn FnMut(usize));

    /// Consumes the format prologue from the corpus's first complete
    /// record (`first_record` is the bytes up to the first boundary, or
    /// the whole corpus when it has none). CSV parses its header row
    /// here — interning the column names into `interner` — while the
    /// self-describing formats consume nothing. Returns the consumed
    /// byte count and the context every shard is seeded with.
    ///
    /// # Errors
    ///
    /// A malformed prologue (e.g. a CSV header quoting error), exactly
    /// as the sequential streamer would report it.
    fn prologue(
        first_record: &[u8],
        interner: &Interner,
    ) -> Result<(usize, Self::Context), Self::Error>;

    /// Seeds a shard worker's streamer with the prologue context.
    fn seed(streamer: &mut Self::Streamer, ctx: &Self::Context);

    /// Lifts the record-stream fold's shape to the one-shot corpus
    /// shape (CSV folds rows and re-wraps them as a collection; the
    /// record-per-document formats are the identity).
    fn wrap_corpus_shape(shape: Shape) -> Shape;

    /// Advances `pos` over `bytes` under this format's line-ending and
    /// column-counting rules (the same arithmetic the streamer's bulk
    /// position settling uses).
    fn advance_pos(pos: &mut TextPos, bytes: &[u8]);

    /// Translates an error's shard-local position into the stream-global
    /// frame, given the shard's start position.
    fn shift_error(e: Self::Error, start: &TextPos) -> Self::Error;

    /// Wraps the format error into the format-erased [`StreamError`].
    fn wrap_error(e: Self::Error) -> StreamError;

    /// This format's record-size-cap error, reported at the record's
    /// stream-global start position (for the engine drivers that is the
    /// first byte past the previous record boundary, so any
    /// inter-record separator bytes count toward the record).
    fn record_too_large(limit: usize, pos: &TextPos) -> Self::Error;
}

/// Composes a shard-local (line, column) into the stream-global frame:
/// positions on the shard's first line continue the shard start's
/// column; later lines stand on their own.
fn compose_line_col(start: &TextPos, line: usize, column: usize) -> (usize, usize) {
    (
        start.line + line - 1,
        if line == 1 {
            start.column + column - 1
        } else {
            column
        },
    )
}

/// Char-count advance shared by the JSON and XML column rules: columns
/// count characters, so continuation bytes (`10xxxxxx`) extend the
/// previous character.
fn count_chars(bytes: &[u8]) -> usize {
    if bytes.is_ascii() {
        bytes.len()
    } else {
        bytes.iter().filter(|&&b| b & 0xC0 != 0x80).count()
    }
}

/// The JSON front-end witness.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonFormat;

impl DataFormat for JsonFormat {
    type Error = tfd_json::ParseError;
    type Streamer = tfd_json::stream::Streamer;
    type Boundaries = tfd_json::stream::BoundaryScanner;
    type Context = ();

    const NAME: &'static str = "json";

    fn infer_options() -> InferOptions {
        InferOptions::json()
    }

    fn parse_value(text: &str, interner: &Interner) -> Result<Value, Self::Error> {
        tfd_json::parse_value_in(text, &tfd_json::ParserOptions::default(), interner)
    }

    fn parse_many_values(text: &str, interner: &Interner) -> Result<Vec<Value>, Self::Error> {
        tfd_json::parse_many_values_in(text, &tfd_json::ParserOptions::default(), interner)
    }

    fn streamer(interner: Interner) -> Self::Streamer {
        tfd_json::stream::Streamer::with_options_in(tfd_json::ParserOptions::default(), interner)
    }

    fn streamer_with(policy: &RecoveryPolicy, interner: Interner) -> Self::Streamer {
        let mut opts = tfd_json::ParserOptions::default();
        if let Some(depth) = policy.max_depth {
            opts.max_depth = depth;
        }
        let mut s = tfd_json::stream::Streamer::with_options_in(opts, interner);
        s.set_max_record_bytes(policy.max_record_bytes);
        s
    }

    fn feed(
        streamer: &mut Self::Streamer,
        chunk: &[u8],
        sink: &mut dyn FnMut(Value),
    ) -> Result<(), Self::Error> {
        streamer.feed(chunk, &mut |v| sink(v))
    }

    fn finish(
        streamer: &mut Self::Streamer,
        sink: &mut dyn FnMut(Value),
    ) -> Result<(), Self::Error> {
        streamer.finish(&mut |v| sink(v))
    }

    fn boundaries() -> Self::Boundaries {
        tfd_json::stream::BoundaryScanner::new()
    }

    fn scan(scanner: &mut Self::Boundaries, chunk: &[u8], boundary: &mut dyn FnMut(usize)) {
        scanner.feed(chunk, &mut |off| boundary(off));
    }

    fn prologue(
        _first_record: &[u8],
        _interner: &Interner,
    ) -> Result<(usize, Self::Context), Self::Error> {
        Ok((0, ()))
    }

    fn seed(_streamer: &mut Self::Streamer, _ctx: &Self::Context) {}

    fn wrap_corpus_shape(shape: Shape) -> Shape {
        shape
    }

    fn advance_pos(pos: &mut TextPos, bytes: &[u8]) {
        // JSON counts only `\n` as a line ending (matching the one-shot
        // lexer); columns count characters.
        pos.offset += bytes.len();
        let tail = match bytes.iter().rposition(|&b| b == b'\n') {
            Some(last) => {
                pos.line += bytes.iter().filter(|&&b| b == b'\n').count();
                pos.column = 1;
                &bytes[last + 1..]
            }
            None => bytes,
        };
        pos.column += count_chars(tail);
    }

    fn shift_error(e: Self::Error, start: &TextPos) -> Self::Error {
        let (line, column) = compose_line_col(start, e.pos.line, e.pos.column);
        tfd_json::ParseError {
            kind: e.kind,
            pos: tfd_json::Pos {
                offset: start.offset + e.pos.offset,
                line,
                column,
            },
        }
    }

    fn wrap_error(e: Self::Error) -> StreamError {
        StreamError::Json(e)
    }

    fn record_too_large(limit: usize, pos: &TextPos) -> Self::Error {
        tfd_json::ParseError {
            kind: tfd_json::ParseErrorKind::RecordTooLarge(limit),
            pos: tfd_json::Pos {
                offset: pos.offset,
                line: pos.line,
                column: pos.column,
            },
        }
    }
}

/// The XML front-end witness.
#[derive(Debug, Clone, Copy, Default)]
pub struct XmlFormat;

impl DataFormat for XmlFormat {
    type Error = tfd_xml::XmlError;
    type Streamer = tfd_xml::stream::Streamer;
    type Boundaries = tfd_xml::stream::BoundaryScanner;
    type Context = ();

    const NAME: &'static str = "xml";

    fn infer_options() -> InferOptions {
        InferOptions::xml()
    }

    fn parse_value(text: &str, interner: &Interner) -> Result<Value, Self::Error> {
        tfd_xml::parse_value_in(
            text,
            &tfd_xml::XmlOptions::default(),
            &tfd_xml::EncodeOptions::default(),
            interner,
        )
    }

    fn parse_many_values(text: &str, interner: &Interner) -> Result<Vec<Value>, Self::Error> {
        tfd_xml::parse_many_values_in(
            text,
            &tfd_xml::XmlOptions::default(),
            &tfd_xml::EncodeOptions::default(),
            interner,
        )
    }

    fn streamer(interner: Interner) -> Self::Streamer {
        tfd_xml::stream::Streamer::with_options_in(
            &tfd_xml::XmlOptions::default(),
            &tfd_xml::EncodeOptions::default(),
            interner,
        )
    }

    fn streamer_with(policy: &RecoveryPolicy, interner: Interner) -> Self::Streamer {
        let mut opts = tfd_xml::XmlOptions::default();
        if let Some(depth) = policy.max_depth {
            opts.max_depth = depth;
        }
        let mut s = tfd_xml::stream::Streamer::with_options_in(
            &opts,
            &tfd_xml::EncodeOptions::default(),
            interner,
        );
        s.set_max_record_bytes(policy.max_record_bytes);
        s
    }

    fn feed(
        streamer: &mut Self::Streamer,
        chunk: &[u8],
        sink: &mut dyn FnMut(Value),
    ) -> Result<(), Self::Error> {
        streamer.feed(chunk, &mut |v| sink(v))
    }

    fn finish(
        streamer: &mut Self::Streamer,
        sink: &mut dyn FnMut(Value),
    ) -> Result<(), Self::Error> {
        streamer.finish(&mut |v| sink(v))
    }

    fn boundaries() -> Self::Boundaries {
        tfd_xml::stream::BoundaryScanner::new()
    }

    fn scan(scanner: &mut Self::Boundaries, chunk: &[u8], boundary: &mut dyn FnMut(usize)) {
        scanner.feed(chunk, &mut |off| boundary(off));
    }

    fn prologue(
        _first_record: &[u8],
        _interner: &Interner,
    ) -> Result<(usize, Self::Context), Self::Error> {
        Ok((0, ()))
    }

    fn seed(_streamer: &mut Self::Streamer, _ctx: &Self::Context) {}

    fn wrap_corpus_shape(shape: Shape) -> Shape {
        shape
    }

    fn advance_pos(pos: &mut TextPos, bytes: &[u8]) {
        pos.offset += bytes.len();
        // XML: LF, CRLF and bare CR each end a line once (matching
        // `bump_byte`); columns count characters.
        if bytes.iter().all(|&b| b != b'\r') {
            // Fast path (no CR anywhere — the overwhelming case).
            let tail = match bytes.iter().rposition(|&b| b == b'\n') {
                Some(last) => {
                    pos.line += bytes.iter().filter(|&&b| b == b'\n').count();
                    pos.column = 1;
                    &bytes[last + 1..]
                }
                None => bytes,
            };
            pos.column += count_chars(tail);
            if !bytes.is_empty() {
                pos.prev_cr = false;
            }
            return;
        }
        for &b in bytes {
            if b == b'\n' {
                if !pos.prev_cr {
                    pos.line += 1;
                }
                pos.column = 1;
            } else if b == b'\r' {
                pos.line += 1;
                pos.column = 1;
            } else {
                pos.column += usize::from(b & 0xC0 != 0x80);
            }
            pos.prev_cr = b == b'\r';
        }
    }

    fn shift_error(e: Self::Error, start: &TextPos) -> Self::Error {
        let (line, column) = compose_line_col(start, e.line, e.column);
        tfd_xml::XmlError {
            kind: e.kind,
            line,
            column,
        }
    }

    fn wrap_error(e: Self::Error) -> StreamError {
        StreamError::Xml(e)
    }

    fn record_too_large(limit: usize, pos: &TextPos) -> Self::Error {
        tfd_xml::XmlError {
            kind: tfd_xml::XmlErrorKind::RecordTooLarge(limit),
            line: pos.line,
            column: pos.column,
        }
    }
}

/// The CSV front-end witness.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvFormat;

impl DataFormat for CsvFormat {
    type Error = tfd_csv::CsvError;
    type Streamer = tfd_csv::stream::Streamer;
    type Boundaries = tfd_csv::stream::BoundaryScanner;
    /// The header row's interned column names.
    type Context = Arc<Vec<Name>>;

    const NAME: &'static str = "csv";

    fn infer_options() -> InferOptions {
        InferOptions::csv()
    }

    fn parse_value(text: &str, interner: &Interner) -> Result<Value, Self::Error> {
        tfd_csv::parse_value_in(
            text,
            &tfd_csv::CsvOptions::default(),
            &tfd_csv::LiteralOptions::default(),
            interner,
        )
    }

    fn parse_many_values(text: &str, interner: &Interner) -> Result<Vec<Value>, Self::Error> {
        match Self::parse_value(text, interner)? {
            Value::List(rows) => Ok(rows),
            other => unreachable!("the CSV front-end yields a row list, got {other}"),
        }
    }

    fn streamer(interner: Interner) -> Self::Streamer {
        tfd_csv::stream::Streamer::with_options_in(
            &tfd_csv::CsvOptions::default(),
            &tfd_csv::LiteralOptions::default(),
            interner,
        )
    }

    fn streamer_with(policy: &RecoveryPolicy, interner: Interner) -> Self::Streamer {
        let mut s = Self::streamer(interner);
        s.set_max_record_bytes(policy.max_record_bytes);
        s
    }

    fn feed(
        streamer: &mut Self::Streamer,
        chunk: &[u8],
        sink: &mut dyn FnMut(Value),
    ) -> Result<(), Self::Error> {
        streamer.feed(chunk, &mut |v| sink(v))
    }

    fn finish(
        streamer: &mut Self::Streamer,
        sink: &mut dyn FnMut(Value),
    ) -> Result<(), Self::Error> {
        streamer.finish(&mut |v| sink(v))
    }

    fn boundaries() -> Self::Boundaries {
        tfd_csv::stream::BoundaryScanner::new()
    }

    fn scan(scanner: &mut Self::Boundaries, chunk: &[u8], boundary: &mut dyn FnMut(usize)) {
        scanner.feed(chunk, &mut |off| boundary(off));
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    /// The CSV prologue is the header row: it is parsed once here (with
    /// the exact streamer code the sequential path uses, so trimming and
    /// interning behave identically) and its names are seeded into every
    /// shard worker.
    fn prologue(
        first_record: &[u8],
        interner: &Interner,
    ) -> Result<(usize, Self::Context), Self::Error> {
        let mut s = Self::streamer(interner.clone());
        let mut none = |_v: Value| unreachable!("the header record yields no row");
        s.feed(first_record, &mut none)?;
        s.finish(&mut none)?;
        let headers = s
            .headers()
            .expect("a non-empty prologue always captures the header")
            .to_vec();
        Ok((first_record.len(), Arc::new(headers)))
    }

    fn seed(streamer: &mut Self::Streamer, ctx: &Self::Context) {
        streamer.seed_headers(ctx.as_ref().clone());
    }

    fn wrap_corpus_shape(shape: Shape) -> Shape {
        // The one-shot CSV front-end yields the corpus as a collection
        // of rows; the record fold folds the rows themselves.
        Shape::list(shape)
    }

    fn advance_pos(pos: &mut TextPos, bytes: &[u8]) {
        pos.offset += bytes.len();
        // CSV errors carry lines only: LF, CRLF and bare CR each count
        // once, matching the one-shot splitter.
        if bytes.iter().all(|&b| b != b'\r') {
            pos.line += bytes.iter().filter(|&&b| b == b'\n').count();
        } else {
            for &b in bytes {
                if b == b'\r' || (b == b'\n' && !pos.prev_cr) {
                    pos.line += 1;
                }
                pos.prev_cr = b == b'\r';
            }
            return;
        }
        if let Some(&last) = bytes.last() {
            pos.prev_cr = last == b'\r';
        }
    }

    fn shift_error(e: Self::Error, start: &TextPos) -> Self::Error {
        use tfd_csv::CsvError::*;
        match e {
            UnterminatedQuote(l) => UnterminatedQuote(start.line + l - 1),
            CharAfterQuote(l, c) => CharAfterQuote(start.line + l - 1, c),
            InvalidUtf8(l) => InvalidUtf8(start.line + l - 1),
            RecordTooLarge(limit, l) => RecordTooLarge(limit, start.line + l - 1),
            Empty => Empty,
        }
    }

    fn wrap_error(e: Self::Error) -> StreamError {
        StreamError::Csv(e)
    }

    fn record_too_large(limit: usize, pos: &TextPos) -> Self::Error {
        tfd_csv::CsvError::RecordTooLarge(limit, pos.line)
    }
}

// --- Sequential pipelines (the jobs ≤ 1 paths, and what
// --- `stream::infer_reader` now routes through) ---

/// Streams a whole in-memory corpus through the format's chunk-fed
/// front-end into the Fig. 3 fold — the sequential baseline the parallel
/// driver must match byte for byte.
///
/// # Errors
///
/// The first parse error, with stream-global positions.
pub fn infer_slice_seq<F: DataFormat>(
    corpus: &[u8],
    options: &InferOptions,
) -> Result<StreamSummary, F::Error> {
    infer_slice_seq_with::<F>(
        corpus,
        options,
        &RecoveryPolicy::default(),
        Interner::global(),
    )
}

/// [`infer_slice_seq`] under a policy's resource limits (fail-fast: the
/// policy's `mode` and `max_errors` are not consulted here — Skip-mode
/// recovery lives in [`crate::recover`]), interning into `interner`.
pub(crate) fn infer_slice_seq_with<F: DataFormat>(
    corpus: &[u8],
    options: &InferOptions,
    policy: &RecoveryPolicy,
    interner: &Interner,
) -> Result<StreamSummary, F::Error> {
    let mut acc = InferAccumulator::new(options.clone());
    let mut s = F::streamer_with(policy, interner.clone());
    F::feed(&mut s, corpus, &mut |v| acc.push(&v))?;
    F::finish(&mut s, &mut |v| acc.push(&v))?;
    let records = acc.records();
    Ok(StreamSummary {
        shape: acc.finish(),
        records,
        bytes: corpus.len() as u64,
    })
}

/// Streams any [`Read`] source through the format front-end into the
/// fold, sequentially, in `chunk_size`-byte reads — the engine-generic
/// form of [`infer_reader`](crate::stream::infer_reader).
///
/// # Errors
///
/// The first parse error (with stream-global positions) or I/O error.
pub fn infer_reader_seq<F: DataFormat, R: Read>(
    reader: R,
    options: &InferOptions,
    chunk_size: usize,
) -> Result<StreamSummary, StreamError> {
    infer_reader_seq_with::<F, R>(
        reader,
        options,
        &RecoveryPolicy::default(),
        chunk_size,
        Interner::global(),
    )
}

/// [`infer_reader_seq`] under a policy's resource limits (fail-fast; the
/// streamer's carry-over cap bounds memory against a record that never
/// terminates), interning into `interner`.
pub(crate) fn infer_reader_seq_with<F: DataFormat, R: Read>(
    mut reader: R,
    options: &InferOptions,
    policy: &RecoveryPolicy,
    chunk_size: usize,
    interner: &Interner,
) -> Result<StreamSummary, StreamError> {
    let mut acc = InferAccumulator::new(options.clone());
    let mut s = F::streamer_with(policy, interner.clone());
    let mut chunk = vec![0u8; chunk_size.max(1)];
    let mut bytes = 0u64;
    loop {
        let n = reader.read(&mut chunk).map_err(StreamError::Io)?;
        if n == 0 {
            break;
        }
        bytes += n as u64;
        F::feed(&mut s, &chunk[..n], &mut |v| acc.push(&v)).map_err(F::wrap_error)?;
    }
    F::finish(&mut s, &mut |v| acc.push(&v)).map_err(F::wrap_error)?;
    let records = acc.records();
    Ok(StreamSummary {
        shape: acc.finish(),
        records,
        bytes,
    })
}

// --- The sharded parallel driver ---

/// One shard: an absolute byte range of the corpus (whole records only)
/// and the stream position where it starts.
#[derive(Debug, Clone)]
struct Shard {
    start: usize,
    end: usize,
    pos: TextPos,
}

/// Plans a sharded run: scans the corpus once with the format's boundary
/// scanner, consumes the prologue, and cuts the remainder into at most
/// `jobs` ranges at record boundaries nearest the even split points.
/// Fewer ranges come back when the corpus has fewer records than jobs —
/// a shard never splits a record.
fn plan<F: DataFormat>(
    corpus: &[u8],
    jobs: usize,
    interner: &Interner,
) -> Result<(F::Context, Vec<Shard>), F::Error> {
    let n = corpus.len();
    let mut scanner = F::boundaries();
    let mut first: Option<usize> = None;
    let mut cuts: Vec<usize> = Vec::new();
    let mut t = 1usize; // next split target index: target_t = t·n/jobs
    F::scan(&mut scanner, corpus, &mut |off| {
        if first.is_none() {
            first = Some(off);
        }
        while t < jobs && off >= t * n / jobs {
            if off < n && cuts.last() != Some(&off) {
                cuts.push(off);
            }
            t += 1;
        }
    });
    let (consumed, ctx) = F::prologue(&corpus[..first.unwrap_or(n)], interner)?;
    let mut pos = TextPos::start();
    F::advance_pos(&mut pos, &corpus[..consumed]);
    let mut starts = vec![consumed];
    starts.extend(cuts.into_iter().filter(|&c| c > consumed));
    let mut shards = Vec::with_capacity(starts.len());
    for (k, &start) in starts.iter().enumerate() {
        let end = starts.get(k + 1).copied().unwrap_or(n);
        shards.push(Shard { start, end, pos });
        F::advance_pos(&mut pos, &corpus[start..end]);
    }
    Ok((ctx, shards))
}

/// Runs one shard through a fresh (context-seeded, policy-limited)
/// streamer, handing every record to `sink`; errors come back in
/// stream-global coordinates. This is also the per-record recovery
/// primitive: Skip-mode recovery (`crate::recover`) calls it with a
/// single record's bytes, so a failed record reproduces exactly the
/// error the sequential pipeline would report for it.
pub(crate) fn run_shard<F: DataFormat>(
    bytes: &[u8],
    pos: &TextPos,
    ctx: &F::Context,
    policy: &RecoveryPolicy,
    interner: &Interner,
    sink: &mut dyn FnMut(Value),
) -> Result<(), F::Error> {
    let mut s = F::streamer_with(policy, interner.clone());
    F::seed(&mut s, ctx);
    F::feed(&mut s, bytes, sink)
        .and_then(|()| F::finish(&mut s, sink))
        .map_err(|e| F::shift_error(e, pos))
}

/// Parallel sharded parse→infer over an in-memory corpus.
///
/// The corpus is cut at record boundaries into at most `jobs` shards;
/// each shard runs the byte parser into its own [`InferAccumulator`] on
/// its own thread, and the per-shard shapes join with [`csh`]. Because
/// `csh` is an associative, commutative least upper bound, the result is
/// deterministic and identical to the sequential fold — shapes, record
/// counts and error positions alike (`tests/parallel_agreement.rs`
/// proves this differentially). `jobs ≤ 1` runs the plain sequential
/// pipeline.
///
/// The returned shape is the *record fold* (for CSV: the row shape, as
/// with [`infer_reader`](crate::stream::infer_reader)); lift it with
/// [`DataFormat::wrap_corpus_shape`] to match the one-shot corpus shape.
///
/// # Errors
///
/// The first parse error in document order, with stream-global
/// positions — exactly the error the sequential pipeline reports.
///
/// ```
/// use tfd_core::engine::{infer_slice, JsonFormat};
/// use tfd_core::InferOptions;
///
/// let corpus = br#"{"a": 1} {"a": 2.5, "b": true} {"a": 3}"#;
/// let par = infer_slice::<JsonFormat>(corpus, &InferOptions::json(), 4)?;
/// let seq = infer_slice::<JsonFormat>(corpus, &InferOptions::json(), 1)?;
/// assert_eq!(par, seq);
/// assert_eq!(par.records, 3);
/// # Ok::<(), tfd_json::ParseError>(())
/// ```
pub fn infer_slice<F: DataFormat>(
    corpus: &[u8],
    options: &InferOptions,
    jobs: usize,
) -> Result<StreamSummary, F::Error> {
    infer_slice_with::<F>(
        corpus,
        options,
        &RecoveryPolicy::default(),
        jobs,
        Interner::global(),
    )
}

/// [`infer_slice`] interning every name into `interner` — the shard
/// workers all share the one corpus arena, so dropping it after the
/// fold reclaims the corpus's whole vocabulary at once.
///
/// # Errors
///
/// As [`infer_slice`].
pub fn infer_slice_in<F: DataFormat>(
    corpus: &[u8],
    options: &InferOptions,
    jobs: usize,
    interner: &Interner,
) -> Result<StreamSummary, F::Error> {
    infer_slice_with::<F>(corpus, options, &RecoveryPolicy::default(), jobs, interner)
}

#[allow(clippy::expect_used)] // checked invariant, documented at each site
/// [`infer_slice`] under a policy's resource limits (fail-fast;
/// Skip-mode recovery lives in [`crate::recover`]).
pub(crate) fn infer_slice_with<F: DataFormat>(
    corpus: &[u8],
    options: &InferOptions,
    policy: &RecoveryPolicy,
    jobs: usize,
    interner: &Interner,
) -> Result<StreamSummary, F::Error> {
    if jobs <= 1 {
        return infer_slice_seq_with::<F>(corpus, options, policy, interner);
    }
    let (ctx, shards) = plan::<F>(corpus, jobs, interner)?;
    let results: Vec<Result<InferAccumulator, F::Error>> = std::thread::scope(|scope| {
        let ctx = &ctx;
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let bytes = &corpus[shard.start..shard.end];
                let pos = shard.pos;
                let options = options.clone();
                scope.spawn(move || {
                    let mut acc = InferAccumulator::new(options);
                    run_shard::<F>(bytes, &pos, ctx, policy, interner, &mut |v| acc.push(&v))?;
                    Ok(acc)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    let mut shape = Shape::Bottom;
    let mut records = 0usize;
    // Shards come back in document order, so `?` surfaces the first
    // error the sequential pipeline would hit.
    for r in results {
        let acc = r?;
        records += acc.records();
        shape = csh(shape, acc.finish());
    }
    Ok(StreamSummary {
        shape,
        records,
        bytes: corpus.len() as u64,
    })
}

#[allow(clippy::expect_used)] // checked invariant, documented at each site
/// Parallel sharded parse of an in-memory corpus to its record values,
/// in input order — the value-level twin of [`infer_slice`], used by the
/// differential suite to prove the shard workers see exactly the
/// sequential record sequence.
///
/// # Errors
///
/// As [`infer_slice`].
pub fn parse_slice<F: DataFormat>(corpus: &[u8], jobs: usize) -> Result<Vec<Value>, F::Error> {
    let interner = Interner::global();
    if jobs <= 1 {
        let mut out = Vec::new();
        let mut s = F::streamer(interner.clone());
        F::feed(&mut s, corpus, &mut |v| out.push(v))?;
        F::finish(&mut s, &mut |v| out.push(v))?;
        return Ok(out);
    }
    let (ctx, shards) = plan::<F>(corpus, jobs, interner)?;
    let results: Vec<Result<Vec<Value>, F::Error>> = std::thread::scope(|scope| {
        let ctx = &ctx;
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let bytes = &corpus[shard.start..shard.end];
                let pos = shard.pos;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    run_shard::<F>(
                        bytes,
                        &pos,
                        ctx,
                        &RecoveryPolicy::default(),
                        interner,
                        &mut |v| out.push(v),
                    )?;
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    let mut values = Vec::new();
    for r in results {
        values.extend(r?);
    }
    Ok(values)
}

// --- The streaming drivers' scheduler: a byte-budgeted injector queue
// --- shared by all workers, and a double-buffered chunk feeder that
// --- overlaps `Read` with the boundary scan. ---

/// A byte-budgeted multi-consumer work queue — the mutex-protected
/// injector variant of a work-stealing deque (no new deps). The reading
/// thread pushes record bundles tagged with their byte size; whichever
/// worker goes idle first pops the next one, so a bundle holding one
/// oversized record no longer stalls the workers a round-robin deal
/// would have starved.
///
/// `push` blocks while the queued bytes exceed the budget — that
/// back-pressure is what keeps streaming memory bounded — but always
/// admits at least one item, so a single bundle larger than the whole
/// budget still makes progress instead of deadlocking. `pop` drains
/// remaining items after [`close`](WorkQueue::close), then returns
/// `None`.
pub(crate) struct WorkQueue<T> {
    state: Mutex<QueueState<T>>,
    can_pop: Condvar,
    can_push: Condvar,
    cap_bytes: usize,
}

struct QueueState<T> {
    items: VecDeque<(T, usize)>,
    bytes: usize,
    closed: bool,
}

#[allow(clippy::expect_used)] // lock poisoning == a worker panicked, which already aborts the scope
impl<T> WorkQueue<T> {
    pub(crate) fn new(cap_bytes: usize) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                bytes: 0,
                closed: false,
            }),
            can_pop: Condvar::new(),
            can_push: Condvar::new(),
            cap_bytes,
        }
    }

    /// Enqueues `item`, blocking while the queue is over its byte
    /// budget (unless it is empty — one item is always admitted).
    pub(crate) fn push(&self, item: T, size: usize) {
        let mut st = self.state.lock().expect("queue lock");
        while !st.items.is_empty() && st.bytes.saturating_add(size) > self.cap_bytes {
            st = self.can_push.wait(st).expect("queue lock");
        }
        st.bytes += size;
        st.items.push_back((item, size));
        drop(st);
        self.can_pop.notify_one();
    }

    /// Takes the oldest queued item, blocking while the queue is empty
    /// and open. `None` means closed-and-drained: the worker is done.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if let Some((item, size)) = st.items.pop_front() {
                st.bytes -= size;
                drop(st);
                self.can_push.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.can_pop.wait(st).expect("queue lock");
        }
    }

    /// Marks the end of input and wakes every blocked worker. The
    /// producer MUST reach this on every exit path — workers block in
    /// [`pop`](WorkQueue::pop) until it runs, and a scoped join cannot
    /// complete while they do.
    pub(crate) fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.can_pop.notify_all();
        self.can_push.notify_all();
    }
}

/// A double-buffering I/O thread: owns the reader and keeps up to two
/// chunks in flight, so the `Read` syscall for chunk *n+1* overlaps the
/// driver's boundary scan of chunk *n* (before this, the reading thread
/// alternated the two serially — dead bus time on every chunk). Spent
/// chunk buffers flow back through a recycle channel, so steady state
/// allocates nothing.
pub(crate) struct ChunkFeeder {
    rx: mpsc::Receiver<std::io::Result<Vec<u8>>>,
    recycle: mpsc::Sender<Vec<u8>>,
}

impl ChunkFeeder {
    /// Spawns the I/O thread in `scope`. The thread exits on EOF, on
    /// its first I/O error, or when the consuming driver is dropped.
    pub(crate) fn spawn<'scope, R: Read + Send + 'scope>(
        scope: &'scope std::thread::Scope<'scope, '_>,
        mut reader: R,
        chunk_size: usize,
    ) -> Self {
        let (tx, rx) = mpsc::sync_channel::<std::io::Result<Vec<u8>>>(2);
        let (recycle_tx, recycle_rx) = mpsc::channel::<Vec<u8>>();
        scope.spawn(move || loop {
            let mut buf = recycle_rx.try_recv().unwrap_or_default();
            buf.resize(chunk_size.max(1), 0);
            match reader.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    buf.truncate(n);
                    if tx.send(Ok(buf)).is_err() {
                        break; // driver gone (it hit an error) — stop reading
                    }
                }
                Err(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
            }
        });
        ChunkFeeder {
            rx,
            recycle: recycle_tx,
        }
    }

    /// The next chunk: `None` at EOF, `Some(Err)` on the stream's first
    /// I/O error (the feeder stops after it, like the serial loop did).
    pub(crate) fn next(&self) -> Option<std::io::Result<Vec<u8>>> {
        self.rx.recv().ok()
    }

    /// Returns a spent buffer for reuse.
    pub(crate) fn recycle(&self, buf: Vec<u8>) {
        let _ = self.recycle.send(buf);
    }
}

/// A bundle of whole records cut from the stream by the reading thread,
/// bound for a parser worker.
struct Bundle {
    /// Dispatch order — the tiebreak that makes "first error in document
    /// order" well-defined across workers.
    idx: usize,
    /// Stream position where the bundle starts.
    pos: TextPos,
    bytes: Vec<u8>,
}

/// Parallel streaming parse→infer over any [`Read`] source, in bounded
/// memory.
///
/// Three thread roles overlap: a `ChunkFeeder` I/O thread keeps the
/// next `Read` in flight while the driver thread runs the cheap
/// boundary scan, cutting chunks at the last record boundary into
/// complete-record bundles; `jobs` parser workers pull those bundles
/// from a shared byte-budgeted `WorkQueue` — whichever worker goes
/// idle first takes the next bundle, so skewed record sizes no longer
/// idle the pool the way the old round-robin deal did. Each worker
/// folds each bundle into its own [`InferAccumulator`] and returns one
/// shape *per bundle*, which the merge joins with [`csh`] in bundle
/// order — `csh` appends record fields in first-encounter order, so
/// only the document-order join reproduces the sequential fold byte for
/// byte (shapes stay schema-sized, so keeping one per bundle costs
/// little; the scheduler changes who parses a bundle, never the join
/// order). Records that straddle chunk ends ride along in the carry
/// buffer, so peak memory is O(jobs · chunk + longest record + one
/// shape per bundle) regardless of corpus size. `jobs ≤ 1` runs the
/// sequential [`infer_reader_seq`].
///
/// # Errors
///
/// The first parse error in document order (stream-global positions) or
/// I/O error — exactly what the sequential pipeline reports.
pub fn infer_reader_parallel<F: DataFormat, R: Read + Send>(
    reader: R,
    options: &InferOptions,
    chunk_size: usize,
    jobs: usize,
) -> Result<StreamSummary, StreamError> {
    infer_reader_parallel_with::<F, R>(
        reader,
        options,
        &RecoveryPolicy::default(),
        chunk_size,
        jobs,
        Interner::global(),
    )
}

/// [`infer_reader_parallel`] interning every name into `interner` — the
/// parser workers all share the one corpus arena.
///
/// # Errors
///
/// As [`infer_reader_parallel`].
pub fn infer_reader_parallel_in<F: DataFormat, R: Read + Send>(
    reader: R,
    options: &InferOptions,
    chunk_size: usize,
    jobs: usize,
    interner: &Interner,
) -> Result<StreamSummary, StreamError> {
    infer_reader_parallel_with::<F, R>(
        reader,
        options,
        &RecoveryPolicy::default(),
        chunk_size,
        jobs,
        interner,
    )
}

#[allow(clippy::expect_used)] // checked invariant, documented at each site
/// [`infer_reader_parallel`] under a policy's resource limits
/// (fail-fast). On top of the per-worker streamer caps, the reading
/// thread's own carry buffer is bounded: a record that outgrows
/// `max_record_bytes` while straddling chunks aborts with the format's
/// record-size error instead of buffering without bound.
pub(crate) fn infer_reader_parallel_with<F: DataFormat, R: Read + Send>(
    reader: R,
    options: &InferOptions,
    policy: &RecoveryPolicy,
    chunk_size: usize,
    jobs: usize,
    interner: &Interner,
) -> Result<StreamSummary, StreamError> {
    if jobs <= 1 {
        return infer_reader_seq_with::<F, R>(reader, options, policy, chunk_size, interner);
    }
    let failed = AtomicBool::new(false);
    // The smallest bundle index any worker has failed on: bundles past
    // it are beyond the (sequentially poisoned) first error and are
    // skipped, exactly like the sequential pipeline never parsing them.
    let poisoned = AtomicUsize::new(usize::MAX);
    // Byte budget ≈ two chunks per worker in flight: enough slack that
    // workers never starve behind the scan, small enough that streaming
    // memory stays O(jobs · chunk).
    let queue: WorkQueue<Bundle> =
        WorkQueue::new(jobs.saturating_mul(chunk_size.max(1)).saturating_mul(2));
    std::thread::scope(|scope| {
        let queue = &queue;
        let failed = &failed;
        let poisoned = &poisoned;
        let feeder = ChunkFeeder::spawn(scope, reader, chunk_size);
        let mut scanner = F::boundaries();
        let mut carry: Vec<u8> = Vec::new();
        let mut boundaries: Vec<usize> = Vec::new(); // relative to `carry`
        let mut bytes_total = 0u64;
        let mut pos = TextPos::start();
        let mut ctx_established = false;
        let mut handles = Vec::new();
        let mut bundle_idx = 0usize;
        // Workers borrow `queue` and block in `pop` until it closes, so
        // no path may leave this closure before `queue.close()` runs —
        // an early `return`/`?` would deadlock the scope join. Every
        // failure sets `fatal` and falls through to the single exit.
        let mut fatal: Option<StreamError> = None;

        // Consumes the prologue from `carry[..first_record_end]` and
        // spawns the worker pool (deferred until here because workers
        // need the context).
        macro_rules! establish_ctx {
            ($first_record_end:expr) => {{
                match F::prologue(&carry[..$first_record_end], interner) {
                    Err(e) => Err(F::wrap_error(e)),
                    Ok((consumed, c)) => {
                        F::advance_pos(&mut pos, &carry[..consumed]);
                        carry.drain(..consumed);
                        for b in &mut boundaries {
                            *b -= consumed;
                        }
                        let ctx_arc = Arc::new(c);
                        for _ in 0..jobs {
                            let worker_ctx = Arc::clone(&ctx_arc);
                            let options = options.clone();
                            handles.push(scope.spawn(move || {
                                let mut folds: Vec<(usize, Shape, usize)> = Vec::new();
                                let mut first_err: Option<(usize, F::Error)> = None;
                                while let Some(Bundle { idx, pos, bytes }) = queue.pop() {
                                    if idx > poisoned.load(Ordering::Relaxed) {
                                        continue;
                                    }
                                    let mut acc = InferAccumulator::new(options.clone());
                                    match run_shard::<F>(
                                        &bytes,
                                        &pos,
                                        &worker_ctx,
                                        policy,
                                        interner,
                                        &mut |v| acc.push(&v),
                                    ) {
                                        Ok(()) => {
                                            let records = acc.records();
                                            folds.push((idx, acc.finish(), records));
                                        }
                                        Err(e) => {
                                            // Earlier bundles (possibly on
                                            // other workers) must still
                                            // parse — one of them may hold
                                            // an even earlier error.
                                            poisoned.fetch_min(idx, Ordering::Relaxed);
                                            failed.store(true, Ordering::Relaxed);
                                            if first_err
                                                .as_ref()
                                                .is_none_or(|(best, _)| idx < *best)
                                            {
                                                first_err = Some((idx, e));
                                            }
                                        }
                                    }
                                }
                                (first_err, folds)
                            }));
                        }
                        Ok(())
                    }
                }
            }};
        }

        loop {
            // A worker hit a parse error: the first error in document
            // order is already among the dispatched bundles (every
            // earlier bundle parsed clean or will surface an even
            // earlier error), so reading further is pure waste — the
            // sequential pipeline would have stopped here too.
            if failed.load(Ordering::Relaxed) {
                carry.clear();
                break;
            }
            let chunk = match feeder.next() {
                None => break, // EOF
                Some(Err(e)) => {
                    fatal = Some(StreamError::Io(e));
                    break;
                }
                Some(Ok(chunk)) => chunk,
            };
            bytes_total += chunk.len() as u64;
            let base = carry.len();
            F::scan(&mut scanner, &chunk, &mut |off| {
                boundaries.push(base + off);
            });
            carry.extend_from_slice(&chunk);
            feeder.recycle(chunk);
            if !ctx_established {
                match boundaries.first().copied() {
                    Some(b0) => {
                        if let Err(e) = establish_ctx!(b0) {
                            fatal = Some(e);
                            break;
                        }
                        ctx_established = true;
                    }
                    None => continue, // no complete record yet
                }
            }
            if let Some(&last) = boundaries.last() {
                if last > 0 {
                    let bundle: Vec<u8> = carry[..last].to_vec();
                    let bpos = pos;
                    F::advance_pos(&mut pos, &bundle);
                    carry.drain(..last);
                    let size = bundle.len();
                    queue.push(
                        Bundle {
                            idx: bundle_idx,
                            pos: bpos,
                            bytes: bundle,
                        },
                        size,
                    );
                    bundle_idx += 1;
                }
                boundaries.clear();
            }
            // After draining complete records, the carry holds only the
            // open record: bound it, so one pathological record cannot
            // buffer the rest of the stream.
            if carry.len() > policy.max_record_bytes {
                fatal = Some(F::wrap_error(F::record_too_large(
                    policy.max_record_bytes,
                    &pos,
                )));
                break;
            }
        }
        if fatal.is_none() {
            // End of input: whatever never completed a record is the
            // prologue (a boundary-free corpus) …
            if !ctx_established {
                let end = carry.len();
                if let Err(e) = establish_ctx!(end) {
                    fatal = Some(e);
                }
            }
            // … and the remaining tail is the final bundle, whose worker
            // `finish` reproduces the sequential EOF behaviour.
            if fatal.is_none() && !carry.is_empty() {
                let bundle = std::mem::take(&mut carry);
                let size = bundle.len();
                queue.push(
                    Bundle {
                        idx: bundle_idx,
                        pos,
                        bytes: bundle,
                    },
                    size,
                );
            }
        }
        // The single exit: release the workers, join, then report.
        queue.close();

        let mut folds: Vec<(usize, Shape, usize)> = Vec::new();
        let mut first_err: Option<(usize, F::Error)> = None;
        for h in handles {
            let (err, worker_folds) = h.join().expect("parser worker panicked");
            if let Some((idx, e)) = err {
                if first_err.as_ref().is_none_or(|(best, _)| idx < *best) {
                    first_err = Some((idx, e));
                }
            }
            folds.extend(worker_folds);
        }
        // Reader-side failures (I/O, carry cap, prologue) outrank
        // worker parse errors, as they did when the serial reader
        // returned them before joining.
        if let Some(e) = fatal {
            return Err(e);
        }
        if let Some((_, e)) = first_err {
            return Err(F::wrap_error(e));
        }
        // Join the per-bundle shapes in document order: csh appends
        // record fields in first-encounter order, so this — and only
        // this — order reproduces the sequential fold byte for byte.
        folds.sort_unstable_by_key(|(idx, _, _)| *idx);
        let mut shape = Shape::Bottom;
        let mut records = 0usize;
        for (_, s, r) in folds {
            shape = csh(shape, s);
            records += r;
        }
        Ok(StreamSummary {
            shape,
            records,
            bytes: bytes_total,
        })
    })
}

// --- Dynamic dispatch: one place that maps a runtime `StreamFormat` to
// --- the static witnesses, replacing the per-format match arms the
// --- CLI, the provider macros and the bench harness used to carry. ---

/// Dispatches `$body` with `$F` bound to the witness for `$fmt`.
macro_rules! with_format {
    ($fmt:expr, $F:ident => $body:expr) => {
        match $fmt {
            StreamFormat::Json => {
                type $F = JsonFormat;
                $body
            }
            StreamFormat::Xml => {
                type $F = XmlFormat;
                $body
            }
            StreamFormat::Csv => {
                type $F = CsvFormat;
                $body
            }
        }
    };
}
pub(crate) use with_format;

/// The inference preset for a runtime-chosen format.
pub fn infer_options_dyn(format: StreamFormat) -> InferOptions {
    with_format!(format, F => F::infer_options())
}

/// One-shot single-document parse for a runtime-chosen format.
///
/// # Errors
///
/// The format's parse error, format-erased.
pub fn parse_value_dyn(format: StreamFormat, text: &str) -> Result<Value, StreamError> {
    parse_value_dyn_in(format, text, Interner::global())
}

/// [`parse_value_dyn`] interning into `interner`.
///
/// # Errors
///
/// The format's parse error, format-erased.
pub fn parse_value_dyn_in(
    format: StreamFormat,
    text: &str,
    interner: &Interner,
) -> Result<Value, StreamError> {
    with_format!(format, F => F::parse_value(text, interner).map_err(F::wrap_error))
}

/// One-shot multi-record parse for a runtime-chosen format.
///
/// # Errors
///
/// The format's parse error, format-erased.
pub fn parse_many_values_dyn(format: StreamFormat, text: &str) -> Result<Vec<Value>, StreamError> {
    parse_many_values_dyn_in(format, text, Interner::global())
}

/// [`parse_many_values_dyn`] interning into `interner`.
///
/// # Errors
///
/// The format's parse error, format-erased.
pub fn parse_many_values_dyn_in(
    format: StreamFormat,
    text: &str,
    interner: &Interner,
) -> Result<Vec<Value>, StreamError> {
    with_format!(format, F => F::parse_many_values(text, interner).map_err(F::wrap_error))
}

/// Lifts the record fold's shape to the one-shot corpus shape for a
/// runtime-chosen format (CSV re-wraps its row fold as a collection).
pub fn wrap_corpus_shape_dyn(format: StreamFormat, shape: Shape) -> Shape {
    with_format!(format, F => F::wrap_corpus_shape(shape))
}

/// [`infer_slice`] for a runtime-chosen format.
///
/// # Errors
///
/// As [`infer_slice`], format-erased.
pub fn infer_slice_dyn(
    format: StreamFormat,
    corpus: &[u8],
    options: &InferOptions,
    jobs: usize,
) -> Result<StreamSummary, StreamError> {
    infer_slice_dyn_in(format, corpus, options, jobs, Interner::global())
}

/// [`infer_slice_in`] for a runtime-chosen format.
///
/// # Errors
///
/// As [`infer_slice`], format-erased.
pub fn infer_slice_dyn_in(
    format: StreamFormat,
    corpus: &[u8],
    options: &InferOptions,
    jobs: usize,
    interner: &Interner,
) -> Result<StreamSummary, StreamError> {
    with_format!(format, F =>
        infer_slice_in::<F>(corpus, options, jobs, interner).map_err(F::wrap_error))
}

/// [`parse_slice`] for a runtime-chosen format.
///
/// # Errors
///
/// As [`parse_slice`], format-erased.
pub fn parse_slice_dyn(
    format: StreamFormat,
    corpus: &[u8],
    jobs: usize,
) -> Result<Vec<Value>, StreamError> {
    with_format!(format, F => parse_slice::<F>(corpus, jobs).map_err(F::wrap_error))
}

/// [`infer_reader_parallel`] for a runtime-chosen format (`jobs ≤ 1` is
/// the sequential reader pipeline).
///
/// # Errors
///
/// As [`infer_reader_parallel`].
pub fn infer_reader_parallel_dyn<R: Read + Send>(
    format: StreamFormat,
    reader: R,
    options: &InferOptions,
    chunk_size: usize,
    jobs: usize,
) -> Result<StreamSummary, StreamError> {
    infer_reader_parallel_dyn_in(
        format,
        reader,
        options,
        chunk_size,
        jobs,
        Interner::global(),
    )
}

/// [`infer_reader_parallel_in`] for a runtime-chosen format.
///
/// # Errors
///
/// As [`infer_reader_parallel`].
pub fn infer_reader_parallel_dyn_in<R: Read + Send>(
    format: StreamFormat,
    reader: R,
    options: &InferOptions,
    chunk_size: usize,
    jobs: usize,
    interner: &Interner,
) -> Result<StreamSummary, StreamError> {
    with_format!(format, F =>
        infer_reader_parallel_in::<F, R>(reader, options, chunk_size, jobs, interner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_many;

    fn json_opts() -> InferOptions {
        InferOptions::json()
    }

    #[test]
    fn parallel_json_matches_sequential_for_all_shard_counts() {
        let corpus: String = (0..50)
            .map(|i| format!("{{\"i\": {i}, \"t\": \"row-{i}\"}}\n"))
            .collect();
        let seq = infer_slice::<JsonFormat>(corpus.as_bytes(), &json_opts(), 1).unwrap();
        for jobs in [2, 3, 7, 64, 1000] {
            let par = infer_slice::<JsonFormat>(corpus.as_bytes(), &json_opts(), jobs).unwrap();
            assert_eq!(par, seq, "jobs {jobs}");
        }
        assert_eq!(seq.records, 50);
    }

    #[test]
    fn parallel_csv_seeds_headers_into_every_shard() {
        let mut corpus = String::from("id,name,score\n");
        for i in 0..40 {
            corpus.push_str(&format!("{i},item-{i},{i}.5\n"));
        }
        let opts = InferOptions::csv();
        let seq = infer_slice::<CsvFormat>(corpus.as_bytes(), &opts, 1).unwrap();
        for jobs in [2, 4, 39, 40, 200] {
            let par = infer_slice::<CsvFormat>(corpus.as_bytes(), &opts, jobs).unwrap();
            assert_eq!(par, seq, "jobs {jobs}");
        }
        assert_eq!(seq.records, 40);
        // And the corpus wrap matches the one-shot front-end.
        let oneshot = crate::infer_with(
            &tfd_csv::parse_value(&corpus).unwrap(),
            &InferOptions::csv(),
        );
        assert_eq!(CsvFormat::wrap_corpus_shape(seq.shape), oneshot);
    }

    #[test]
    fn parallel_xml_matches_sequential() {
        let corpus: String = (0..30)
            .map(|i| format!("<row id=\"{i}\"><v>x{i}</v></row>\n"))
            .collect();
        let opts = InferOptions::xml();
        let seq = infer_slice::<XmlFormat>(corpus.as_bytes(), &opts, 1).unwrap();
        for jobs in [2, 5, 64] {
            assert_eq!(
                infer_slice::<XmlFormat>(corpus.as_bytes(), &opts, jobs).unwrap(),
                seq,
                "jobs {jobs}"
            );
        }
    }

    #[test]
    fn parallel_error_positions_are_stream_global() {
        // The error sits in the last record; shard workers must report
        // it at the sequential stream position no matter the cut.
        let corpus = "{\"a\": 1}\n{\"a\": 2}\n{\"a\": @}\n";
        let seq = infer_slice::<JsonFormat>(corpus.as_bytes(), &json_opts(), 1).unwrap_err();
        for jobs in [2, 3, 64] {
            let par = infer_slice::<JsonFormat>(corpus.as_bytes(), &json_opts(), jobs).unwrap_err();
            assert_eq!(par, seq, "jobs {jobs}");
        }
        assert_eq!(seq.pos.line, 3);
    }

    #[test]
    fn first_error_in_document_order_wins() {
        // Two errors in different shards: the earlier one is reported,
        // exactly as the sequential (poisoning) pipeline behaves.
        let corpus = "{\"a\": 1} {\"b\": @} {\"c\": 2} {\"d\": %}";
        let seq = infer_slice::<JsonFormat>(corpus.as_bytes(), &json_opts(), 1).unwrap_err();
        for jobs in [2, 4, 16] {
            let par = infer_slice::<JsonFormat>(corpus.as_bytes(), &json_opts(), jobs).unwrap_err();
            assert_eq!(par, seq, "jobs {jobs}");
        }
    }

    #[test]
    fn empty_and_headerless_edges_match_sequential() {
        // Empty JSON corpus: 0 records, ⊥ shape.
        let s = infer_slice::<JsonFormat>(b"", &json_opts(), 4).unwrap();
        assert_eq!(s.records, 0);
        assert_eq!(s.shape, Shape::Bottom);
        // Empty CSV corpus: the sequential CsvError::Empty.
        let e = infer_slice::<CsvFormat>(b"", &InferOptions::csv(), 4).unwrap_err();
        assert_eq!(e, tfd_csv::CsvError::Empty);
        // Header-only CSV (no trailing newline): 0 records, like the
        // sequential streamer.
        let s = infer_slice::<CsvFormat>(b"a,b", &InferOptions::csv(), 4).unwrap();
        assert_eq!(s.records, 0);
    }

    #[test]
    fn parse_slice_returns_values_in_input_order() {
        let corpus: String = (0..20).map(|i| format!("{{\"i\": {i}}} ")).collect();
        let seq = parse_slice::<JsonFormat>(corpus.as_bytes(), 1).unwrap();
        for jobs in [2, 7, 32] {
            assert_eq!(
                parse_slice::<JsonFormat>(corpus.as_bytes(), jobs).unwrap(),
                seq,
                "jobs {jobs}"
            );
        }
        assert_eq!(seq, tfd_json::parse_many_values(&corpus).unwrap());
    }

    #[test]
    fn reader_parallel_matches_sequential_reader() {
        let corpus: String = (0..200)
            .map(|i| format!("{{\"i\": {i}, \"f\": {i}.5}}\n"))
            .collect();
        let seq = infer_reader_seq::<JsonFormat, _>(corpus.as_bytes(), &json_opts(), 64).unwrap();
        for (chunk, jobs) in [(7, 2), (64, 4), (4096, 3), (13, 64)] {
            let par = infer_reader_parallel::<JsonFormat, _>(
                corpus.as_bytes(),
                &json_opts(),
                chunk,
                jobs,
            )
            .unwrap();
            assert_eq!(par, seq, "chunk {chunk} jobs {jobs}");
        }
    }

    #[test]
    fn reader_parallel_csv_small_chunks() {
        let mut corpus = String::from("a,b\n");
        for i in 0..50 {
            corpus.push_str(&format!("{i},\"x,{i}\"\r\n"));
        }
        let opts = InferOptions::csv();
        let seq = infer_reader_seq::<CsvFormat, _>(corpus.as_bytes(), &opts, 64).unwrap();
        for (chunk, jobs) in [(1, 2), (3, 4), (64, 8)] {
            let par = infer_reader_parallel::<CsvFormat, _>(corpus.as_bytes(), &opts, chunk, jobs)
                .unwrap();
            assert_eq!(par, seq, "chunk {chunk} jobs {jobs}");
        }
    }

    #[test]
    fn reader_parallel_reports_sequential_errors() {
        let corpus = "<a/>\n<b/>\n<bad @>\n";
        let opts = InferOptions::xml();
        let seq = infer_reader_seq::<XmlFormat, _>(corpus.as_bytes(), &opts, 64).unwrap_err();
        let par =
            infer_reader_parallel::<XmlFormat, _>(corpus.as_bytes(), &opts, 5, 4).unwrap_err();
        assert_eq!(format!("{par}"), format!("{seq}"));
        // Empty CSV through the parallel reader: the sequential Empty.
        let e = infer_reader_parallel::<CsvFormat, _>(&b""[..], &InferOptions::csv(), 8, 4)
            .unwrap_err();
        assert!(matches!(e, StreamError::Csv(tfd_csv::CsvError::Empty)));
    }

    #[test]
    fn dyn_dispatch_agrees_with_static() {
        let corpus = "a,b\n1,x\n2,y\n";
        let opts = infer_options_dyn(StreamFormat::Csv);
        let via_dyn = infer_slice_dyn(StreamFormat::Csv, corpus.as_bytes(), &opts, 4).unwrap();
        let via_static =
            infer_slice::<CsvFormat>(corpus.as_bytes(), &InferOptions::csv(), 4).unwrap();
        assert_eq!(via_dyn, via_static);
        assert_eq!(
            wrap_corpus_shape_dyn(StreamFormat::Csv, via_dyn.shape),
            crate::infer_with(&parse_value_dyn(StreamFormat::Csv, corpus).unwrap(), &opts)
        );
    }

    #[test]
    fn shard_fold_agrees_with_infer_many() {
        // The parallel fold is the Fig. 3 fold: compare against
        // `infer_many` over the one-shot record sequence.
        let corpus: String = (0..25)
            .map(|i| {
                if i % 3 == 0 {
                    format!("{{\"n\": {i}}} ")
                } else {
                    format!("{{\"n\": {i}.5, \"extra\": true}} ")
                }
            })
            .collect();
        let docs = tfd_json::parse_many_values(&corpus).unwrap();
        let expected = infer_many(&docs, &json_opts());
        let par = infer_slice::<JsonFormat>(corpus.as_bytes(), &json_opts(), 8).unwrap();
        assert_eq!(par.shape, expected);
    }
}
