//! B4 — front-end parser throughput (bytes/second) for JSON, XML and
//! CSV. Run with `cargo bench -p tfd-bench --bench parse`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::fmt::Write as _;
use std::hint::black_box;
use tfd_bench::{table, to_json_texts};

fn bench_json(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse/json");
    for rows in [10usize, 100, 1000] {
        let text = to_json_texts(&[table(3, rows, 8)]).remove(0);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| tfd_json::parse(black_box(text)).unwrap());
        });
    }
    group.finish();
}

fn xml_doc(rows: usize) -> String {
    let mut out = String::from("<table>");
    for i in 0..rows {
        let _ = write!(
            out,
            "<row id=\"{i}\" name=\"item-{i}\" flag=\"true\"><v>{}</v></row>",
            i * 3
        );
    }
    out.push_str("</table>");
    out
}

fn bench_xml(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse/xml");
    for rows in [10usize, 100, 1000] {
        let text = xml_doc(rows);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| tfd_xml::parse(black_box(text)).unwrap());
        });
    }
    group.finish();
}

fn csv_doc(rows: usize) -> String {
    let mut out = String::from("id,name,score,date,flag\n");
    for i in 0..rows {
        let _ = writeln!(out, "{i},item-{i},{}.5,2012-05-01,{}", i, i % 2);
    }
    out
}

fn bench_csv(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse/csv");
    for rows in [10usize, 100, 1000] {
        let text = csv_doc(rows);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| tfd_csv::parse(black_box(text)).unwrap());
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    // Parse + infer + provide: the full compile-time pipeline cost that a
    // macro invocation pays.
    let text = to_json_texts(&[table(9, 200, 8)]).remove(0);
    c.bench_function("pipeline/parse-infer-provide", |b| {
        b.iter(|| {
            let value = tfd_json::parse(black_box(&text)).unwrap().to_value();
            let shape = tfd_core::infer(&value);
            tfd_provider::provide_idiomatic(black_box(&shape), "Root")
        });
    });
}

criterion_group!(benches, bench_json, bench_xml, bench_csv, bench_end_to_end);
criterion_main!(benches);
