//! B1 — end-to-end **parse→infer** pipeline throughput (rows/second) for
//! JSON, XML and CSV corpora of 10 / 1 000 / 100 000 rows.
//!
//! This measures the path a production type provider pays per sample set:
//! front-end parse into the universal value `d` (§6.2), then the
//! `S(d1, …, dn)` shape-inference fold (Fig. 3).
//!
//! Every format is measured in two variants so the byte-level work stays
//! honest:
//!
//! * `pipeline/json` — the byte-level [`tfd_json::parse_value`] path
//!   (borrowed strings, interned names, no token values);
//! * `pipeline/json-reference` — the retained tokenizing path
//!   ([`tfd_json::reference`]) through `Json::to_value`;
//! * `pipeline/xml` vs `pipeline/xml-reference` — the byte-level
//!   [`tfd_xml::parse_value`] path (offset probing, slice-interned names,
//!   no `Element` tree) vs the retained char-iterator parser
//!   ([`tfd_xml::reference`]) through `element_to_value`;
//! * `pipeline/csv` vs `pipeline/csv-reference` — the byte-level
//!   [`tfd_csv::parse_value`] path (streaming splitter, borrowed cells,
//!   no row `String`s) vs the retained per-char state machine
//!   ([`tfd_csv::reference`]) through `CsvFile::to_value`.
//!
//! A second axis compares **whole-buffer vs chunk-fed streaming** on the
//! same record sequences (`pipeline/jsonl` vs `pipeline/jsonl-stream`,
//! `pipeline/xml-docs` vs `pipeline/xml-stream`, `pipeline/csv` vs
//! `pipeline/csv-stream`): the streaming side drives the resumable
//! front-end scanners plus the `InferAccumulator` fold, record values
//! dropped as soon as their shape is joined.
//!
//! Run with `cargo bench -p tfd-bench --bench pipeline`; the committed
//! baseline lives in `BENCH_PR4.json` (regenerate with
//! `cargo run --release -p tfd-bench --bin pipeline_baseline`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tfd_bench::{
    csv_rows_text, json_lines_text, json_rows_text, parallel_pipeline, stream_pipeline,
    xml_docs_text, xml_rows_text,
};
use tfd_core::{infer_many, infer_with, InferOptions, StreamFormat};

const SIZES: [usize; 3] = [10, 1_000, 100_000];

fn bench_json(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/json");
    for rows in SIZES {
        let text = json_rows_text(3, rows, 8);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| {
                let value = tfd_json::parse_value(black_box(text)).unwrap();
                infer_with(&value, &InferOptions::json())
            });
        });
    }
    group.finish();
}

fn bench_json_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/json-reference");
    for rows in SIZES {
        let text = json_rows_text(3, rows, 8);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| {
                let value = tfd_json::reference::parse(black_box(text))
                    .unwrap()
                    .to_value();
                infer_with(&value, &InferOptions::json())
            });
        });
    }
    group.finish();
}

fn bench_xml(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/xml");
    for rows in SIZES {
        let text = xml_rows_text(rows);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| {
                let value = tfd_xml::parse_value(black_box(text)).unwrap();
                infer_with(&value, &InferOptions::xml())
            });
        });
    }
    group.finish();
}

fn bench_xml_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/xml-reference");
    for rows in SIZES {
        let text = xml_rows_text(rows);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| {
                let value = tfd_xml::reference::parse(black_box(text))
                    .unwrap()
                    .to_value();
                infer_with(&value, &InferOptions::xml())
            });
        });
    }
    group.finish();
}

fn bench_csv(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/csv");
    for rows in SIZES {
        let text = csv_rows_text(rows);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| {
                let value = tfd_csv::parse_value(black_box(text)).unwrap();
                infer_with(&value, &InferOptions::csv())
            });
        });
    }
    group.finish();
}

fn bench_csv_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/csv-reference");
    for rows in SIZES {
        let text = csv_rows_text(rows);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| {
                let value = tfd_csv::reference::parse(black_box(text))
                    .unwrap()
                    .to_value();
                infer_with(&value, &InferOptions::csv())
            });
        });
    }
    group.finish();
}

// --- Streaming vs one-shot: the same record sequences, whole-buffer
// parse+fold vs chunk-fed incremental parse+fold. ---

fn bench_jsonl(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/jsonl");
    for rows in SIZES {
        let text = json_lines_text(3, rows, 8);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| {
                let docs = tfd_json::parse_many_values(black_box(text)).unwrap();
                infer_many(&docs, &InferOptions::json())
            });
        });
    }
    group.finish();
}

fn bench_jsonl_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/jsonl-stream");
    for rows in SIZES {
        let text = json_lines_text(3, rows, 8);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| stream_pipeline(StreamFormat::Json, black_box(text)));
        });
    }
    group.finish();
}

fn bench_xml_docs(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/xml-docs");
    for rows in SIZES {
        let text = xml_docs_text(rows);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| {
                let docs = tfd_xml::parse_many_values(black_box(text)).unwrap();
                infer_many(&docs, &InferOptions::xml())
            });
        });
    }
    group.finish();
}

fn bench_xml_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/xml-stream");
    for rows in SIZES {
        let text = xml_docs_text(rows);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| stream_pipeline(StreamFormat::Xml, black_box(text)));
        });
    }
    group.finish();
}

fn bench_csv_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/csv-stream");
    for rows in SIZES {
        let text = csv_rows_text(rows);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &text, |b, text| {
            b.iter(|| stream_pipeline(StreamFormat::Csv, black_box(text)));
        });
    }
    group.finish();
}

// --- The parallel axis: the sharded driver at 1/2/4 workers on the
// --- 100k-row corpora (`pipeline/<fmt>-par/<jobs>`). On a single-core
// --- host the curve is flat; on a multicore host it is the
// --- multicore-scaling figure `BENCH_PR5.json` records.

fn bench_parallel(c: &mut Criterion) {
    let rows = 100_000usize;
    let corpora = [
        (StreamFormat::Json, json_lines_text(3, rows, 8), "json-par"),
        (StreamFormat::Xml, xml_docs_text(rows), "xml-par"),
        (StreamFormat::Csv, csv_rows_text(rows), "csv-par"),
    ];
    for (format, text, name) in &corpora {
        let mut group = c.benchmark_group(format!("pipeline/{name}"));
        for jobs in [1usize, 2, 4] {
            group.throughput(Throughput::Elements(rows as u64));
            group.bench_with_input(BenchmarkId::from_parameter(jobs), text, |b, text| {
                b.iter(|| parallel_pipeline(*format, black_box(text), jobs));
            });
        }
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_json,
    bench_json_reference,
    bench_xml,
    bench_xml_reference,
    bench_csv,
    bench_csv_reference,
    bench_jsonl,
    bench_jsonl_stream,
    bench_xml_docs,
    bench_xml_stream,
    bench_csv_stream,
    bench_parallel
);
criterion_main!(benches);
