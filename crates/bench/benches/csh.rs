//! B3 — the cost of the common-preferred-shape join (Fig. 2/Fig. 4).
//!
//! Measures `csh` on record joins of growing width and labelled-top
//! merges of growing label count. Run with
//! `cargo bench -p tfd-bench --bench csh`.

use criterion::BatchSize;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tfd_core::{csh, csh_ref, is_preferred, Shape};

fn wide_record(width: usize, float_half: bool) -> Shape {
    Shape::record(
        "row",
        (0..width).map(|i| {
            let shape = if float_half && i % 2 == 0 {
                Shape::Float
            } else {
                Shape::Int
            };
            (format!("col{i}"), shape)
        }),
    )
}

fn bench_record_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("csh/record-width");
    for width in [4usize, 16, 64, 256] {
        let a = wide_record(width, false);
        let b = wide_record(width, true);
        group.bench_with_input(
            BenchmarkId::from_parameter(width),
            &(a, b),
            |bench, (a, b)| {
                bench.iter_batched(
                    || (a.clone(), b.clone()),
                    |(a, b)| csh(black_box(a), black_box(b)),
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_top_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("csh/top-labels");
    for labels in [2usize, 8, 32] {
        // Distinct record names → distinct tags → labelled top of size n.
        let a = Shape::Top(
            (0..labels)
                .map(|i| Shape::record(format!("r{i}"), [("x", Shape::Int)]))
                .collect(),
        );
        let b = Shape::Top(
            (0..labels)
                .map(|i| Shape::record(format!("r{i}"), [("y", Shape::Bool)]))
                .collect(),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(labels),
            &(a, b),
            |bench, (a, b)| {
                bench.iter_batched(
                    || (a.clone(), b.clone()),
                    |(a, b)| csh(black_box(a), black_box(b)),
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_preference_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("csh/preference-check");
    for width in [16usize, 256] {
        let narrow = wide_record(width, false);
        let wide = wide_record(width, true);
        let joined = csh_ref(&narrow, &wide);
        group.bench_with_input(
            BenchmarkId::from_parameter(width),
            &(narrow, joined),
            |bench, (narrow, joined)| {
                bench.iter(|| is_preferred(black_box(narrow), black_box(joined)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_record_join,
    bench_top_merge,
    bench_preference_check
);
criterion_main!(benches);
