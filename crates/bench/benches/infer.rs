//! B2 — shape-inference cost.
//!
//! Sweeps the number of samples and document depth, measuring the
//! `S(d1, …, dn)` fold (Fig. 3). Run with
//! `cargo bench -p tfd-bench --bench infer`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tfd_bench::{api_corpus, messy_corpus};
use tfd_core::{infer_many, InferOptions};

fn bench_sample_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("infer/sample-count");
    for n in [1usize, 10, 100, 1000] {
        let corpus = api_corpus(42, n, 4);
        let nodes: usize = corpus.iter().map(|d| d.node_count()).sum();
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &corpus, |b, corpus| {
            b.iter(|| infer_many(black_box(corpus), &InferOptions::json()));
        });
    }
    group.finish();
}

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("infer/depth");
    for depth in [2usize, 4, 6] {
        let corpus = api_corpus(7, 50, depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &corpus, |b, corpus| {
            b.iter(|| infer_many(black_box(corpus), &InferOptions::json()));
        });
    }
    group.finish();
}

fn bench_options(c: &mut Criterion) {
    // Ablation-flavoured: the same messy corpus under the formal core vs
    // the full extension set.
    let corpus = messy_corpus(11, 200);
    let mut group = c.benchmark_group("infer/options");
    group.bench_function("formal", |b| {
        b.iter(|| infer_many(black_box(&corpus), &InferOptions::formal()));
    });
    group.bench_function("json-extensions", |b| {
        b.iter(|| infer_many(black_box(&corpus), &InferOptions::json()));
    });
    group.bench_function("csv-extensions", |b| {
        b.iter(|| infer_many(black_box(&corpus), &InferOptions::csv()));
    });
    group.finish();
}

criterion_group!(benches, bench_sample_count, bench_depth, bench_options);
criterion_main!(benches);
