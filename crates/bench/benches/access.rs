//! B5 — typed-access overhead (the §1 claim, quantified).
//!
//! The same workload — summing `main.temp` over many weather-like
//! documents — implemented four ways:
//!
//! 1. hand-written matching on the parsed `Json` (the paper's "before");
//! 2. the typed runtime (`tfd-runtime::Node`, what generated code uses);
//! 3. generated provider structs (via the same Node operations);
//! 4. the Foo calculus interpreter executing the Fig. 8 provided code
//!    (the formal model — expected to be orders slower; it exists for
//!    the theorems, not for production).
//!
//! Run with `cargo bench -p tfd-bench --bench access`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tfd_json::Json;
use tfd_runtime::Node;
use tfd_value::Value;

fn docs(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            tfd_json::parse(&format!(
                r#"{{ "name": "city-{i}", "main": {{ "temp": {}, "pressure": 1010 }} }}"#,
                i % 40
            ))
            .unwrap()
            .to_value()
        })
        .collect()
}

fn hand_written_sum(docs: &[Json]) -> f64 {
    let mut total = 0.0;
    for doc in docs {
        if let Json::Object(root) = doc {
            if let Some((_, Json::Object(main))) = root.iter().find(|(k, _)| k == "main") {
                match main.iter().find(|(k, _)| k == "temp") {
                    Some((_, Json::Int(i))) => total += *i as f64,
                    Some((_, Json::Float(f))) => total += *f,
                    _ => panic!("incorrect format"),
                }
            }
        }
    }
    total
}

fn runtime_sum(nodes: &[Node]) -> f64 {
    let mut total = 0.0;
    for node in nodes {
        total += node
            .field("main")
            .unwrap()
            .field("temp")
            .unwrap()
            .as_f64()
            .unwrap();
    }
    total
}

fn foo_sum(values: &[Value]) -> f64 {
    use tfd_foo::{run, Expr, Outcome};
    let shape = tfd_core::infer_with(&values[0], &tfd_core::InferOptions::formal());
    let provided = tfd_provider::provide(&shape);
    let mut total = 0.0;
    for v in values {
        let expr = Expr::member(Expr::member(provided.convert(v), "main"), "temp");
        match run(&provided.classes, &expr) {
            Outcome::Value(Expr::Data(Value::Int(i))) => total += i as f64,
            Outcome::Value(Expr::Data(Value::Float(f))) => total += f,
            other => panic!("unexpected {other:?}"),
        }
    }
    total
}

fn bench_access(c: &mut Criterion) {
    let n = 1000usize;
    let values = docs(n);
    let jsons: Vec<Json> = values.iter().map(Json::from_value).collect();
    let nodes: Vec<Node> = values.iter().map(|v| Node::new(v.clone())).collect();

    let expected = hand_written_sum(&jsons);
    assert_eq!(runtime_sum(&nodes), expected);
    assert_eq!(foo_sum(&values[..10]), hand_written_sum(&jsons[..10]));

    let mut group = c.benchmark_group("access");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("hand-written-match", |b| {
        b.iter(|| hand_written_sum(black_box(&jsons)));
    });
    group.bench_function("typed-runtime", |b| {
        b.iter(|| runtime_sum(black_box(&nodes)));
    });
    // The Foo interpreter is orders of magnitude slower (it exists for
    // the formal claims); bench a 10x smaller corpus to keep runs short.
    let small = &values[..100];
    group.bench_function("foo-interpreter-100", |b| {
        b.iter(|| foo_sum(black_box(small)));
    });
    group.finish();
}

fn bench_has_shape(c: &mut Criterion) {
    // The open-world runtime check guarding labelled-top members.
    let value = docs(1).remove(0);
    let shape = tfd_core::infer_with(&value, &tfd_core::InferOptions::formal());
    c.bench_function("access/has-shape", |b| {
        b.iter(|| tfd_core::conforms(black_box(&shape), black_box(&value)));
    });
}

criterion_group!(benches, bench_access, bench_has_shape);
criterion_main!(benches);
