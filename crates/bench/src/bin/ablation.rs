//! B6 — ablations of the design decisions called out in DESIGN.md.
//!
//! * **D1 — heterogeneous collections**: how often does inference reach
//!   for a labelled top with/without §6.4 hetero collections on a messy
//!   corpus?
//! * **D2 — the bit shape**: how many 0/1 CSV-style columns read as
//!   booleans vs ints with/without bit inference?
//! * **D3 — null-as-empty-collection**: how many accesses survive on a
//!   null-heavy corpus with the paper's choice (they all do — the
//!   alternative is counted as would-be failures)?
//!
//! Run with `cargo run -p tfd-bench --bin ablation`.

use tfd_bench::messy_corpus;
use tfd_core::{infer_with, InferOptions, Shape};
use tfd_value::corpus::Rng;
use tfd_value::Value;

/// Counts collections whose *element* shape is a labelled top — the
/// weakly typed collections that §6.4's heterogeneous collections are
/// designed to avoid.
fn count_top_collections(shape: &Shape) -> usize {
    match shape {
        Shape::List(e) if e.is_top() => 1,
        Shape::List(e) => count_top_collections(e),
        Shape::Top(labels) => labels.iter().map(count_top_collections).sum(),
        Shape::Record(r) => r
            .fields
            .iter()
            .map(|f| count_top_collections(&f.shape))
            .sum(),
        Shape::Nullable(s) => count_top_collections(s),
        Shape::HeteroList(cases) => cases.iter().map(|(s, _)| count_top_collections(s)).sum(),
        _ => 0,
    }
}

fn d1_hetero() {
    println!("=== D1: heterogeneous collections vs labelled tops ===");
    println!("| corpus | hetero | top-typed collections | hetero cases |");
    println!("|--------|--------|-----------------------|--------------|");
    for seed in [1u64, 2, 3] {
        let corpus = messy_corpus(seed, 100);
        // Mix in WorldBank-style [record, array] heterogeneity.
        let mixed: Vec<Value> = corpus
            .chunks(2)
            .map(|pair| Value::List(pair.to_vec()))
            .collect();
        for hetero in [false, true] {
            let options = InferOptions {
                hetero_collections: hetero,
                ..InferOptions::formal()
            };
            let shape = tfd_core::infer_many(&mixed, &options);
            let tops = count_top_collections(&shape);
            let cases = match &shape {
                Shape::HeteroList(cases) => cases.len(),
                _ => 0,
            };
            println!("| seed {seed} | {hetero:<6} | {tops:>21} | {cases:>12} |");
        }
    }
    println!("(§6.4: hetero collections \"avoid inferring labelled top shapes in many common scenarios\")\n");
}

fn d2_bit() {
    println!("=== D2: the bit shape for 0/1 columns ===");
    let mut rng = Rng::new(5);
    let rows = 200usize;
    let table = Value::List(
        (0..rows)
            .map(|_| {
                Value::record(
                    tfd_value::BODY_NAME,
                    vec![
                        ("flag", Value::Int(rng.below(2) as i64)),
                        ("count", Value::Int(rng.below(50) as i64)),
                    ],
                )
            })
            .collect(),
    );
    for bits in [false, true] {
        let options = InferOptions {
            infer_bits: bits,
            ..InferOptions::formal()
        };
        let shape = infer_with(&table, &options);
        println!("infer_bits={bits}: {shape}");
    }
    println!("(§6.2: \"we also infer Autofilled as Boolean, because the sample contains only 0 and 1\")\n");
}

fn d3_null_collections() {
    println!("=== D3: null reads as the empty collection ===");
    let mut rng = Rng::new(8);
    let docs: Vec<Value> = (0..500)
        .map(|i| {
            Value::record(
                tfd_value::BODY_NAME,
                vec![(
                    "items",
                    if rng.below(4) == 0 {
                        Value::Null
                    } else {
                        Value::List(vec![Value::Int(i)])
                    },
                )],
            )
        })
        .collect();
    let nulls = docs
        .iter()
        .filter(|d| d.field("items") == Some(&Value::Null))
        .count();
    // With the paper's choice every access succeeds:
    let mut survived = 0usize;
    for d in &docs {
        let node = tfd_runtime::Node::new(d.clone());
        if node.field("items").unwrap().elements().is_ok() {
            survived += 1;
        }
    }
    println!("documents: {}, null collections: {nulls}", docs.len());
    println!(
        "accesses surviving with null→[] (paper's choice): {survived}/{}",
        docs.len()
    );
    println!(
        "would-be failures if null were rejected instead:  {nulls}/{}",
        docs.len()
    );
    println!(
        "(§3.1: \"a null collection is usually handled as an empty collection by client code\")\n"
    );
}

fn d2b_stringly() {
    println!("=== D2b: content-based primitive inference for JSON strings ===");
    let doc = tfd_json::parse(
        r#"[ { "date": "2012", "value": "35.14229" },
            { "date": "2010", "value": null } ]"#,
    )
    .unwrap()
    .to_value();
    for stringly in [false, true] {
        let options = InferOptions {
            stringly_primitives: stringly,
            ..InferOptions::formal()
        };
        let shape = infer_with(&doc, &options);
        println!("stringly_primitives={stringly}: {shape}");
    }
    println!("(§2.3: the World Bank type reads Value : option<float>, Date : int)\n");
}

fn main() {
    d1_hetero();
    d2_bit();
    d2b_stringly();
    d3_null_collections();
}
