//! Records the parse→infer pipeline baseline to a JSON file
//! (`BENCH_PR10.json` at the repository root when run from there).
//!
//! The same workloads as `benches/pipeline.rs`, measured with a fixed
//! protocol (best-of-N batches) so re-runs are comparable across PRs:
//!
//! ```text
//! cargo run --release -p tfd-bench --bin pipeline_baseline [out.json]
//! ```
//!
//! Beyond the per-entry rows/sec sweep, the file records:
//!
//! * the **parse-only speedup** of each byte-level front-end over its
//!   retained char-level `reference` twin (JSON tokens, XML char
//!   iterators, CSV per-char state machine) on the 100k-row corpus —
//!   the honesty number for the byte-level work of PR 1–2;
//! * the **streaming cost**: chunk-fed parse→infer (resumable scanner +
//!   `InferAccumulator` fold, `O(1 record)` peak memory) relative to the
//!   whole-buffer one-shot path on the same 100k-record sequences — the
//!   honesty number for the streaming work of PR 3 (target: within
//!   ~15%, i.e. ratio ≲ 1.15);
//! * the **SWAR scan speedup** (PR 4): the chunked `find_any3` scanner
//!   used by the CSV boundary scanner's unquoted-field fast path and the
//!   record splitter, against the byte-at-a-time loop it replaced, on a
//!   synthetic unquoted-cell buffer;
//! * the **parallel scaling** of the sharded driver (PR 5):
//!   `engine::infer_slice` at 1/2/4 worker threads on the 100k-row
//!   corpora, with the host's `available_parallelism` recorded alongside
//!   — the speedup is only meaningful relative to the cores the host
//!   actually has (a single-core container measures the sharding
//!   overhead, not the scaling; the differential suite, not this file,
//!   is what guarantees the parallel path's correctness);
//! * the **interner occupancy** before/after N sequential
//!   disjoint-vocabulary corpora, each in its own scoped arena (PR 8):
//!   the after figure matching the before figure is the memory-reclaim
//!   honesty number — the old global interner grew linearly in N;
//! * the **registry ingest** cost (PR 9): the 100k-row CSV corpus
//!   POSTed to an in-process `tfd serve` daemon over a loopback socket
//!   vs the same corpus through the in-process jobs-4 driver — the
//!   honest price of the HTTP + registry layer;
//! * the **scanner backend** (PR 10): which SIMD kernel set the runtime
//!   dispatcher picked on this host (`scanner_backend`), and the
//!   three-way scan race — the dispatched kernel vs the forced portable
//!   SWAR kernel vs the plain `position` loop — on the 100k-row CSV
//!   corpus;
//! * the **thread-scaling probe** (PR 10), next to `host_parallelism`:
//!   a fixed CPU-bound workload split across 1/2/4 threads, recording
//!   what this host can actually deliver — the ceiling against which
//!   `parallel_scaling_100k` must be read (a 1-core container cannot
//!   show a parallel win no matter how good the scheduler is).

use std::fmt::Write as _;
use std::time::Instant;
use tfd_bench::{
    csv_rows_text, json_lines_text, json_rows_text, parallel_pipeline, stream_pipeline,
    xml_docs_text, xml_rows_text,
};
use tfd_core::analyze::{diff_global, fingerprint, run_lints, CompatMode, LintConfig};
use tfd_core::{globalize_env, infer_many, infer_with, InferOptions, Shape, StreamFormat};

const SIZES: [usize; 3] = [10, 1_000, 100_000];

/// Best-of-batches seconds per iteration of `f`, budgeted by `budget_s`.
fn best_time<F: FnMut() -> Shape>(mut f: F, budget_s: f64) -> f64 {
    // Warm-up + calibration.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().as_secs_f64();
    let batch = (0.02 / once.max(1e-9)).clamp(1.0, 10_000.0) as usize;
    let mut best = f64::INFINITY;
    let start = Instant::now();
    let mut runs = 0usize;
    while start.elapsed().as_secs_f64() < budget_s || runs < 3 {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        best = best.min(t.elapsed().as_secs_f64() / batch as f64);
        runs += 1;
    }
    best
}

struct Entry {
    id: String,
    rows: usize,
    seconds: f64,
}

impl Entry {
    fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.seconds
    }
}

/// Parse-only byte-vs-reference timing pair on the 100k-row corpus.
struct Speedup {
    format: &'static str,
    bytes_s: f64,
    reference_s: f64,
}

impl Speedup {
    fn ratio(&self) -> f64 {
        self.reference_s / self.bytes_s
    }
}

/// Streaming vs whole-buffer timing pair on a 100k-record sequence.
struct StreamCost {
    format: &'static str,
    stream_s: f64,
    oneshot_s: f64,
}

impl StreamCost {
    fn ratio(&self) -> f64 {
        self.stream_s / self.oneshot_s
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR10.json".to_owned());
    let mut entries: Vec<Entry> = Vec::new();
    let budget = 0.5;

    for rows in SIZES {
        let text = json_rows_text(3, rows, 8);
        let secs = best_time(
            || {
                infer_with(
                    &tfd_json::parse_value(&text).unwrap(),
                    &InferOptions::json(),
                )
            },
            budget,
        );
        entries.push(Entry {
            id: format!("pipeline/json/{rows}"),
            rows,
            seconds: secs,
        });

        let secs = best_time(
            || {
                infer_with(
                    &tfd_json::reference::parse(&text).unwrap().to_value(),
                    &InferOptions::json(),
                )
            },
            budget,
        );
        entries.push(Entry {
            id: format!("pipeline/json-reference/{rows}"),
            rows,
            seconds: secs,
        });
    }

    for rows in SIZES {
        let text = xml_rows_text(rows);
        let secs = best_time(
            || infer_with(&tfd_xml::parse_value(&text).unwrap(), &InferOptions::xml()),
            budget,
        );
        entries.push(Entry {
            id: format!("pipeline/xml/{rows}"),
            rows,
            seconds: secs,
        });

        let secs = best_time(
            || {
                infer_with(
                    &tfd_xml::reference::parse(&text).unwrap().to_value(),
                    &InferOptions::xml(),
                )
            },
            budget,
        );
        entries.push(Entry {
            id: format!("pipeline/xml-reference/{rows}"),
            rows,
            seconds: secs,
        });
    }

    for rows in SIZES {
        let text = csv_rows_text(rows);
        let secs = best_time(
            || infer_with(&tfd_csv::parse_value(&text).unwrap(), &InferOptions::csv()),
            budget,
        );
        entries.push(Entry {
            id: format!("pipeline/csv/{rows}"),
            rows,
            seconds: secs,
        });

        let secs = best_time(
            || {
                infer_with(
                    &tfd_csv::reference::parse(&text).unwrap().to_value(),
                    &InferOptions::csv(),
                )
            },
            budget,
        );
        entries.push(Entry {
            id: format!("pipeline/csv-reference/{rows}"),
            rows,
            seconds: secs,
        });
    }

    // Streaming vs whole-buffer, on per-record workloads.
    for rows in SIZES {
        let text = json_lines_text(3, rows, 8);
        let secs = best_time(
            || {
                let docs = tfd_json::parse_many_values(&text).unwrap();
                infer_many(&docs, &InferOptions::json())
            },
            budget,
        );
        entries.push(Entry {
            id: format!("pipeline/jsonl/{rows}"),
            rows,
            seconds: secs,
        });
        let secs = best_time(|| stream_pipeline(StreamFormat::Json, &text), budget);
        entries.push(Entry {
            id: format!("pipeline/jsonl-stream/{rows}"),
            rows,
            seconds: secs,
        });
    }

    for rows in SIZES {
        let text = xml_docs_text(rows);
        let secs = best_time(
            || {
                let docs = tfd_xml::parse_many_values(&text).unwrap();
                infer_many(&docs, &InferOptions::xml())
            },
            budget,
        );
        entries.push(Entry {
            id: format!("pipeline/xml-docs/{rows}"),
            rows,
            seconds: secs,
        });
        let secs = best_time(|| stream_pipeline(StreamFormat::Xml, &text), budget);
        entries.push(Entry {
            id: format!("pipeline/xml-stream/{rows}"),
            rows,
            seconds: secs,
        });
    }

    for rows in SIZES {
        let text = csv_rows_text(rows);
        let secs = best_time(|| stream_pipeline(StreamFormat::Csv, &text), budget);
        entries.push(Entry {
            id: format!("pipeline/csv-stream/{rows}"),
            rows,
            seconds: secs,
        });
    }

    // Streaming cost at 100k records: chunk-fed parse→infer relative to
    // the whole-buffer one-shot on the same record sequence, taken from
    // the entries just measured (one measurement, one story).
    let secs_of = |id: &str| -> f64 {
        entries
            .iter()
            .find(|e| e.id == id)
            .unwrap_or_else(|| panic!("missing entry {id}"))
            .seconds
    };
    let stream_costs = [
        StreamCost {
            format: "json",
            stream_s: secs_of("pipeline/jsonl-stream/100000"),
            oneshot_s: secs_of("pipeline/jsonl/100000"),
        },
        StreamCost {
            format: "xml",
            stream_s: secs_of("pipeline/xml-stream/100000"),
            oneshot_s: secs_of("pipeline/xml-docs/100000"),
        },
        StreamCost {
            format: "csv",
            stream_s: secs_of("pipeline/csv-stream/100000"),
            oneshot_s: secs_of("pipeline/csv/100000"),
        },
    ];

    // Parallel scaling: the sharded driver at 1/2/4 workers on the
    // 100k-record corpora. Honesty note: the ratios are measured on THIS
    // host — `host_parallelism` says how many cores it had. On one core
    // the jobs-4 ratio records the sharding overhead (expect ≈1.0x); the
    // ≥2x multicore win requires ≥4 real cores. The differential suite
    // (tests/parallel_agreement.rs), not this file, guarantees the
    // parallel path's correctness.
    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1);

    // Thread-scaling probe: a fixed CPU-bound workload (no memory
    // traffic, no locks) split evenly across 1/2/4 threads. This is the
    // hardware ceiling for any parallel speedup below — if the probe
    // cannot beat 1.0x, neither can the sharded driver, and the
    // `parallel_scaling_100k` ratios measure scheduling overhead, not
    // scaling.
    fn spin(iters: u64) -> u64 {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..iters {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .rotate_left(13)
                .wrapping_add(1);
        }
        x
    }
    let probe = |threads: usize| -> f64 {
        const TOTAL: u64 = 64_000_000;
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| std::hint::black_box(spin(TOTAL / threads as u64)));
                }
            });
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let (probe1_s, probe2_s, probe4_s) = (probe(1), probe(2), probe(4));
    struct ParScale {
        format: &'static str,
        jobs1_s: f64,
        jobs2_s: f64,
        jobs4_s: f64,
    }
    impl ParScale {
        fn speedup4(&self) -> f64 {
            self.jobs1_s / self.jobs4_s
        }
    }
    let par_corpora = [
        (StreamFormat::Json, json_lines_text(3, 100_000, 8), "json"),
        (StreamFormat::Xml, xml_docs_text(100_000), "xml"),
        (StreamFormat::Csv, csv_rows_text(100_000), "csv"),
    ];
    let par_scales: Vec<ParScale> = par_corpora
        .iter()
        .map(|(format, text, name)| ParScale {
            format: name,
            jobs1_s: best_time(|| parallel_pipeline(*format, text, 1), budget),
            jobs2_s: best_time(|| parallel_pipeline(*format, text, 2), budget),
            jobs4_s: best_time(|| parallel_pipeline(*format, text, 4), budget),
        })
        .collect();

    // Parse-only speedups of each byte-level front-end over its retained
    // char-level reference, on the largest corpus. (`Shape::Bottom` keeps
    // `best_time`'s signature; only the parse is timed.)
    let json_text = json_rows_text(3, 100_000, 8);
    let xml_text = xml_rows_text(100_000);
    let csv_text = csv_rows_text(100_000);
    let speedups = [
        Speedup {
            format: "json",
            bytes_s: best_time(
                || {
                    tfd_json::parse_value(&json_text).unwrap();
                    Shape::Bottom
                },
                budget,
            ),
            reference_s: best_time(
                || {
                    tfd_json::reference::parse(&json_text).unwrap().to_value();
                    Shape::Bottom
                },
                budget,
            ),
        },
        Speedup {
            format: "xml",
            bytes_s: best_time(
                || {
                    tfd_xml::parse_value(&xml_text).unwrap();
                    Shape::Bottom
                },
                budget,
            ),
            reference_s: best_time(
                || {
                    tfd_xml::reference::parse(&xml_text).unwrap().to_value();
                    Shape::Bottom
                },
                budget,
            ),
        },
        Speedup {
            format: "csv",
            bytes_s: best_time(
                || {
                    tfd_csv::parse_value(&csv_text).unwrap();
                    Shape::Bottom
                },
                budget,
            ),
            reference_s: best_time(
                || {
                    tfd_csv::reference::parse(&csv_text).unwrap().to_value();
                    Shape::Bottom
                },
                budget,
            ),
        },
    ];

    // The CSV unquoted-field scan on the *actual* 100k-row pipeline
    // corpus (realistic cell lengths, not a synthetic pathology), four
    // ways: the runtime-dispatched kernel the hot paths now use
    // (AVX2/SSE2/NEON where the host has them), the same entry point
    // forced onto the portable SWAR kernel, the plain bounded
    // `position` loop (which LLVM autovectorizes — the honest
    // near-peer), and a replica of the pre-PR4 inner loop, whose
    // per-byte `starts_with` check defeated vectorization. Each
    // iteration hops special-to-special across the whole corpus.
    let scan_buf: Vec<u8> = csv_rows_text(100_000).into_bytes();
    fn walk(buf: &[u8], find: impl Fn(&[u8]) -> Option<usize>) -> usize {
        let mut i = 0usize;
        let mut hits = 0usize;
        while i < buf.len() {
            match find(&buf[i..]) {
                Some(off) => {
                    i += off + 1;
                    hits += 1;
                }
                None => break,
            }
        }
        hits
    }
    /// The pre-PR4 field scan: byte-at-a-time with a `starts_with`
    /// delimiter probe on every candidate byte.
    fn old_loop(h: &[u8], delim: &[u8]) -> Option<usize> {
        let d0 = delim[0];
        let mut j = 0usize;
        while j < h.len() {
            let x = h[j];
            if x == b'\n' || x == b'\r' || (x == d0 && h[j..].starts_with(delim)) {
                return Some(j);
            }
            j += 1;
        }
        None
    }
    let scanner_backend = tfd_value::scan::backend_name();
    let scan_dispatch_s = best_time(
        || {
            std::hint::black_box(walk(&scan_buf, |h| {
                tfd_csv::scan::find_any3(h, b',', b'\n', b'\r')
            }));
            Shape::Bottom
        },
        budget,
    );
    assert!(
        tfd_value::scan::force_backend("swar"),
        "the portable kernel is always available"
    );
    let scan_swar_s = best_time(
        || {
            std::hint::black_box(walk(&scan_buf, |h| {
                tfd_csv::scan::find_any3(h, b',', b'\n', b'\r')
            }));
            Shape::Bottom
        },
        budget,
    );
    assert!(tfd_value::scan::force_backend("auto"));

    // The same three-way race on a sparse buffer — one special byte
    // every ~250 bytes, the shape of quoted blobs and long JSON
    // strings. On realistic short-field CSV the 16-byte scalar probe
    // in the public wrappers swallows almost every hop before any
    // kernel runs, so the dispatch comparison above mostly measures
    // call overhead; this buffer is where the wide kernels do the
    // actual scanning.
    let sparse_buf: Vec<u8> = (0..4_000_000usize)
        .map(|i| if i % 251 == 250 { b',' } else { b'x' })
        .collect();
    let sparse_dispatch_s = best_time(
        || {
            std::hint::black_box(walk(&sparse_buf, |h| {
                tfd_csv::scan::find_any3(h, b',', b'\n', b'\r')
            }));
            Shape::Bottom
        },
        budget,
    );
    assert!(tfd_value::scan::force_backend("swar"));
    let sparse_swar_s = best_time(
        || {
            std::hint::black_box(walk(&sparse_buf, |h| {
                tfd_csv::scan::find_any3(h, b',', b'\n', b'\r')
            }));
            Shape::Bottom
        },
        budget,
    );
    assert!(tfd_value::scan::force_backend("auto"));
    let sparse_naive_s = best_time(
        || {
            std::hint::black_box(walk(&sparse_buf, |h| {
                tfd_csv::scan::find_any3_naive(h, b',', b'\n', b'\r')
            }));
            Shape::Bottom
        },
        budget,
    );
    let scan_naive_s = best_time(
        || {
            std::hint::black_box(walk(&scan_buf, |h| {
                tfd_csv::scan::find_any3_naive(h, b',', b'\n', b'\r')
            }));
            Shape::Bottom
        },
        budget,
    );
    let scan_old_s = best_time(
        || {
            std::hint::black_box(walk(&scan_buf, |h| old_loop(h, b",")));
            Shape::Bottom
        },
        budget,
    );

    // Analysis overhead (PR 7): `tfd analyze`/`diff` run on the inferred
    // `GlobalShape`, not on the corpus, so one full analysis pass
    // (fingerprint + every lint + a Full-mode self-diff) should cost a
    // vanishing fraction of the ingest that produced the shape. Measured
    // against the 100k-row CSV parse→infer from the entries above.
    let analyzed = globalize_env(infer_with(
        &tfd_csv::parse_value(&csv_text).unwrap(),
        &InferOptions::csv(),
    ));
    let analyze_s = best_time(
        || {
            std::hint::black_box(fingerprint(&analyzed));
            std::hint::black_box(run_lints(&analyzed, &LintConfig::default()).len());
            std::hint::black_box(diff_global(&analyzed, &analyzed, CompatMode::Full).is_empty());
            Shape::Bottom
        },
        budget,
    );
    let ingest_s = secs_of("pipeline/csv/100000");

    // Interner occupancy (PR 8): N sequential corpora with pairwise
    // disjoint vocabularies, each inferred inside its own scoped arena
    // that drops when the corpus is done. The honest capacity-based
    // process figure after N corpora must match the figure before the
    // first — the pre-PR8 global interner grew by every corpus's
    // vocabulary and never gave it back.
    let occupancy_corpora = 8usize;
    let occupancy_keys = 2_000usize;
    let intern_before = tfd_value::intern::stats();
    let mut peak_corpus_arena_bytes = 0usize;
    for k in 0..occupancy_corpora {
        let mut text = String::new();
        for r in 0..occupancy_keys {
            let _ = writeln!(text, "{{\"corpus{k}_key{r}\": {r}}}");
        }
        let arena = tfd_value::Interner::new();
        let summary = tfd_core::engine::infer_slice_in::<tfd_core::engine::JsonFormat>(
            text.as_bytes(),
            &InferOptions::json(),
            2,
            &arena,
        )
        .expect("occupancy corpus is well-formed");
        peak_corpus_arena_bytes = peak_corpus_arena_bytes.max(arena.stats().retained_bytes);
        std::hint::black_box(summary.records);
    }
    let intern_after = tfd_value::intern::stats();

    // Registry ingest over the wire (PR 9): the 100k-row CSV corpus
    // POSTed to an in-process `tfd serve` daemon on a loopback socket
    // (connection + HTTP framing + recovery driver + absorb under the
    // tenant lock), against the same corpus through the in-process
    // jobs-4 driver. The ratio is the honest cost of putting the
    // registry between a client and the engine; re-ingesting is a
    // no-op join (Lemma 1), so repeated iterations measure the steady
    // state, not shape growth.
    let serve_handle = tfd_serve::Server::bind("127.0.0.1:0", tfd_serve::ServeConfig::default())
        .expect("bind loopback")
        .spawn()
        .expect("spawn server");
    let serve_addr = serve_handle.addr();
    let serve_corpus = csv_rows_text(100_000);
    let serve_ingest_s = best_time(
        || {
            let r = tfd_serve::request(
                serve_addr,
                "POST",
                "/v1/bench/ingest?format=csv&jobs=4",
                Some(("text/csv", serve_corpus.as_bytes())),
            )
            .expect("ingest request");
            assert_eq!(r.status, 200, "{}", r.text());
            Shape::Bottom
        },
        budget,
    );
    let serve_inproc_s = best_time(
        || parallel_pipeline(StreamFormat::Csv, &serve_corpus, 4),
        budget,
    );
    serve_handle.stop();

    let mut json = String::from("{\n  \"benchmark\": \"pipeline parse+infer (rows/sec)\",\n");
    let _ = writeln!(
        json,
        "  \"protocol\": \"best-of-batches, {budget}s budget per entry\","
    );
    json.push_str("  \"parse_speedup_vs_reference\": {\n");
    for (i, s) in speedups.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{\"bytes_path_s\": {:e}, \"char_path_s\": {:e}, \"speedup\": {:.2}}}{}",
            s.format,
            s.bytes_s,
            s.reference_s,
            s.ratio(),
            if i + 1 < speedups.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    json.push_str("  \"streaming_vs_oneshot_100k\": {\n");
    for (i, s) in stream_costs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{\"stream_s\": {:e}, \"oneshot_s\": {:e}, \"ratio\": {:.3}}}{}",
            s.format,
            s.stream_s,
            s.oneshot_s,
            s.ratio(),
            if i + 1 < stream_costs.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(
        json,
        "  \"thread_scaling_probe\": {{\"threads1_s\": {:e}, \"threads2_s\": {:e}, \"threads4_s\": {:e}, \"speedup_threads4\": {:.2}}},",
        probe1_s,
        probe2_s,
        probe4_s,
        probe1_s / probe4_s
    );
    let _ = writeln!(json, "  \"scanner_backend\": \"{scanner_backend}\",");
    json.push_str("  \"parallel_scaling_100k\": {\n");
    for (i, p) in par_scales.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{\"jobs1_s\": {:e}, \"jobs2_s\": {:e}, \"jobs4_s\": {:e}, \"speedup_jobs4\": {:.2}}}{}",
            p.format,
            p.jobs1_s,
            p.jobs2_s,
            p.jobs4_s,
            p.speedup4(),
            if i + 1 < par_scales.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"csv_scan_backends\": {{\"buffer_bytes\": {}, \"backend\": \"{scanner_backend}\", \"dispatch_s\": {:e}, \"swar_s\": {:e}, \"position_s\": {:e}, \"old_loop_s\": {:e}, \"dispatch_vs_position\": {:.2}, \"dispatch_vs_swar\": {:.2}, \"dispatch_vs_old\": {:.2}}},",
        scan_buf.len(),
        scan_dispatch_s,
        scan_swar_s,
        scan_naive_s,
        scan_old_s,
        scan_naive_s / scan_dispatch_s,
        scan_swar_s / scan_dispatch_s,
        scan_old_s / scan_dispatch_s
    );
    let _ = writeln!(
        json,
        "  \"sparse_scan_backends\": {{\"buffer_bytes\": {}, \"gap_bytes\": 250, \"backend\": \"{scanner_backend}\", \"dispatch_s\": {:e}, \"swar_s\": {:e}, \"position_s\": {:e}, \"dispatch_vs_position\": {:.2}, \"dispatch_vs_swar\": {:.2}}},",
        sparse_buf.len(),
        sparse_dispatch_s,
        sparse_swar_s,
        sparse_naive_s,
        sparse_naive_s / sparse_dispatch_s,
        sparse_swar_s / sparse_dispatch_s
    );
    let _ = writeln!(
        json,
        "  \"analyze_overhead\": {{\"csv_100k_ingest_s\": {:e}, \"analysis_pass_s\": {:e}, \"fraction_of_ingest\": {:.5}}},",
        ingest_s,
        analyze_s,
        analyze_s / ingest_s
    );
    let _ = writeln!(
        json,
        "  \"interner_occupancy\": {{\"sequential_corpora\": {}, \"distinct_keys_per_corpus\": {}, \"retained_bytes_before\": {}, \"retained_bytes_after\": {}, \"peak_corpus_arena_bytes\": {}}},",
        occupancy_corpora,
        occupancy_keys,
        intern_before.retained_bytes,
        intern_after.retained_bytes,
        peak_corpus_arena_bytes
    );
    let _ = writeln!(
        json,
        "  \"serve_ingest\": {{\"csv_rows\": 100000, \"corpus_bytes\": {}, \"http_ingest_s\": {:e}, \"inprocess_jobs4_s\": {:e}, \"overhead_ratio\": {:.3}, \"rows_per_sec\": {:.0}}},",
        serve_corpus.len(),
        serve_ingest_s,
        serve_inproc_s,
        serve_ingest_s / serve_inproc_s,
        100_000f64 / serve_ingest_s
    );
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"id\": \"{}\", \"rows\": {}, \"seconds_per_iter\": {:e}, \"rows_per_sec\": {:.0}}}{}",
            e.id,
            e.rows,
            e.seconds,
            e.rows_per_sec(),
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write baseline file");
    println!("{json}");
    println!("baseline written to {out_path}");
    for s in &speedups {
        println!(
            "{} parse speedup (bytes vs chars): {:.2}x",
            s.format,
            s.ratio()
        );
    }
    for s in &stream_costs {
        println!(
            "{} streaming cost (chunk-fed vs whole-buffer parse→infer): {:.3}x",
            s.format,
            s.ratio()
        );
    }
    println!(
        "csv unquoted scan ({scanner_backend} dispatch): {:.2}x vs plain position, {:.2}x vs forced swar, {:.2}x vs the pre-PR4 loop",
        scan_naive_s / scan_dispatch_s,
        scan_swar_s / scan_dispatch_s,
        scan_old_s / scan_dispatch_s
    );
    println!(
        "sparse scan, 250-byte gaps ({scanner_backend} dispatch): {:.2}x vs plain position, {:.2}x vs forced swar",
        sparse_naive_s / sparse_dispatch_s,
        sparse_swar_s / sparse_dispatch_s
    );
    println!(
        "thread-scaling probe (host has {} core(s)): 4 threads / 1 thread = {:.2}x",
        host_parallelism,
        probe1_s / probe4_s
    );
    for p in &par_scales {
        println!(
            "{} parallel scaling (host has {} core(s)): jobs4/jobs1 = {:.2}x",
            p.format,
            host_parallelism,
            p.speedup4()
        );
    }
    println!(
        "analysis pass (fingerprint + lints + self-diff): {:.5}x of the 100k-row csv ingest",
        analyze_s / ingest_s
    );
    println!(
        "interner occupancy over {} disjoint corpora: {} bytes before, {} after (peak corpus arena {} bytes)",
        occupancy_corpora,
        intern_before.retained_bytes,
        intern_after.retained_bytes,
        peak_corpus_arena_bytes
    );
    println!(
        "registry ingest (100k-row csv over loopback http): {:.3}x of the in-process jobs-4 driver ({:.0} rows/sec)",
        serve_ingest_s / serve_inproc_s,
        100_000f64 / serve_ingest_s
    );
}
