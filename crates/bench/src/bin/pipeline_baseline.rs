//! Records the parse→infer pipeline baseline to a JSON file
//! (`BENCH_PR1.json` at the repository root when run from there).
//!
//! The same workloads as `benches/pipeline.rs`, measured with a fixed
//! protocol (best-of-N batches) so re-runs are comparable across PRs:
//!
//! ```text
//! cargo run --release -p tfd-bench --bin pipeline_baseline [out.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use tfd_bench::{csv_rows_text, json_rows_text, xml_rows_text};
use tfd_core::{infer_with, InferOptions, Shape};

const SIZES: [usize; 3] = [10, 1_000, 100_000];

/// Best-of-batches seconds per iteration of `f`, budgeted by `budget_s`.
fn best_time<F: FnMut() -> Shape>(mut f: F, budget_s: f64) -> f64 {
    // Warm-up + calibration.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().as_secs_f64();
    let batch = (0.02 / once.max(1e-9)).clamp(1.0, 10_000.0) as usize;
    let mut best = f64::INFINITY;
    let start = Instant::now();
    let mut runs = 0usize;
    while start.elapsed().as_secs_f64() < budget_s || runs < 3 {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        best = best.min(t.elapsed().as_secs_f64() / batch as f64);
        runs += 1;
    }
    best
}

struct Entry {
    id: String,
    rows: usize,
    seconds: f64,
}

impl Entry {
    fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.seconds
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_PR1.json".to_owned());
    let mut entries: Vec<Entry> = Vec::new();
    let budget = 0.5;

    for rows in SIZES {
        let text = json_rows_text(3, rows, 8);
        let secs = best_time(
            || infer_with(&tfd_json::parse_value(&text).unwrap(), &InferOptions::json()),
            budget,
        );
        entries.push(Entry { id: format!("pipeline/json/{rows}"), rows, seconds: secs });

        let secs = best_time(
            || {
                infer_with(
                    &tfd_json::reference::parse(&text).unwrap().to_value(),
                    &InferOptions::json(),
                )
            },
            budget,
        );
        entries.push(Entry { id: format!("pipeline/json-reference/{rows}"), rows, seconds: secs });
    }

    for rows in SIZES {
        let text = xml_rows_text(rows);
        let secs = best_time(
            || infer_with(&tfd_xml::parse(&text).unwrap().to_value(), &InferOptions::xml()),
            budget,
        );
        entries.push(Entry { id: format!("pipeline/xml/{rows}"), rows, seconds: secs });
    }

    for rows in SIZES {
        let text = csv_rows_text(rows);
        let secs = best_time(
            || infer_with(&tfd_csv::parse(&text).unwrap().to_value(), &InferOptions::csv()),
            budget,
        );
        entries.push(Entry { id: format!("pipeline/csv/{rows}"), rows, seconds: secs });
    }

    // Parse-only speedup of the byte-level JSON path over the retained
    // tokenizing reference, on the largest corpus.
    let text = json_rows_text(3, 100_000, 8);
    let new_parse = best_time(
        || {
            tfd_json::parse_value(&text).unwrap();
            Shape::Bottom
        },
        budget,
    );
    let ref_parse = best_time(
        || {
            tfd_json::reference::parse(&text).unwrap().to_value();
            Shape::Bottom
        },
        budget,
    );
    let speedup = ref_parse / new_parse;

    let mut json = String::from("{\n  \"benchmark\": \"pipeline parse+infer (rows/sec)\",\n");
    let _ = writeln!(json, "  \"protocol\": \"best-of-batches, {budget}s budget per entry\",");
    let _ = writeln!(
        json,
        "  \"parse_json_speedup_vs_reference\": {{\"bytes_path_s\": {new_parse:e}, \"token_path_s\": {ref_parse:e}, \"speedup\": {speedup:.2}}},"
    );
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"id\": \"{}\", \"rows\": {}, \"seconds_per_iter\": {:e}, \"rows_per_sec\": {:.0}}}{}\n",
            e.id,
            e.rows,
            e.seconds,
            e.rows_per_sec(),
            if i + 1 < entries.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write baseline file");
    println!("{json}");
    println!("baseline written to {out_path}");
    println!("json parse speedup (bytes vs tokens): {speedup:.2}x");
}
