//! Regenerates the paper's figure-level artifacts (see EXPERIMENTS.md):
//!
//! * `--fig1`: mechanically verifies the Fig. 1 preference lattice and
//!   prints its Hasse edges;
//! * `--examples`: prints the inferred shape and provided type for every
//!   worked example in the paper (E1–E5) next to the paper's expected
//!   types.
//!
//! Run with `cargo run -p tfd-bench --bin figures -- --fig1 --examples`.

use tfd_core::{infer_with, is_preferred, InferOptions, Shape};
use tfd_provider::{provide_idiomatic, signature};

fn fig1() {
    println!("=== Figure 1: the preferred shape relation ===\n");
    let record = Shape::record("P", [("x", Shape::Int)]);
    let shapes: Vec<Shape> = vec![
        Shape::Bottom,
        Shape::Null,
        Shape::Bit,
        Shape::Int,
        Shape::Float,
        Shape::Bool,
        Shape::String,
        Shape::Date,
        record.clone(),
        Shape::Int.ceil(),
        Shape::Float.ceil(),
        Shape::Bool.ceil(),
        Shape::String.ceil(),
        record.ceil(),
        Shape::list(Shape::Int),
        Shape::any(),
    ];
    // Print the covering relation (Hasse diagram edges): a ⊏ b with no c
    // strictly between.
    let strictly = |a: &Shape, b: &Shape| is_preferred(a, b) && !is_preferred(b, a);
    let mut edges = 0;
    for a in &shapes {
        for b in &shapes {
            if !strictly(a, b) {
                continue;
            }
            let covered = shapes.iter().any(|c| strictly(a, c) && strictly(c, b));
            if !covered {
                println!("  {a}  ⊑  {b}");
                edges += 1;
            }
        }
    }
    println!("\n{edges} covering edges verified (cf. the arrows of Fig. 1).\n");
}

fn show(title: &str, paper: &str, text: &str, options: &InferOptions, root: &str) {
    println!("=== {title} ===");
    let value = tfd_json::parse(text)
        .map(|j| j.to_value())
        .or_else(|_| tfd_xml::parse(text).map(|x| x.to_value()))
        .or_else(|_| tfd_csv::parse(text).map(|c| c.to_value()))
        .expect("sample parses in one of the three formats");
    let shape = infer_with(&value, options);
    println!("inferred shape: {shape}");
    let provided = provide_idiomatic(&shape, root);
    println!("provided type:\n{}", signature(&provided));
    println!("paper expectation: {paper}\n");
}

fn examples() {
    show(
        "E2 — §2.1 people.json",
        "Entity { Name : string, Age : option<float> }",
        r#"[ { "name":"Jan", "age":25 },
            { "name":"Tomas" },
            { "name":"Alexander", "age":3.5 } ]"#,
        &InferOptions::json(),
        "People",
    );
    show(
        "E3 — §2.2 document XML (labelled-top mode)",
        "Element { Heading/P : option<string>, Image : option<Image> }",
        "<doc><heading>H1</heading><p>P1</p><heading>H2</heading>\
         <p>P2</p><image source=\"xml.png\"/></doc>",
        &InferOptions {
            hetero_collections: false,
            singleton_collections: false,
            ..InferOptions::xml()
        },
        "Document",
    );
    show(
        "E4 — §2.3 World Bank",
        "WorldBank { Record : {Pages : int}, Array : [{Date : int, Indicator : string, Value : option<float>}] }",
        r#"[ { "pages": 5 },
            [ { "indicator": "GC.DOD.TOTL.GD.ZS", "date": "2012", "value": null },
              { "indicator": "GC.DOD.TOTL.GD.ZS", "date": "2010", "value": "35.14229" } ] ]"#,
        &InferOptions::json(),
        "WorldBank",
    );
    show(
        "E5 — §6.2 air-quality CSV",
        "Row { Ozone : float, Temp : option<int>, Date : string, Autofilled : bool (bit) }",
        "Ozone, Temp, Date, Autofilled\n41, 67, 2012-05-01, 0\n36.3, 72, 2012-05-02, 1\n\
         12.1, 74, 3 kveten, 0\n17.5, #N/A, 2012-05-04, 0\n",
        &InferOptions::csv(),
        "AirQuality",
    );
    show(
        "§6.2 — XML root/item",
        "Root { Id : int, Item : string }",
        r#"<root id="1"><item>Hello!</item></root>"#,
        &InferOptions::xml(),
        "Root",
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    if all || args.iter().any(|a| a == "--fig1") {
        fig1();
    }
    if all || args.iter().any(|a| a == "--examples") {
        examples();
    }
}
