//! B1 — the §1 "two lines instead of thirteen" claim, measured.
//!
//! Counts the code in `examples/quickstart.rs`: the provided-access
//! function body vs the hand-written weakly typed matcher, and the error
//! surface (explicit failure points) of each. Also reports the same
//! comparison for the paper's original F# listings (hard-coded from the
//! paper text) for reference.
//!
//! Run with `cargo run -p tfd-bench --bin tables`.

fn body_lines(source: &str, fn_name: &str) -> usize {
    let mut lines = source.lines().skip_while(|l| !l.contains(fn_name));
    let mut depth = 0usize;
    let mut count = 0usize;
    for line in &mut lines {
        depth += line.matches('{').count();
        let closing = line.matches('}').count();
        if depth > 0 {
            count += 1;
        }
        if closing >= depth && depth > 0 {
            break;
        }
        depth -= closing;
    }
    count.saturating_sub(2) // exclude the signature and closing brace
}

fn count_error_points(source: &str, fn_name: &str, marker: &str) -> usize {
    let mut in_fn = false;
    let mut depth = 0usize;
    let mut count = 0usize;
    for line in source.lines() {
        if line.contains(fn_name) {
            in_fn = true;
        }
        if in_fn {
            depth += line.matches('{').count();
            count += line.matches(marker).count();
            let closing = line.matches('}').count();
            if closing >= depth && depth > 0 {
                break;
            }
            depth -= closing;
        }
    }
    count
}

fn main() {
    let source = std::fs::read_to_string("examples/quickstart.rs")
        .or_else(|_| std::fs::read_to_string("../../examples/quickstart.rs"))
        .expect("run from the workspace root");

    let provided_lines = body_lines(&source, "fn provided_access");
    let hand_lines = body_lines(&source, "fn hand_written_access");
    let hand_failures = count_error_points(&source, "fn hand_written_access", "incorrect format");

    println!("Table B1 — code size for the §1 weather access");
    println!("(the paper: 13 lines of matching vs 2 lines with the provider)\n");
    println!("| variant                     | lines | explicit failure arms |");
    println!("|-----------------------------|-------|-----------------------|");
    println!("| paper F#: hand-written      |    13 |                     3 |");
    println!("| paper F#: JsonProvider      |     2 |                     0 |");
    println!("| this repo: hand-written     | {hand_lines:>5} | {hand_failures:>21} |");
    println!("| this repo: json_provider!   | {provided_lines:>5} |                     0 |");
    println!();
    let factor = hand_lines as f64 / provided_lines.max(1) as f64;
    println!(
        "reduction factor (this repo): {factor:.1}x fewer lines with the provider \
         (paper: {:.1}x)",
        13.0 / 2.0
    );
}
