//! # tfd-bench — shared workload generators for the benchmark harness
//!
//! Synthetic corpora used by the Criterion benches and the table/figure
//! regeneration binaries (see EXPERIMENTS.md). All generators are
//! deterministic in their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tfd_value::corpus::{generate_corpus, CorpusConfig};
use tfd_value::Value;

/// Standard corpus sizes swept by the B2 inference benchmark.
pub const SAMPLE_COUNTS: [usize; 4] = [1, 10, 100, 1000];

/// Standard nesting depths swept by the B2 inference benchmark.
pub const DEPTHS: [usize; 3] = [2, 4, 6];

/// A deterministic corpus of API-response-like JSON documents.
pub fn api_corpus(seed: u64, n: usize, depth: usize) -> Vec<Value> {
    let config = CorpusConfig { max_depth: depth, ..CorpusConfig::default() };
    generate_corpus(seed, n, &config)
}

/// A messy corpus exhibiting the §2.3 real-world problems: missing
/// fields, nulls, and numbers encoded as strings.
pub fn messy_corpus(seed: u64, n: usize) -> Vec<Value> {
    let config = CorpusConfig {
        missing_field_prob: 0.3,
        null_prob: 0.15,
        stringly_number_prob: 0.2,
        ..CorpusConfig::default()
    };
    generate_corpus(seed, n, &config)
}

/// A wide, flat table (CSV-like) with `rows` rows and `width` columns.
pub fn table(seed: u64, rows: usize, width: usize) -> Value {
    tfd_value::corpus::generate_table(seed, rows, width)
}

/// Serializes a corpus to JSON text for parser benchmarks.
pub fn to_json_texts(corpus: &[Value]) -> Vec<String> {
    corpus
        .iter()
        .map(|v| tfd_json::to_json_string(&tfd_json::Json::from_value(v)))
        .collect()
}

/// JSON text for a row-shaped table: `rows` flat records of `width`
/// fields — the pipeline-benchmark workload.
pub fn json_rows_text(seed: u64, rows: usize, width: usize) -> String {
    to_json_texts(&[table(seed, rows, width)]).remove(0)
}

/// XML text for a row-shaped table (attributes + one nested element per
/// row), sized like [`json_rows_text`].
pub fn xml_rows_text(rows: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("<table>");
    for i in 0..rows {
        let _ = write!(
            out,
            "<row id=\"{i}\" name=\"item-{i}\" flag=\"true\"><v>{}</v></row>",
            i * 3
        );
    }
    out.push_str("</table>");
    out
}

/// CSV text for a row-shaped table, sized like [`json_rows_text`].
pub fn csv_rows_text(rows: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("id,name,score,date,flag\n");
    for i in 0..rows {
        let _ = writeln!(out, "{i},item-{i},{}.5,2012-05-01,{}", i, i % 2);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_deterministic() {
        assert_eq!(api_corpus(1, 5, 4), api_corpus(1, 5, 4));
        assert_eq!(messy_corpus(2, 5), messy_corpus(2, 5));
    }

    #[test]
    fn json_texts_parse_back() {
        for text in to_json_texts(&api_corpus(3, 5, 3)) {
            assert!(tfd_json::parse(&text).is_ok());
        }
    }
}
