//! # tfd-bench — shared workload generators for the benchmark harness
//!
//! Synthetic corpora used by the Criterion benches and the table/figure
//! regeneration binaries (see EXPERIMENTS.md). All generators are
//! deterministic in their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tfd_core::engine;
use tfd_core::stream::{StreamFormat, DEFAULT_CHUNK_SIZE};
use tfd_core::Shape;
use tfd_value::corpus::{generate_corpus, CorpusConfig};
use tfd_value::Value;

/// Standard corpus sizes swept by the B2 inference benchmark.
pub const SAMPLE_COUNTS: [usize; 4] = [1, 10, 100, 1000];

/// Standard nesting depths swept by the B2 inference benchmark.
pub const DEPTHS: [usize; 3] = [2, 4, 6];

/// A deterministic corpus of API-response-like JSON documents.
pub fn api_corpus(seed: u64, n: usize, depth: usize) -> Vec<Value> {
    let config = CorpusConfig {
        max_depth: depth,
        ..CorpusConfig::default()
    };
    generate_corpus(seed, n, &config)
}

/// A messy corpus exhibiting the §2.3 real-world problems: missing
/// fields, nulls, and numbers encoded as strings.
pub fn messy_corpus(seed: u64, n: usize) -> Vec<Value> {
    let config = CorpusConfig {
        missing_field_prob: 0.3,
        null_prob: 0.15,
        stringly_number_prob: 0.2,
        ..CorpusConfig::default()
    };
    generate_corpus(seed, n, &config)
}

/// A wide, flat table (CSV-like) with `rows` rows and `width` columns.
pub fn table(seed: u64, rows: usize, width: usize) -> Value {
    tfd_value::corpus::generate_table(seed, rows, width)
}

/// Serializes a corpus to JSON text for parser benchmarks.
pub fn to_json_texts(corpus: &[Value]) -> Vec<String> {
    corpus
        .iter()
        .map(|v| tfd_json::to_json_string(&tfd_json::Json::from_value(v)))
        .collect()
}

/// JSON text for a row-shaped table: `rows` flat records of `width`
/// fields — the pipeline-benchmark workload.
pub fn json_rows_text(seed: u64, rows: usize, width: usize) -> String {
    to_json_texts(&[table(seed, rows, width)]).remove(0)
}

/// JSON-lines text for a row-shaped table: the same `rows` flat records
/// as [`json_rows_text`], one document per line — the chunk-fed
/// streaming workload (each line is one record for
/// `tfd_json::stream::Streamer`, and `tfd_json::parse_many_values` is
/// its one-shot twin).
pub fn json_lines_text(seed: u64, rows: usize, width: usize) -> String {
    let table = table(seed, rows, width);
    let rows = table.elements().expect("generate_table yields a list");
    let mut out = String::new();
    for row in rows {
        out.push_str(&tfd_json::to_json_string(&tfd_json::Json::from_value(row)));
        out.push('\n');
    }
    out
}

/// Concatenated single-`<row/>` XML documents with the same per-row
/// content as [`xml_rows_text`] — the chunk-fed streaming workload (each
/// root element is one record for `tfd_xml::stream::Streamer`, and
/// `tfd_xml::parse_many_values` is its one-shot twin).
pub fn xml_docs_text(rows: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for i in 0..rows {
        let _ = writeln!(
            out,
            "<row id=\"{i}\" name=\"item-{i}\" flag=\"true\"><v>{}</v></row>",
            i * 3
        );
    }
    out
}

/// XML text for a row-shaped table (attributes + one nested element per
/// row), sized like [`json_rows_text`].
pub fn xml_rows_text(rows: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("<table>");
    for i in 0..rows {
        let _ = write!(
            out,
            "<row id=\"{i}\" name=\"item-{i}\" flag=\"true\"><v>{}</v></row>",
            i * 3
        );
    }
    out.push_str("</table>");
    out
}

/// CSV text for a row-shaped table, sized like [`json_rows_text`].
pub fn csv_rows_text(rows: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("id,name,score,date,flag\n");
    for i in 0..rows {
        let _ = writeln!(out, "{i},item-{i},{}.5,2012-05-01,{}", i, i % 2);
    }
    out
}

// --- Format-generic parse→infer pipelines, shared by the pipeline
// --- bench and the baseline bin so both always measure the same code.
// --- Everything routes through `tfd_core::engine` — the exact layer
// --- the CLI's `--stream`/`--jobs` modes ship — so there is one
// --- pipeline definition for all three formats, not three copies.

/// Streams a corpus through the format's chunk-fed front-end in
/// [`DEFAULT_CHUNK_SIZE`] reads (the CLI `--stream` path, including the
/// per-chunk reader copy), folding each record into the accumulator and
/// dropping it. The fold is lifted to the one-shot corpus shape.
pub fn stream_pipeline(format: StreamFormat, text: &str) -> Shape {
    let options = engine::infer_options_dyn(format);
    let summary =
        engine::infer_reader_parallel_dyn(format, text.as_bytes(), &options, DEFAULT_CHUNK_SIZE, 1)
            .expect("bench corpus is valid");
    engine::wrap_corpus_shape_dyn(format, summary.shape)
}

/// Sharded parallel parse→infer over an in-memory corpus (the CLI
/// `--jobs N` path): the boundary scanner cuts the corpus at record
/// boundaries, `jobs` workers parse+fold their shards, and the shapes
/// join with `csh`.
pub fn parallel_pipeline(format: StreamFormat, text: &str, jobs: usize) -> Shape {
    let options = engine::infer_options_dyn(format);
    let summary = engine::infer_slice_dyn(format, text.as_bytes(), &options, jobs)
        .expect("bench corpus is valid");
    engine::wrap_corpus_shape_dyn(format, summary.shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_deterministic() {
        assert_eq!(api_corpus(1, 5, 4), api_corpus(1, 5, 4));
        assert_eq!(messy_corpus(2, 5), messy_corpus(2, 5));
    }

    #[test]
    fn json_texts_parse_back() {
        for text in to_json_texts(&api_corpus(3, 5, 3)) {
            assert!(tfd_json::parse(&text).is_ok());
        }
    }

    #[test]
    fn streaming_workloads_match_their_oneshot_twins() {
        let jsonl = json_lines_text(3, 20, 8);
        let docs = tfd_json::parse_many_values(&jsonl).unwrap();
        assert_eq!(docs.len(), 20);
        assert_eq!(docs, table(3, 20, 8).elements().unwrap());

        let xml = xml_docs_text(20);
        assert_eq!(tfd_xml::parse_many_values(&xml).unwrap().len(), 20);
    }
}
