//! Reduction of the dynamic data operations (Fig. 6, Part I).
//!
//! Each function returns `Some(e')` when the operation reduces and `None`
//! when it is **stuck** — e.g. `convPrim(bool, 42)` "represents a stuck
//! state" (§4.1). Stuck states are how the model represents the runtime
//! exceptions of the real F# Data library.

use crate::ast::Expr;
use tfd_core::{tag_of, Multiplicity, Shape, Tag};
use tfd_value::Value;

/// `hasShape(σ, d)` — the runtime shape test (Fig. 6, Part I).
///
/// The paper spells out the record, collection and primitive cases and
/// closes with a catch-all `false`. We extend it compositionally to the
/// shapes a provider can actually embed in generated code:
///
/// * `nullable σ̂` accepts `null` and anything `σ̂` accepts;
/// * labelled tops accept everything (they are the top shape);
/// * `bit` accepts the integers 0 and 1 (§6.2 extension);
/// * `date` accepts strings that parse as dates (§6.2 extension);
/// * heterogeneous collections accept collections (and null) whose
///   elements all match some case tag, with case multiplicities
///   respected.
///
/// ```
/// use tfd_foo::ops::has_shape;
/// use tfd_core::Shape;
/// use tfd_value::Value;
/// assert!(has_shape(&Shape::Int, &Value::Int(42)));
/// assert!(has_shape(&Shape::Float, &Value::Int(42))); // float accepts int
/// assert!(!has_shape(&Shape::Bool, &Value::Int(42)));
/// ```
pub fn has_shape(shape: &Shape, d: &Value) -> bool {
    // The rule-by-rule definition lives in tfd_core::conforms so that the
    // Rust runtime (tfd-runtime) shares exactly these semantics.
    tfd_core::conforms(shape, d)
}

/// Does a data value belong to a shape-tag's family? Used by the §6.4
/// heterogeneous-collection accessors, which select elements by tag.
pub fn value_matches_tag(tag: &Tag, d: &Value) -> bool {
    tfd_core::value_matches_tag(tag, d)
}

/// `convFloat(float, i) ↝ f` and `convFloat(float, f) ↝ f`.
pub fn conv_float(d: &Value) -> Option<Expr> {
    match d {
        Value::Int(i) => Some(Expr::Data(Value::Float(*i as f64))),
        Value::Float(f) => Some(Expr::Data(Value::Float(*f))),
        _ => None,
    }
}

/// `convPrim(σ, d) ↝ d` for `(σ, d) ∈ {(int, i), (string, s), (bool, b)}`
/// — plus the `bit` extension (a 0/1 integer converts to a boolean) and
/// the `date` extension (a date-formatted string stays a string).
pub fn conv_prim(shape: &Shape, d: &Value) -> Option<Expr> {
    match (shape, d) {
        (Shape::Int, Value::Int(_))
        | (Shape::String, Value::Str(_))
        | (Shape::Bool, Value::Bool(_)) => Some(Expr::Data(d.clone())),
        (Shape::Bit, Value::Int(i)) if *i == 0 || *i == 1 => Some(Expr::Data(Value::Bool(*i == 1))),
        (Shape::Date, Value::Str(s)) => {
            tfd_csv::parse_date(s).map(|date| Expr::Data(Value::Str(date.to_string())))
        }
        _ => None,
    }
}

/// `convField(ν, νi, ν{…, νi = di, …}, e) ↝ e di`, or `e null` when the
/// record has no field named νi. Stuck when the data value is not a
/// record of name ν.
pub fn conv_field(rec_name: &str, field: &str, d: &Value, cont: &Expr) -> Option<Expr> {
    match d {
        Value::Record { name, fields } if name == rec_name => {
            let value = fields
                .iter()
                .find(|f| f.name == field)
                .map(|f| f.value.clone())
                .unwrap_or(Value::Null);
            Some(Expr::app(cont.clone(), Expr::Data(value)))
        }
        _ => None,
    }
}

/// `convNull(null, e) ↝ None` and `convNull(d, e) ↝ Some(e d)`.
pub fn conv_null(d: &Value, cont: &Expr) -> Option<Expr> {
    match d {
        Value::Null => Some(Expr::NoneLit),
        other => Some(Expr::some(Expr::app(
            cont.clone(),
            Expr::Data(other.clone()),
        ))),
    }
}

/// `convElements([d1; …; dn], e) ↝ e d1 :: … :: e dn :: nil` and
/// `convElements(null, e) ↝ nil`. Stuck on non-collection data.
pub fn conv_elements(d: &Value, cont: &Expr) -> Option<Expr> {
    match d {
        Value::Null => Some(Expr::Nil),
        Value::List(items) => {
            let mut out = Expr::Nil;
            for item in items.iter().rev() {
                out = Expr::Cons(
                    Box::new(Expr::app(cont.clone(), Expr::Data(item.clone()))),
                    Box::new(out),
                );
            }
            Some(out)
        }
        _ => None,
    }
}

/// The §6.4 extension: select the elements of a collection matching the
/// case shape's tag and convert them per the case multiplicity.
///
/// * `ψ = 1`: exactly one matching element required — reduces to
///   `e d`; stuck otherwise.
/// * `ψ = 1?`: `None` for zero matches, `Some(e d)` for one; stuck for
///   more.
/// * `ψ = *`: a Foo list of conversions (like `convElements`).
///
/// `null` reads as the empty collection throughout.
pub fn conv_tagged(
    shape: &Shape,
    multiplicity: Multiplicity,
    d: &Value,
    cont: &Expr,
) -> Option<Expr> {
    let items: &[Value] = match d {
        Value::Null => &[],
        Value::List(items) => items,
        _ => return None,
    };
    let tag = tag_of(shape);
    let matching: Vec<&Value> = items
        .iter()
        .filter(|item| value_matches_tag(&tag, item))
        .collect();
    match multiplicity {
        Multiplicity::One => match matching.as_slice() {
            [only] => Some(Expr::app(cont.clone(), Expr::Data((*only).clone()))),
            _ => None,
        },
        Multiplicity::ZeroOrOne => match matching.as_slice() {
            [] => Some(Expr::NoneLit),
            [only] => Some(Expr::some(Expr::app(
                cont.clone(),
                Expr::Data((*only).clone()),
            ))),
            _ => None,
        },
        Multiplicity::Many => {
            let mut out = Expr::Nil;
            for item in matching.iter().rev() {
                out = Expr::Cons(
                    Box::new(Expr::app(cont.clone(), Expr::Data((*item).clone()))),
                    Box::new(out),
                );
            }
            Some(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfd_value::{arr, json_rec, rec};

    fn ident() -> Expr {
        Expr::lam("x", crate::ast::Type::Data, Expr::var("x"))
    }

    // --- hasShape, rule by rule ---

    #[test]
    fn has_shape_primitives() {
        assert!(has_shape(&Shape::String, &Value::str("s")));
        assert!(has_shape(&Shape::Int, &Value::Int(1)));
        assert!(has_shape(&Shape::Bool, &Value::Bool(true)));
        assert!(has_shape(&Shape::Bool, &Value::Bool(false)));
        assert!(has_shape(&Shape::Float, &Value::Float(1.5)));
        assert!(has_shape(&Shape::Float, &Value::Int(1))); // float accepts int
        assert!(!has_shape(&Shape::Int, &Value::Float(1.5)));
        assert!(!has_shape(&Shape::Bool, &Value::Int(42)));
        assert!(!has_shape(&Shape::String, &Value::Int(1)));
    }

    #[test]
    fn has_shape_records_require_name_and_fields() {
        let shape = Shape::record("P", [("x", Shape::Int)]);
        assert!(has_shape(&shape, &rec("P", [("x", Value::Int(1))])));
        // Extra fields in the data are fine:
        assert!(has_shape(
            &shape,
            &rec("P", [("x", Value::Int(1)), ("y", Value::Bool(true))])
        ));
        // Wrong name, missing field, wrong field shape:
        assert!(!has_shape(&shape, &rec("Q", [("x", Value::Int(1))])));
        assert!(!has_shape(&shape, &rec("P", [("y", Value::Int(1))])));
        assert!(!has_shape(&shape, &rec("P", [("x", Value::str("no"))])));
    }

    #[test]
    fn has_shape_record_nullable_field_may_be_missing() {
        let shape = Shape::record("P", [("x", Shape::Int.ceil())]);
        assert!(has_shape(&shape, &rec("P", [("x", Value::Int(1))])));
        assert!(has_shape(&shape, &rec("P", [("x", Value::Null)])));
        assert!(has_shape(&shape, &rec("P", Vec::<(String, Value)>::new())));
    }

    #[test]
    fn has_shape_collections() {
        let shape = Shape::list(Shape::Int);
        assert!(has_shape(&shape, &arr([Value::Int(1), Value::Int(2)])));
        assert!(has_shape(&shape, &arr([])));
        assert!(has_shape(&shape, &Value::Null)); // null reads as empty
        assert!(!has_shape(&shape, &arr([Value::str("x")])));
        assert!(!has_shape(&shape, &Value::Int(1)));
    }

    #[test]
    fn has_shape_nullable() {
        let shape = Shape::Int.ceil();
        assert!(has_shape(&shape, &Value::Null));
        assert!(has_shape(&shape, &Value::Int(1)));
        assert!(!has_shape(&shape, &Value::str("x")));
    }

    #[test]
    fn has_shape_top_accepts_everything() {
        for d in [
            Value::Null,
            Value::Int(1),
            arr([]),
            rec("R", [("x", Value::Int(1))]),
        ] {
            assert!(has_shape(&Shape::any(), &d));
            assert!(has_shape(&Shape::Top(vec![Shape::Bool]), &d));
        }
    }

    #[test]
    fn has_shape_extensions() {
        assert!(has_shape(&Shape::Bit, &Value::Int(0)));
        assert!(has_shape(&Shape::Bit, &Value::Int(1)));
        assert!(!has_shape(&Shape::Bit, &Value::Int(2)));
        assert!(has_shape(&Shape::Date, &Value::str("2012-05-01")));
        assert!(!has_shape(&Shape::Date, &Value::str("hello")));
    }

    #[test]
    fn has_shape_hetero_checks_tags_and_multiplicities() {
        let shape = Shape::HeteroList(vec![
            (
                Shape::record("\u{2022}", [("p", Shape::Int)]),
                Multiplicity::One,
            ),
            (Shape::list(Shape::Int), Multiplicity::ZeroOrOne),
        ]);
        let ok = arr([json_rec([("p", Value::Int(1))]), arr([Value::Int(2)])]);
        assert!(has_shape(&shape, &ok));
        // Missing the optional collection case is fine:
        assert!(has_shape(&shape, &arr([json_rec([("p", Value::Int(1))])])));
        // Missing the mandatory record case is not:
        assert!(!has_shape(&shape, &arr([arr([Value::Int(2)])])));
        // A second record violates multiplicity 1:
        assert!(!has_shape(
            &shape,
            &arr([
                json_rec([("p", Value::Int(1))]),
                json_rec([("p", Value::Int(2))])
            ])
        ));
        // An element matching no case:
        assert!(!has_shape(&shape, &arr([Value::str("stray")])));
        assert!(has_shape(&shape, &Value::Null));
    }

    // --- Conversion operations ---

    #[test]
    fn conv_float_accepts_both_numerics() {
        assert_eq!(
            conv_float(&Value::Int(42)),
            Some(Expr::data(Value::Float(42.0)))
        );
        assert_eq!(
            conv_float(&Value::Float(2.5)),
            Some(Expr::data(Value::Float(2.5)))
        );
        assert_eq!(conv_float(&Value::str("x")), None); // stuck
        assert_eq!(conv_float(&Value::Null), None); // the paper's example stuck state
    }

    #[test]
    fn conv_prim_identity_on_match() {
        assert_eq!(
            conv_prim(&Shape::Int, &Value::Int(1)),
            Some(Expr::data(1i64))
        );
        assert_eq!(
            conv_prim(&Shape::String, &Value::str("s")),
            Some(Expr::data("s"))
        );
        assert_eq!(
            conv_prim(&Shape::Bool, &Value::Bool(true)),
            Some(Expr::data(true))
        );
        // convPrim(bool, 42) is the paper's canonical stuck state:
        assert_eq!(conv_prim(&Shape::Bool, &Value::Int(42)), None);
        assert_eq!(conv_prim(&Shape::Int, &Value::Float(1.5)), None);
    }

    #[test]
    fn conv_prim_bit_and_date_extensions() {
        assert_eq!(
            conv_prim(&Shape::Bit, &Value::Int(1)),
            Some(Expr::data(true))
        );
        assert_eq!(
            conv_prim(&Shape::Bit, &Value::Int(0)),
            Some(Expr::data(false))
        );
        assert_eq!(conv_prim(&Shape::Bit, &Value::Int(2)), None);
        assert_eq!(
            conv_prim(&Shape::Date, &Value::str("May 3, 2012")),
            Some(Expr::data("2012-05-03"))
        );
        assert_eq!(conv_prim(&Shape::Date, &Value::str("nope")), None);
    }

    #[test]
    fn conv_field_projects_or_passes_null() {
        let d = rec("P", [("x", Value::Int(1))]);
        assert_eq!(
            conv_field("P", "x", &d, &ident()),
            Some(Expr::app(ident(), Expr::data(1i64)))
        );
        assert_eq!(
            conv_field("P", "missing", &d, &ident()),
            Some(Expr::app(ident(), Expr::data(Value::Null)))
        );
        // Wrong record name or non-record: stuck.
        assert_eq!(conv_field("Q", "x", &d, &ident()), None);
        assert_eq!(conv_field("P", "x", &Value::Int(1), &ident()), None);
    }

    #[test]
    fn conv_null_branches() {
        assert_eq!(conv_null(&Value::Null, &ident()), Some(Expr::NoneLit));
        assert_eq!(
            conv_null(&Value::Int(1), &ident()),
            Some(Expr::some(Expr::app(ident(), Expr::data(1i64))))
        );
    }

    #[test]
    fn conv_elements_maps_continuation() {
        let d = arr([Value::Int(1), Value::Int(2)]);
        let expected = Expr::Cons(
            Box::new(Expr::app(ident(), Expr::data(1i64))),
            Box::new(Expr::Cons(
                Box::new(Expr::app(ident(), Expr::data(2i64))),
                Box::new(Expr::Nil),
            )),
        );
        assert_eq!(conv_elements(&d, &ident()), Some(expected));
        assert_eq!(conv_elements(&Value::Null, &ident()), Some(Expr::Nil));
        assert_eq!(conv_elements(&arr([]), &ident()), Some(Expr::Nil));
        assert_eq!(conv_elements(&Value::Int(1), &ident()), None);
    }

    #[test]
    fn conv_tagged_multiplicity_one() {
        let shape = Shape::record("\u{2022}", [("p", Shape::Int)]);
        let d = arr([json_rec([("p", Value::Int(5))]), arr([Value::Int(1)])]);
        let got = conv_tagged(&shape, Multiplicity::One, &d, &ident()).unwrap();
        assert_eq!(
            got,
            Expr::app(ident(), Expr::data(json_rec([("p", Value::Int(5))])))
        );
        // Zero or two matches: stuck.
        assert_eq!(
            conv_tagged(&shape, Multiplicity::One, &arr([]), &ident()),
            None
        );
        let two = arr([
            json_rec([("p", Value::Int(1))]),
            json_rec([("p", Value::Int(2))]),
        ]);
        assert_eq!(conv_tagged(&shape, Multiplicity::One, &two, &ident()), None);
    }

    #[test]
    fn conv_tagged_multiplicity_zero_or_one() {
        let shape = Shape::record("\u{2022}", [("p", Shape::Int)]);
        assert_eq!(
            conv_tagged(&shape, Multiplicity::ZeroOrOne, &arr([]), &ident()),
            Some(Expr::NoneLit)
        );
        let one = arr([json_rec([("p", Value::Int(1))])]);
        assert!(matches!(
            conv_tagged(&shape, Multiplicity::ZeroOrOne, &one, &ident()),
            Some(Expr::SomeLit(_))
        ));
    }

    #[test]
    fn conv_tagged_multiplicity_many() {
        let shape = Shape::Int;
        let d = arr([Value::Int(1), Value::str("skip"), Value::Int(2)]);
        let got = conv_tagged(&shape, Multiplicity::Many, &d, &ident()).unwrap();
        // Both numbers selected, the string skipped.
        let expected = Expr::Cons(
            Box::new(Expr::app(ident(), Expr::data(1i64))),
            Box::new(Expr::Cons(
                Box::new(Expr::app(ident(), Expr::data(2i64))),
                Box::new(Expr::Nil),
            )),
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn conv_tagged_null_is_empty() {
        assert_eq!(
            conv_tagged(&Shape::Int, Multiplicity::Many, &Value::Null, &ident()),
            Some(Expr::Nil)
        );
        assert_eq!(
            conv_tagged(&Shape::Int, Multiplicity::One, &Value::Null, &ident()),
            None
        );
    }
}
