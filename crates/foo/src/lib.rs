//! # tfd-foo — the Foo calculus (§4.1)
//!
//! An executable model of the paper's Foo calculus: "a subset of F# with
//! objects and properties, extended with operations for working with
//! weakly typed structured data along the lines of the F# Data runtime."
//!
//! * [`Expr`], [`Type`], [`Class`], [`Classes`] — the syntax of Fig. 5
//!   (plus the §6.5 `exn` value and `int(·)` coercion);
//! * [`ops`] — the dynamic data operations of Fig. 6 Part I
//!   (`hasShape`, `convPrim`, `convFloat`, `convField`, `convNull`,
//!   `convElements`, and the §6.4 `convTagged` extension);
//! * [`step`] / [`run`] — the small-step CBV reduction of Fig. 6 Part II,
//!   with stuck-state detection (the model of runtime errors);
//! * [`type_of`] / [`check_classes`] — the type system of Fig. 7.
//!
//! The Foo calculus "does not have null values and data values d are
//! never directly exposed" — data enters programs only as `Expr::Data`
//! operands of the dynamic operations, which the type provider (see
//! `tfd-provider`) generates.
//!
//! # Example
//!
//! ```
//! use tfd_foo::{run, Classes, Expr, Outcome, Op};
//! use tfd_core::Shape;
//!
//! // convFloat(float, 42) ↝ 42.0
//! let e = Expr::Op(Op::ConvFloat(Shape::Float, Box::new(Expr::data(42i64))));
//! let out = run(&Classes::new(), &e);
//! assert_eq!(out, Outcome::Value(Expr::data(42.0)));
//!
//! // convPrim(bool, 42) is stuck — the paper's canonical runtime error.
//! let bad = Expr::Op(Op::ConvPrim(Shape::Bool, Box::new(Expr::data(42i64))));
//! assert!(run(&Classes::new(), &bad).is_stuck());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod eval;
pub mod ops;
mod typecheck;

pub use ast::{subst, Class, Classes, Expr, Member, Op, Type};
pub use eval::{run, run_with_fuel, step, Outcome, Step, StuckReason, DEFAULT_FUEL};
pub use typecheck::{check_against, check_classes, compatible, type_of, Ctx, TypeError};
