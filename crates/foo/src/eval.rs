//! Small-step call-by-value reduction for the Foo calculus (Fig. 6).
//!
//! [`step`] performs one reduction `L, e ↝ e′`; [`run`] iterates to a
//! value, a **stuck state**, or the §6.5 exception. Stuck states arise
//! only from the dynamic data operations — e.g. `convPrim(bool, 42)` —
//! exactly as §4.1 describes; the relative-safety theorem characterizes
//! when they cannot occur.
//!
//! The (ctx) rule and the evaluation contexts `E` of the paper are
//! realized by the recursive descent inside [`step`]: each congruence
//! case first tries to reduce the left-most non-value sub-expression.
//! The §6.5 exception propagates through every context (`C[exn] ↝ exn`).

use crate::ast::{subst, Classes, Expr, Op};
use crate::ops;
use std::fmt;
use tfd_value::Value;

/// Why an expression cannot take a step.
#[derive(Debug, Clone, PartialEq)]
pub enum StuckReason {
    /// A conversion received data of the wrong shape — the payload names
    /// the operation and describes the offending value.
    BadData {
        /// Which operation got stuck (`convPrim`, `convFloat`, …).
        operation: &'static str,
        /// Description of the offending data value.
        found: String,
    },
    /// An unbound variable was reached (ill-formed program).
    UnboundVariable(String),
    /// `new C(…)` or `e.N` referenced a missing class or member.
    UnknownClass(String),
    /// Member access on a value that is not an object.
    NotAnObject(String),
    /// A non-function was applied, a non-boolean tested, etc.
    IllTyped(String),
}

impl fmt::Display for StuckReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuckReason::BadData { operation, found } => {
                write!(f, "{operation} applied to incompatible data: {found}")
            }
            StuckReason::UnboundVariable(x) => write!(f, "unbound variable '{x}'"),
            StuckReason::UnknownClass(c) => write!(f, "unknown class or member '{c}'"),
            StuckReason::NotAnObject(e) => write!(f, "member access on non-object {e}"),
            StuckReason::IllTyped(msg) => write!(f, "ill-typed redex: {msg}"),
        }
    }
}

/// The result of one reduction attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// `e ↝ e′`.
    Reduced(Expr),
    /// The expression is already a value.
    Value,
    /// The §6.5 exception reached the top.
    Exception,
    /// No rule applies.
    Stuck(StuckReason),
}

/// The result of running an expression to completion.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Reduced to a value.
    Value(Expr),
    /// The §6.5 exception propagated to the top.
    Exception,
    /// Evaluation got stuck (the model of a runtime error, §4.1).
    Stuck(StuckReason),
    /// The step budget was exhausted (only possible for diverging
    /// programs; provided code always terminates).
    OutOfFuel,
}

impl Outcome {
    /// Extracts the value, panicking otherwise (test helper).
    ///
    /// # Panics
    ///
    /// Panics if the outcome is not a value.
    pub fn unwrap_value(self) -> Expr {
        match self {
            Outcome::Value(v) => v,
            other => panic!("expected a value, got {other:?}"),
        }
    }

    /// Is this a stuck outcome?
    pub fn is_stuck(&self) -> bool {
        matches!(self, Outcome::Stuck(_))
    }
}

/// Performs a single reduction step `L, e ↝ e′`.
pub fn step(classes: &Classes, e: &Expr) -> Step {
    if e.is_value() {
        return Step::Value;
    }
    match e {
        // C[exn] ↝ exn is handled in each congruence case; a bare exn at
        // the top is the Exception outcome.
        Expr::Exn => Step::Exception,

        Expr::Var(x) => Step::Stuck(StuckReason::UnboundVariable(x.clone())),

        // (fun) (λx.e) v ↝ e[x ← v], with (ctx) descending into both
        // positions (v E ordering: function first, then argument).
        Expr::App(f, a) => match (f.is_value(), a.is_value()) {
            (false, _) => congr1(classes, f, |f2| Expr::App(Box::new(f2), a.clone())),
            (true, false) => congr1(classes, a, |a2| Expr::App(f.clone(), Box::new(a2))),
            (true, true) => match f.as_ref() {
                Expr::Lam(x, _, body) => Step::Reduced(subst(body, x, a)),
                other => Step::Stuck(StuckReason::IllTyped(format!(
                    "application of non-function {other}"
                ))),
            },
        },

        // (member) — look up the member body and substitute constructor
        // arguments for constructor parameters.
        Expr::MemberAccess(obj, name) => {
            if !obj.is_value() {
                return congr1(classes, obj, |o2| {
                    Expr::MemberAccess(Box::new(o2), name.clone())
                });
            }
            match obj.as_ref() {
                Expr::New(class_name, args) => {
                    let Some(class) = classes.get(class_name) else {
                        return Step::Stuck(StuckReason::UnknownClass(class_name.clone()));
                    };
                    let Some(member) = class.member(name) else {
                        return Step::Stuck(StuckReason::UnknownClass(format!(
                            "{class_name}.{name}"
                        )));
                    };
                    let mut body = member.body.clone();
                    for ((param, _), arg) in class.params.iter().zip(args) {
                        body = subst(&body, param, arg);
                    }
                    Step::Reduced(body)
                }
                other => Step::Stuck(StuckReason::NotAnObject(other.to_string())),
            }
        }

        // new C(v̄, E, ē) — reduce constructor arguments left to right.
        Expr::New(c, args) => {
            let idx = args.iter().position(|a| !a.is_value());
            match idx {
                None => Step::Value, // unreachable: is_value() was false
                Some(i) => {
                    let mut args2 = args.clone();
                    match step(classes, &args[i]) {
                        Step::Reduced(a2) => {
                            args2[i] = a2;
                            Step::Reduced(Expr::New(c.clone(), args2))
                        }
                        other => other,
                    }
                }
            }
        }

        Expr::SomeLit(inner) => congr1(classes, inner, |i2| Expr::SomeLit(Box::new(i2))),

        // (match1) / (match2)
        Expr::MatchOption {
            scrutinee,
            binder,
            some_branch,
            none_branch,
        } => {
            if !scrutinee.is_value() {
                let binder = binder.clone();
                let some_branch = some_branch.clone();
                let none_branch = none_branch.clone();
                return congr1(classes, scrutinee, move |s2| Expr::MatchOption {
                    scrutinee: Box::new(s2),
                    binder: binder.clone(),
                    some_branch: some_branch.clone(),
                    none_branch: none_branch.clone(),
                });
            }
            match scrutinee.as_ref() {
                Expr::NoneLit => Step::Reduced((**none_branch).clone()),
                Expr::SomeLit(v) => Step::Reduced(subst(some_branch, binder, v)),
                other => Step::Stuck(StuckReason::IllTyped(format!("match-option on {other}"))),
            }
        }

        Expr::Cons(h, t) => match (h.is_value(), t.is_value()) {
            (false, _) => congr1(classes, h, |h2| Expr::Cons(Box::new(h2), t.clone())),
            (true, false) => congr1(classes, t, |t2| Expr::Cons(h.clone(), Box::new(t2))),
            (true, true) => Step::Value, // unreachable
        },

        // (match3) / (match4)
        Expr::MatchList {
            scrutinee,
            head,
            tail,
            cons_branch,
            nil_branch,
        } => {
            if !scrutinee.is_value() {
                let head = head.clone();
                let tail = tail.clone();
                let cons_branch = cons_branch.clone();
                let nil_branch = nil_branch.clone();
                return congr1(classes, scrutinee, move |s2| Expr::MatchList {
                    scrutinee: Box::new(s2),
                    head: head.clone(),
                    tail: tail.clone(),
                    cons_branch: cons_branch.clone(),
                    nil_branch: nil_branch.clone(),
                });
            }
            match scrutinee.as_ref() {
                Expr::Nil => Step::Reduced((**nil_branch).clone()),
                Expr::Cons(h, t) => {
                    let once = subst(cons_branch, head, h);
                    Step::Reduced(subst(&once, tail, t))
                }
                other => Step::Stuck(StuckReason::IllTyped(format!("match-list on {other}"))),
            }
        }

        // (eq1) / (eq2) — v = v′ compares values structurally.
        Expr::Eq(a, b) => match (a.is_value(), b.is_value()) {
            (false, _) => congr1(classes, a, |a2| Expr::Eq(Box::new(a2), b.clone())),
            (true, false) => congr1(classes, b, |b2| Expr::Eq(a.clone(), Box::new(b2))),
            (true, true) => Step::Reduced(Expr::Data(Value::Bool(a == b))),
        },

        // (cond1) / (cond2)
        Expr::If(c, t, f) => {
            if !c.is_value() {
                let t = t.clone();
                let f = f.clone();
                return congr1(classes, c, move |c2| {
                    Expr::If(Box::new(c2), t.clone(), f.clone())
                });
            }
            match c.as_ref() {
                Expr::Data(Value::Bool(true)) => Step::Reduced((**t).clone()),
                Expr::Data(Value::Bool(false)) => Step::Reduced((**f).clone()),
                other => Step::Stuck(StuckReason::IllTyped(format!(
                    "if-condition is not a boolean: {other}"
                ))),
            }
        }

        // §6.5 int(e) — truncating float→int coercion.
        Expr::ToInt(inner) => {
            if !inner.is_value() {
                return congr1(classes, inner, |i2| Expr::ToInt(Box::new(i2)));
            }
            match inner.as_ref() {
                Expr::Data(Value::Float(f)) => Step::Reduced(Expr::Data(Value::Int(*f as i64))),
                Expr::Data(Value::Int(i)) => Step::Reduced(Expr::Data(Value::Int(*i))),
                other => Step::Stuck(StuckReason::IllTyped(format!("int(·) applied to {other}"))),
            }
        }

        // Dynamic data operations (Fig. 6, Part I).
        Expr::Op(op) => step_op(classes, op),

        Expr::Data(_) | Expr::Lam(..) | Expr::NoneLit | Expr::Nil => Step::Value,
    }
}

/// Congruence helper: reduce a sub-expression in evaluation position and
/// rebuild, propagating exceptions (`C[exn] ↝ exn`) and stuckness.
fn congr1(classes: &Classes, sub: &Expr, rebuild: impl FnOnce(Expr) -> Expr) -> Step {
    if matches!(sub, Expr::Exn) {
        return Step::Reduced(Expr::Exn);
    }
    match step(classes, sub) {
        Step::Reduced(s2) => Step::Reduced(rebuild(s2)),
        Step::Exception => Step::Reduced(Expr::Exn),
        other => other,
    }
}

/// Extracts the data payload of an operand that must already be a data
/// value.
fn as_data(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Data(d) => Some(d),
        _ => None,
    }
}

fn step_op(classes: &Classes, op: &Op) -> Step {
    // Reduce operand positions first (op(v, E, e) ordering).
    macro_rules! descend {
        ($e:expr, $rebuild:expr) => {
            if !$e.is_value() {
                return congr1(classes, $e, $rebuild);
            }
        };
    }

    match op {
        Op::HasShape(shape, e) => {
            descend!(e, {
                let shape = shape.clone();
                move |e2| Expr::Op(Op::HasShape(shape, Box::new(e2)))
            });
            match as_data(e) {
                Some(d) => Step::Reduced(Expr::Data(Value::Bool(ops::has_shape(shape, d)))),
                None => Step::Stuck(StuckReason::BadData {
                    operation: "hasShape",
                    found: e.to_string(),
                }),
            }
        }
        Op::ConvFloat(shape, e) => {
            descend!(e, {
                let shape = shape.clone();
                move |e2| Expr::Op(Op::ConvFloat(shape, Box::new(e2)))
            });
            match as_data(e).and_then(ops::conv_float) {
                Some(e2) => Step::Reduced(e2),
                None => Step::Stuck(StuckReason::BadData {
                    operation: "convFloat",
                    found: e.to_string(),
                }),
            }
        }
        Op::ConvPrim(shape, e) => {
            descend!(e, {
                let shape = shape.clone();
                move |e2| Expr::Op(Op::ConvPrim(shape, Box::new(e2)))
            });
            match as_data(e).and_then(|d| ops::conv_prim(shape, d)) {
                Some(e2) => Step::Reduced(e2),
                None => Step::Stuck(StuckReason::BadData {
                    operation: "convPrim",
                    found: e.to_string(),
                }),
            }
        }
        Op::ConvField(rec_name, field, e1, e2) => {
            descend!(e1, {
                let (rec_name, field, e2) = (*rec_name, *field, e2.clone());
                move |e1b| Expr::Op(Op::ConvField(rec_name, field, Box::new(e1b), e2))
            });
            match as_data(e1).and_then(|d| ops::conv_field(rec_name, field, d, e2)) {
                Some(out) => Step::Reduced(out),
                None => Step::Stuck(StuckReason::BadData {
                    operation: "convField",
                    found: e1.to_string(),
                }),
            }
        }
        Op::ConvNull(e1, e2) => {
            descend!(e1, {
                let e2 = e2.clone();
                move |e1b| Expr::Op(Op::ConvNull(Box::new(e1b), e2))
            });
            match as_data(e1).and_then(|d| ops::conv_null(d, e2)) {
                Some(out) => Step::Reduced(out),
                None => Step::Stuck(StuckReason::BadData {
                    operation: "convNull",
                    found: e1.to_string(),
                }),
            }
        }
        Op::ConvElements(e1, e2) => {
            descend!(e1, {
                let e2 = e2.clone();
                move |e1b| Expr::Op(Op::ConvElements(Box::new(e1b), e2))
            });
            match as_data(e1).and_then(|d| ops::conv_elements(d, e2)) {
                Some(out) => Step::Reduced(out),
                None => Step::Stuck(StuckReason::BadData {
                    operation: "convElements",
                    found: e1.to_string(),
                }),
            }
        }
        Op::ConvTagged(shape, m, e1, e2) => {
            descend!(e1, {
                let (shape, m, e2) = (shape.clone(), *m, e2.clone());
                move |e1b| Expr::Op(Op::ConvTagged(shape, m, Box::new(e1b), e2))
            });
            match as_data(e1).and_then(|d| ops::conv_tagged(shape, *m, d, e2)) {
                Some(out) => Step::Reduced(out),
                None => Step::Stuck(StuckReason::BadData {
                    operation: "convTagged",
                    found: e1.to_string(),
                }),
            }
        }
    }
}

/// Default step budget for [`run`]. Provided code is non-recursive, so
/// its step count is linear in the data size; this bound is generous.
pub const DEFAULT_FUEL: usize = 1_000_000;

/// Runs an expression to an [`Outcome`] with the default fuel.
pub fn run(classes: &Classes, e: &Expr) -> Outcome {
    run_with_fuel(classes, e, DEFAULT_FUEL)
}

/// Runs an expression to an [`Outcome`], spending at most `fuel` steps.
pub fn run_with_fuel(classes: &Classes, e: &Expr, fuel: usize) -> Outcome {
    let mut current = e.clone();
    for _ in 0..fuel {
        match step(classes, &current) {
            Step::Value => return Outcome::Value(current),
            Step::Exception => return Outcome::Exception,
            Step::Stuck(r) => return Outcome::Stuck(r),
            Step::Reduced(next) => current = next,
        }
    }
    Outcome::OutOfFuel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Class, Member, Type};
    use tfd_core::Shape;
    use tfd_value::{arr, rec};

    fn empty() -> Classes {
        Classes::new()
    }

    fn run0(e: &Expr) -> Outcome {
        run(&empty(), e)
    }

    fn int(i: i64) -> Expr {
        Expr::data(i)
    }

    // --- One test per Fig. 6 Part II rule ---

    #[test]
    fn rule_fun_beta_reduction() {
        let e = Expr::app(Expr::lam("x", Type::Int, Expr::var("x")), int(5));
        assert_eq!(run0(&e).unwrap_value(), int(5));
    }

    #[test]
    fn rule_cond1_cond2() {
        let t = Expr::if_(Expr::data(true), int(1), int(2));
        assert_eq!(run0(&t).unwrap_value(), int(1));
        let f = Expr::if_(Expr::data(false), int(1), int(2));
        assert_eq!(run0(&f).unwrap_value(), int(2));
    }

    #[test]
    fn rule_eq1_eq2() {
        let e = Expr::Eq(Box::new(int(3)), Box::new(int(3)));
        assert_eq!(run0(&e).unwrap_value(), Expr::data(true));
        let e2 = Expr::Eq(Box::new(int(3)), Box::new(int(4)));
        assert_eq!(run0(&e2).unwrap_value(), Expr::data(false));
    }

    #[test]
    fn rule_match_option() {
        let m = |scrut: Expr| Expr::MatchOption {
            scrutinee: Box::new(scrut),
            binder: "x".into(),
            some_branch: Box::new(Expr::var("x")),
            none_branch: Box::new(int(0)),
        };
        assert_eq!(run0(&m(Expr::some(int(7)))).unwrap_value(), int(7));
        assert_eq!(run0(&m(Expr::NoneLit)).unwrap_value(), int(0));
    }

    #[test]
    fn rule_match_list() {
        let m = |scrut: Expr| Expr::MatchList {
            scrutinee: Box::new(scrut),
            head: "h".into(),
            tail: "t".into(),
            cons_branch: Box::new(Expr::var("h")),
            nil_branch: Box::new(int(0)),
        };
        let list = Expr::Cons(Box::new(int(1)), Box::new(Expr::Nil));
        assert_eq!(run0(&m(list)).unwrap_value(), int(1));
        assert_eq!(run0(&m(Expr::Nil)).unwrap_value(), int(0));
    }

    #[test]
    fn rule_member_substitutes_constructor_args() {
        let mut classes = Classes::new();
        classes.add(Class {
            name: "C".into(),
            params: vec![("x1".into(), Type::Data)],
            members: vec![Member {
                name: "Get".into(),
                ty: Type::Data,
                body: Expr::var("x1"),
            }],
        });
        let e = Expr::member(Expr::New("C".into(), vec![int(9)]), "Get");
        assert_eq!(run(&classes, &e).unwrap_value(), int(9));
    }

    #[test]
    fn rule_ctx_reduces_left_to_right() {
        // new C(E, e): the first argument reduces before the second.
        let mut classes = Classes::new();
        classes.add(Class {
            name: "C".into(),
            params: vec![("a".into(), Type::Int), ("b".into(), Type::Int)],
            members: vec![Member {
                name: "Sum".into(),
                ty: Type::Bool,
                body: Expr::Eq(Box::new(Expr::var("a")), Box::new(Expr::var("b"))),
            }],
        });
        let arg1 = Expr::if_(Expr::data(true), int(1), int(2));
        let arg2 = Expr::if_(Expr::data(false), int(1), int(2));
        let e = Expr::member(Expr::New("C".into(), vec![arg1, arg2]), "Sum");
        // 1 vs 2 → false
        assert_eq!(run(&classes, &e).unwrap_value(), Expr::data(false));
    }

    // --- Stuck states ---

    #[test]
    fn conv_prim_bool_42_is_stuck() {
        // The paper's canonical stuck state (§4.1).
        let e = Expr::Op(Op::ConvPrim(Shape::Bool, Box::new(int(42))));
        match run0(&e) {
            Outcome::Stuck(StuckReason::BadData { operation, .. }) => {
                assert_eq!(operation, "convPrim");
            }
            other => panic!("expected stuck, got {other:?}"),
        }
    }

    #[test]
    fn conv_float_null_is_stuck() {
        let e = Expr::Op(Op::ConvFloat(
            Shape::Float,
            Box::new(Expr::data(Value::Null)),
        ));
        assert!(run0(&e).is_stuck());
    }

    #[test]
    fn conv_float_42_widens() {
        let e = Expr::Op(Op::ConvFloat(Shape::Float, Box::new(int(42))));
        assert_eq!(run0(&e).unwrap_value(), Expr::data(Value::Float(42.0)));
    }

    #[test]
    fn unbound_variable_is_stuck() {
        assert!(matches!(
            run0(&Expr::var("ghost")),
            Outcome::Stuck(StuckReason::UnboundVariable(_))
        ));
    }

    #[test]
    fn applying_non_function_is_stuck() {
        let e = Expr::app(int(1), int(2));
        assert!(matches!(run0(&e), Outcome::Stuck(StuckReason::IllTyped(_))));
    }

    #[test]
    fn member_on_unknown_class_is_stuck() {
        let e = Expr::member(Expr::New("Ghost".into(), vec![]), "M");
        assert!(matches!(
            run0(&e),
            Outcome::Stuck(StuckReason::UnknownClass(_))
        ));
    }

    // --- Exception propagation (§6.5) ---

    #[test]
    fn exn_propagates_through_contexts() {
        let e = Expr::app(
            Expr::lam("x", Type::Int, Expr::var("x")),
            Expr::if_(Expr::data(true), Expr::Exn, int(1)),
        );
        assert_eq!(run0(&e), Outcome::Exception);
        let e2 = Expr::Cons(Box::new(Expr::Exn), Box::new(Expr::Nil));
        assert_eq!(run0(&e2), Outcome::Exception);
        let e3 = Expr::some(Expr::Exn);
        assert_eq!(run0(&e3), Outcome::Exception);
    }

    // --- §6.5 int(·) coercion ---

    #[test]
    fn to_int_truncates_floats() {
        let e = Expr::ToInt(Box::new(Expr::data(Value::Float(3.7))));
        assert_eq!(run0(&e).unwrap_value(), int(3));
        let e2 = Expr::ToInt(Box::new(int(5)));
        assert_eq!(run0(&e2).unwrap_value(), int(5));
        let e3 = Expr::ToInt(Box::new(Expr::data("x")));
        assert!(run0(&e3).is_stuck());
    }

    // --- End-to-end data op pipelines ---

    #[test]
    fn conv_elements_then_match() {
        // convElements([1;2], λx. convFloat(x)) and take the head.
        let conv = Expr::Op(Op::ConvElements(
            Box::new(Expr::data(arr([int_v(1), int_v(2)]))),
            Box::new(Expr::lam(
                "x",
                Type::Data,
                Expr::Op(Op::ConvFloat(Shape::Float, Box::new(Expr::var("x")))),
            )),
        ));
        let e = Expr::MatchList {
            scrutinee: Box::new(conv),
            head: "h".into(),
            tail: "t".into(),
            cons_branch: Box::new(Expr::var("h")),
            nil_branch: Box::new(Expr::data(Value::Float(0.0))),
        };
        assert_eq!(run0(&e).unwrap_value(), Expr::data(Value::Float(1.0)));
    }

    fn int_v(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn conv_field_missing_field_flows_null_to_continuation() {
        // convField(P, y, P{x↦1}, λv. convNull(v, λw. convPrim(int, w)))
        // should produce None (the missing field reads as null).
        let d = rec("P", [("x", int_v(1))]);
        let e = Expr::Op(Op::ConvField(
            "P".into(),
            "y".into(),
            Box::new(Expr::Data(d)),
            Box::new(Expr::lam(
                "v",
                Type::Data,
                Expr::Op(Op::ConvNull(
                    Box::new(Expr::var("v")),
                    Box::new(Expr::lam(
                        "w",
                        Type::Data,
                        Expr::Op(Op::ConvPrim(Shape::Int, Box::new(Expr::var("w")))),
                    )),
                )),
            )),
        ));
        assert_eq!(run0(&e).unwrap_value(), Expr::NoneLit);
    }

    #[test]
    fn run_out_of_fuel_on_divergence() {
        // Ω = (λx. x x)(λx. x x) — not typable, but the evaluator is
        // defensive about it.
        let omega_half = Expr::lam("x", Type::Data, Expr::app(Expr::var("x"), Expr::var("x")));
        let omega = Expr::app(omega_half.clone(), omega_half);
        assert_eq!(run_with_fuel(&empty(), &omega, 1000), Outcome::OutOfFuel);
    }

    #[test]
    fn has_shape_op_reduces_to_bool() {
        let e = Expr::Op(Op::HasShape(Shape::Int, Box::new(int(3))));
        assert_eq!(run0(&e).unwrap_value(), Expr::data(true));
        let e2 = Expr::Op(Op::HasShape(Shape::Bool, Box::new(int(3))));
        assert_eq!(run0(&e2).unwrap_value(), Expr::data(false));
    }
}
