//! End-to-end registry tests over real sockets: a daemon on an
//! ephemeral port, exercised through the wire client only — everything
//! a deployment would see, nothing reaching into the process.

// Test-only code; the workspace panic-hygiene lints exempt `#[test]`
// fns but not these shared helpers.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tfd_serve::{request, ServeConfig, Server};

fn spawn() -> tfd_serve::ServerHandle {
    Server::bind("127.0.0.1:0", ServeConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn")
}

fn post(handle: &tfd_serve::ServerHandle, path: &str, body: &[u8]) -> tfd_serve::ClientResponse {
    request(
        handle.addr(),
        "POST",
        path,
        Some(("application/octet-stream", body)),
    )
    .expect("request")
}

fn get(handle: &tfd_serve::ServerHandle, path: &str) -> tfd_serve::ClientResponse {
    request(handle.addr(), "GET", path, None).expect("request")
}

/// Pulls `"field":value` out of a one-object JSON body without a
/// parser — good enough for the flat responses the daemon emits.
fn json_field(body: &str, field: &str) -> String {
    let key = format!("\"{field}\":");
    let start = body
        .find(&key)
        .unwrap_or_else(|| panic!("{field} in {body}"))
        + key.len();
    let rest = &body[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped[..stripped.find('"').expect("closing quote")].to_owned()
    } else {
        let end = rest
            .find([',', '}', ']'])
            .unwrap_or_else(|| panic!("value end in {body}"));
        rest[..end].to_owned()
    }
}

#[test]
fn upload_shape_provider_check_diff_evict() {
    let handle = spawn();

    // Ingest v1: plain integer ids.
    let r = post(
        &handle,
        "/v1/orders/ingest?format=json",
        b"{\"id\": 1, \"total\": 10}\n{\"id\": 2, \"total\": 20}\n",
    );
    assert_eq!(r.status, 200, "{}", r.text());
    let body = r.text();
    assert_eq!(json_field(&body, "version"), "1");
    assert_eq!(json_field(&body, "records"), "2");

    // Shape: the paper's notation, exactly what `tfd infer` prints.
    let r = get(&handle, "/v1/orders/shape");
    assert_eq!(r.status, 200);
    assert_eq!(r.text(), "• {id : int, total : int}\n");

    // Fingerprint is stable across reads.
    let fp1 = json_field(
        &get(&handle, "/v1/orders/fingerprint").text(),
        "fingerprint",
    );
    let fp2 = json_field(
        &get(&handle, "/v1/orders/fingerprint").text(),
        "fingerprint",
    );
    assert_eq!(fp1, fp2);
    assert_eq!(fp1.len(), 16, "{fp1}");

    // Providers: both surfaces, generated from the live shape.
    let r = get(&handle, "/v1/orders/provider/fsharp?root=Order");
    assert_eq!(r.status, 200);
    assert!(r.text().contains("member Id"), "{}", r.text());
    let r = get(&handle, "/v1/orders/provider/rust?module=gen&root=Order");
    assert_eq!(r.status, 200);
    assert!(r.text().contains("pub struct Order"), "{}", r.text());

    // Check: a conforming record and a straggler.
    let r = post(&handle, "/v1/orders/check", b"{\"id\": 3, \"total\": 30}\n");
    assert_eq!(json_field(&r.text(), "conforms"), "true");
    let r = post(
        &handle,
        "/v1/orders/check",
        b"{\"id\": \"oops\", \"total\": 1}\n",
    );
    assert_eq!(json_field(&r.text(), "conforms"), "false");

    // Ingest v2 widens: total becomes float, a new optional field.
    let r = post(
        &handle,
        "/v1/orders/ingest?format=json",
        b"{\"id\": 3, \"total\": 9.5, \"note\": \"x\"}\n",
    );
    assert_eq!(json_field(&r.text(), "version"), "2");

    // Diff v1 -> now: widening is backward-compatible, not forward.
    let r = get(&handle, "/v1/orders/diff/1");
    assert_eq!(r.status, 200, "{}", r.text());
    let body = r.text();
    assert_eq!(json_field(&body, "old_version"), "1");
    assert_eq!(json_field(&body, "new_version"), "2");
    assert_eq!(json_field(&body, "compatible"), "true");
    let r = get(&handle, "/v1/orders/diff/1?mode=forward");
    assert_eq!(json_field(&r.text(), "compatible"), "false");

    // Evict; the tenant is gone end to end.
    let r = request(handle.addr(), "DELETE", "/v1/orders", None).expect("request");
    assert_eq!(r.status, 200);
    assert_eq!(get(&handle, "/v1/orders/shape").status, 404);
    let r = request(handle.addr(), "DELETE", "/v1/orders", None).expect("request");
    assert_eq!(r.status, 404);

    handle.stop();
}

#[test]
fn concurrent_ingest_matches_sequential_fold() {
    let handle = spawn();

    // Disjoint slices with deliberately uneven schemas, so a
    // non-commutative fold would be caught.
    let slices: Vec<String> = (0..8)
        .map(|i| {
            let mut s = String::new();
            for j in 0..50 {
                match (i + j) % 3 {
                    0 => s.push_str(&format!("{{\"id\": {j}, \"kind_{i}\": true}}\n")),
                    1 => s.push_str(&format!("{{\"id\": {j}.5, \"note\": \"n{j}\"}}\n")),
                    _ => s.push_str(&format!("{{\"id\": {j}, \"note\": null}}\n")),
                }
            }
            s
        })
        .collect();

    // Sequential fold: one tenant, slices in order.
    for s in &slices {
        let r = post(&handle, "/v1/seq/ingest?format=json", s.as_bytes());
        assert_eq!(r.status, 200, "{}", r.text());
    }

    // Concurrent fold: another tenant, all slices raced from threads.
    std::thread::scope(|scope| {
        for s in &slices {
            scope.spawn(|| {
                let r = post(&handle, "/v1/par/ingest?format=json", s.as_bytes());
                assert_eq!(r.status, 200, "{}", r.text());
            });
        }
    });

    let seq = get(&handle, "/v1/seq/fingerprint");
    let par = get(&handle, "/v1/par/fingerprint");
    assert_eq!(
        json_field(&seq.text(), "fingerprint"),
        json_field(&par.text(), "fingerprint"),
        "concurrent ingest diverged from the sequential fold"
    );
    assert_eq!(json_field(&par.text(), "version"), "8");
    // The rendered shapes agree up to record-field order: fields are
    // *displayed* in first-seen order (which races), but the shapes are
    // semantically equal — the canonical fingerprint above is the
    // order-insensitive witness. Compare the sorted field sets.
    let field_set = |text: String| {
        let mut fields: Vec<String> = text
            .trim()
            .trim_start_matches("• {")
            .trim_end_matches('}')
            .split(", ")
            .map(str::to_owned)
            .collect();
        fields.sort();
        fields
    };
    assert_eq!(
        field_set(get(&handle, "/v1/seq/shape").text()),
        field_set(get(&handle, "/v1/par/shape").text())
    );

    handle.stop();
}

#[test]
fn malformed_uploads_never_kill_the_daemon() {
    let handle = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            max_body_bytes: 4 * 1024,
            ..ServeConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");

    // Raw protocol garbage on the socket.
    {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(handle.addr()).expect("connect");
        s.write_all(b"\x00\x01NONSENSE\r\n\r\n").expect("write");
        // Half-close so the server's error-path drain sees EOF.
        s.shutdown(std::net::Shutdown::Write).expect("shutdown");
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    }

    // A fail-fast parse error: structured 400, stable error code.
    let r = post(&handle, "/v1/t/ingest?format=json", b"{\"a\": @}\n");
    assert_eq!(r.status, 400);
    let body = r.text();
    assert!(body.contains("\"code\":\"json-parse\""), "{body}");

    // Skip mode whose budget is exhausted: 400 with the nested cause.
    let r = post(
        &handle,
        "/v1/t/ingest?format=json&skip_errors=1&max_errors=1",
        b"{\"a\": @}\n{\"b\": @}\n{\"c\": @}\n",
    );
    assert_eq!(r.status, 400);
    assert!(r.text().contains("too-many-errors"), "{}", r.text());

    // Skip mode within budget folds the clean records.
    let r = post(
        &handle,
        "/v1/t/ingest?format=json&skip_errors=1",
        b"{\"a\": 1}\n{\"a\": @}\n{\"a\": 3}\n",
    );
    assert_eq!(r.status, 200, "{}", r.text());
    let body = r.text();
    assert_eq!(json_field(&body, "records"), "2");
    assert_eq!(json_field(&body, "skipped"), "1");

    // Bounded request size: over-cap bodies are refused up front.
    let big = vec![b'x'; 8 * 1024];
    let r = post(&handle, "/v1/t/ingest?format=json", &big);
    assert_eq!(r.status, 413);
    assert!(r.text().contains("body-too-large"), "{}", r.text());

    // Assorted bad requests, each a clean 4xx.
    assert_eq!(post(&handle, "/v1/t/ingest", b"{}\n").status, 400); // no format
    assert_eq!(
        post(&handle, "/v1/t/ingest?format=yaml", b"x\n").status,
        400
    );
    assert_eq!(
        post(&handle, "/v1/t/ingest?format=json&jobs=zero", b"{}\n").status,
        400
    );
    assert_eq!(get(&handle, "/v1/ghost/shape").status, 404);
    assert_eq!(get(&handle, "/nowhere").status, 404);
    assert_eq!(get(&handle, "/v1/t/provider/cobol").status, 404);
    assert_eq!(post(&handle, "/v1/t/shape", b"x").status, 405);
    assert_eq!(get(&handle, "/v1/t/diff/nope").status, 400);
    // Format conflicts are 409: one tenant, one format.
    let r = post(&handle, "/v1/t/ingest?format=csv", b"a,b\n1,2\n");
    assert_eq!(r.status, 409);
    assert!(r.text().contains("format-conflict"), "{}", r.text());
    // Empty corpus is 422, distinct from a parse failure.
    assert_eq!(
        post(&handle, "/v1/u/ingest?format=json", b"  \n").status,
        422
    );

    // After all of that abuse the daemon still serves.
    let r = get(&handle, "/v1/t/shape");
    assert_eq!(r.status, 200);
    assert_eq!(r.text(), "• {a : int}\n");

    handle.stop();
}

#[test]
fn stalled_connections_time_out_instead_of_pinning_handlers() {
    use std::io::{Read, Write};
    use std::time::{Duration, Instant};

    // A slowloris-sized read timeout: a client that trickles (or stops
    // sending entirely) mid-header must be disconnected, not parked on
    // a handler thread forever.
    let handle = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            read_timeout: Some(Duration::from_millis(200)),
            write_timeout: Some(Duration::from_millis(200)),
            ..ServeConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");

    // Send half a request head, then stall. The server's read times
    // out and it hangs up: we observe EOF well before a "generous"
    // multi-second budget, without ever completing the request.
    let started = Instant::now();
    let mut s = std::net::TcpStream::connect(handle.addr()).expect("connect");
    s.write_all(b"POST /v1/slow/ingest?format=json HTTP/1.1\r\nContent-Le")
        .expect("write");
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out); // blocks until the server hangs up
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "server did not disconnect a stalled client (took {:?})",
        started.elapsed()
    );

    // The daemon survived the stall and still serves real clients.
    let r = post(&handle, "/v1/live/ingest?format=json", b"{\"ok\": true}\n");
    assert_eq!(r.status, 200, "{}", r.text());

    handle.stop();
}

#[test]
fn over_cap_connections_get_503_and_the_refusal_is_counted() {
    use std::io::Write;
    use std::time::Duration;

    let handle = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            max_connections: 1,
            read_timeout: Some(Duration::from_millis(300)),
            write_timeout: Some(Duration::from_millis(300)),
            ..ServeConfig::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");

    // Occupy the single handler slot with a connection that stalls
    // mid-header. The accept loop is sequential, so by the time any
    // later connection is considered, this one holds the slot.
    let mut holder = std::net::TcpStream::connect(handle.addr()).expect("connect");
    holder
        .write_all(b"GET /v1/stats HTTP/1.1\r\n")
        .expect("write");

    // Everything else is refused up front with a clean 503 — not
    // queued, not hung.
    let r = get(&handle, "/v1/stats");
    assert_eq!(r.status, 503, "{}", r.text());
    assert!(r.text().contains("server-busy"), "{}", r.text());

    // Release the slot and let the stalled handler time out; the
    // daemon recovers and the refusal shows up in the stats counters.
    drop(holder);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let body = loop {
        let r = get(&handle, "/v1/stats");
        if r.status == 200 {
            break r.text();
        }
        assert!(
            std::time::Instant::now() < deadline,
            "handler slot never freed after the stalled client left"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(body.contains("\"capacity\":1"), "{body}");
    let refused: u64 = json_field(&body, "refused").parse().expect("refused count");
    assert!(refused >= 1, "{body}");

    handle.stop();
}

#[test]
fn stats_reports_tenants_and_reserved_name_is_refused() {
    let handle = spawn();
    post(&handle, "/v1/a/ingest?format=json", b"{\"x\": 1}\n");
    post(&handle, "/v1/b/ingest?format=csv", b"k,v\n1,2\n");

    let r = get(&handle, "/v1/stats");
    assert_eq!(r.status, 200);
    let body = r.text();
    assert!(body.contains("\"process\":"), "{body}");
    assert!(body.contains("\"connections\":"), "{body}");
    assert!(body.contains("\"active\":"), "{body}");
    assert!(body.contains("\"tenant\":\"a\""), "{body}");
    assert!(body.contains("\"format\":\"csv\""), "{body}");
    assert!(body.contains("\"retained_bytes\":"), "{body}");

    // "stats" is reserved: not ingestable, not evictable.
    let r = post(&handle, "/v1/stats/ingest?format=json", b"{}\n");
    assert_eq!(r.status, 404);
    let r = request(handle.addr(), "DELETE", "/v1/stats", None).expect("request");
    assert_eq!(r.status, 405);

    handle.stop();
}
