//! Eviction must return process-wide interner occupancy to its
//! baseline — the registry's reason for per-tenant arenas.
//!
//! This lives in its own integration-test binary on purpose: cargo
//! runs each test file as a separate process, and `intern::stats()` is
//! process-wide, so tests in the shared binaries (which create arenas
//! concurrently) would make the baseline assertion racy.

// Test-only code; the workspace panic-hygiene lints exempt `#[test]`
// fns but not shared helpers.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use tfd_serve::{request, ServeConfig, Server};

#[test]
fn evicting_a_tenant_returns_interner_stats_to_baseline() {
    let handle = Server::bind("127.0.0.1:0", ServeConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    // Warm-up cycle first: the engine interns a handful of well-known
    // names (record body names, etc.) into the process-default arena on
    // first use; those are per-process, not per-tenant, and must not
    // pollute the baseline.
    let r = request(
        handle.addr(),
        "POST",
        "/v1/warmup/ingest?format=json",
        Some(("application/json", b"{\"warm\": 1}\n".as_slice())),
    )
    .expect("request");
    assert_eq!(r.status, 200, "{}", r.text());
    request(handle.addr(), "DELETE", "/v1/warmup", None).expect("request");
    let baseline = tfd_value::intern::stats();

    // A corpus with a wide vocabulary: hundreds of distinct field
    // names, all of which must land in the tenant's arena (the shape
    // retains every one — each is a record field).
    let mut corpus = String::new();
    for i in 0..1024 {
        corpus.push_str(&format!("{{\"eviction_probe_field_{i}\": {i}}}\n"));
    }
    let r = request(
        handle.addr(),
        "POST",
        "/v1/bulky/ingest?format=json&jobs=4",
        Some(("application/json", corpus.as_bytes())),
    )
    .expect("request");
    assert_eq!(r.status, 200, "{}", r.text());

    // While the tenant lives, the registry retains its vocabulary…
    let grown = tfd_value::intern::stats();
    assert!(
        grown.symbols >= baseline.symbols + 1024,
        "expected >= {} symbols, got {}",
        baseline.symbols + 1024,
        grown.symbols
    );
    assert!(grown.retained_bytes > baseline.retained_bytes);
    let body = request(handle.addr(), "GET", "/v1/stats", None)
        .expect("request")
        .text();
    assert!(body.contains("\"tenant\":\"bulky\""), "{body}");

    // …and eviction drops the arena, reclaiming all of it.
    let r = request(handle.addr(), "DELETE", "/v1/bulky", None).expect("request");
    assert_eq!(r.status, 200, "{}", r.text());
    let after = tfd_value::intern::stats();
    assert_eq!(after.symbols, baseline.symbols);
    assert_eq!(after.retained_bytes, baseline.retained_bytes);
    assert_eq!(after.arenas, baseline.arenas);

    handle.stop();
}
