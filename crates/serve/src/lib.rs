//! `tfd serve` — a live shape-inference schema registry.
//!
//! The paper's pipeline is batch: point the CLI at a corpus, fold its
//! shape, emit a provider. This crate turns that pipeline into a
//! long-running service, because the properties the batch engine
//! already proved make the *registry* nearly free:
//!
//! * the shape join is **associative and commutative** (PLDI'16 §4; the
//!   PR 5 differential suites), so tenants can absorb uploads in any
//!   order — including concurrently — and still reach the state a
//!   sequential fold over the concatenated corpus would have reached;
//! * absorbing already-seen data is a **no-op** (Lemma 1), so repeated
//!   uploads converge instead of drifting;
//! * shapes are **schema-sized**, so keeping one per version is cheap
//!   enough to give every tenant a diffable history;
//! * per-corpus **interner arenas** (PR 8) mean a tenant's whole
//!   vocabulary lives in its own arena, and `DELETE /v1/{tenant}`
//!   genuinely returns that memory.
//!
//! The layer cake, bottom-up:
//!
//! * [`http`] — a hand-rolled, bounded HTTP/1.1 reader/writer over
//!   `std::net` (the environment has no crates.io; the parser gets the
//!   same hard caps as the data front-ends);
//! * [`registry`] — the tenant map: per-tenant `GlobalShape` + arena +
//!   version history behind short locks, every method returning
//!   `Name`-free owned data;
//! * [`server`] — the accept loop and routing table;
//! * [`client`] — the tiny blocking client the CLI, tests and bench
//!   harness use to talk to a daemon.

pub mod client;
pub mod http;
pub mod registry;
pub mod server;

pub use client::{request, ClientResponse};
pub use registry::{
    CheckOutcome, DiffOutcome, IngestOutcome, IngestRequest, ProviderKind, Registry, RegistryError,
    TenantStats,
};
pub use server::{ConnGauge, ConnStats, ServeConfig, Server, ServerHandle};
