//! A hand-rolled, bounded HTTP/1.1 front-end — just enough protocol for
//! the registry, with the same paranoia as the data front-ends.
//!
//! The environment has no crates.io, so the daemon speaks HTTP the way
//! the CSV crate speaks CSV: a small, explicit parser over bytes with
//! hard resource caps. Supported surface, deliberately minimal:
//!
//! * request line + headers up to [`MAX_HEAD_BYTES`] (431 beyond it),
//! * bodies via `Content-Length` only, capped by the server's
//!   configured limit (411 without a length, 413 beyond the cap;
//!   `Transfer-Encoding: chunked` is rejected as 400 rather than
//!   half-implemented),
//! * percent-decoding for paths and query strings,
//! * one request per connection (`Connection: close` on every
//!   response) — the registry's clients are uploads and polls, not
//!   browsers, so connection reuse buys nothing and keeps the state
//!   machine trivial.
//!
//! Nothing here knows about tenants or shapes; routing lives in
//! [`crate::server`].

use std::io::Read;

/// Cap on the request line + headers, before any body is read. Large
/// corpora belong in the *body*; a kilobyte-scale head is always an
/// error or an attack.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on a request body (the ingest corpus). Generous enough
/// for the CI's ~45 MB CSV smoke with headroom, small enough that one
/// request cannot exhaust the host.
pub const DEFAULT_MAX_BODY_BYTES: usize = 256 * 1024 * 1024;

/// A parsed request: method, decoded path segments, query pairs, body.
#[derive(Debug)]
pub struct Request {
    /// The request method, uppercase as received (`GET`, `POST`, …).
    pub method: String,
    /// The percent-decoded path, always starting with `/`.
    pub path: String,
    /// Query parameters in document order, percent-decoded, `+` read as
    /// space in values.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// True when `key` is present and not set to `0`/`false`/empty —
    /// the reading of flags like `?env=1`.
    pub fn query_flag(&self, key: &str) -> bool {
        self.query_param(key)
            .is_some_and(|v| !matches!(v, "" | "0" | "false"))
    }

    /// The path split into its `/`-separated segments (no empties).
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Why a request could not be read. Each variant maps to one HTTP
/// status (see [`HttpError::status`]).
#[derive(Debug)]
pub enum HttpError {
    /// The request line or a header is malformed, or the request uses a
    /// feature the server deliberately does not speak (chunked bodies).
    /// Status 400.
    BadRequest(String),
    /// A body-carrying request arrived without `Content-Length`.
    /// Status 411.
    LengthRequired,
    /// The declared body exceeds the configured cap. Status 413.
    BodyTooLarge {
        /// The configured body cap in bytes.
        limit: usize,
    },
    /// The request line + headers exceed [`MAX_HEAD_BYTES`].
    /// Status 431.
    HeadTooLarge,
    /// The socket failed mid-request (no response can be sent).
    Io(std::io::Error),
}

impl HttpError {
    /// The HTTP status this error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::LengthRequired => 411,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::HeadTooLarge => 431,
            HttpError::Io(_) => 400,
        }
    }

    /// Stable kebab-case error code for the JSON error body.
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::BadRequest(_) => "bad-request",
            HttpError::LengthRequired => "length-required",
            HttpError::BodyTooLarge { .. } => "body-too-large",
            HttpError::HeadTooLarge => "head-too-large",
            HttpError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "{m}"),
            HttpError::LengthRequired => {
                write!(f, "a request with a body must send Content-Length")
            }
            HttpError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte cap")
            }
            HttpError::HeadTooLarge => {
                write!(f, "request head exceeds the {MAX_HEAD_BYTES}-byte cap")
            }
            HttpError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads and parses one request from `reader`, enforcing the head cap
/// and `max_body` byte cap.
///
/// # Errors
///
/// Any [`HttpError`]: malformed or over-cap requests, or a reader
/// failure.
pub fn read_request<R: Read>(reader: &mut R, max_body: usize) -> Result<Request, HttpError> {
    let head = read_head(reader)?;
    let text = std::str::from_utf8(&head.bytes)
        .map_err(|_| HttpError::BadRequest("request head is not valid UTF-8".to_owned()))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".to_owned()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version {version:?}"
        )));
    }

    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line {line:?}")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value.parse().map_err(|_| {
                    HttpError::BadRequest(format!("unparseable Content-Length {value:?}"))
                })?;
                content_length = Some(n);
            }
            "transfer-encoding" => {
                // Refusing loudly beats buffering chunks without a
                // declared size (the cap would be unenforceable).
                return Err(HttpError::BadRequest(
                    "Transfer-Encoding is not supported; send Content-Length".to_owned(),
                ));
            }
            _ => {}
        }
    }

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(path_raw, false)
        .ok_or_else(|| HttpError::BadRequest(format!("malformed path encoding {path_raw:?}")))?;
    if !path.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target must be an absolute path, got {path_raw:?}"
        )));
    }
    let mut query = Vec::new();
    if let Some(q) = query_raw {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let k = percent_decode(k, true)
                .ok_or_else(|| HttpError::BadRequest(format!("malformed query key {k:?}")))?;
            let v = percent_decode(v, true)
                .ok_or_else(|| HttpError::BadRequest(format!("malformed query value {v:?}")))?;
            query.push((k, v));
        }
    }

    let wants_body = matches!(method, "POST" | "PUT" | "PATCH");
    let length = match content_length {
        Some(n) => n,
        None if wants_body => return Err(HttpError::LengthRequired),
        None => 0,
    };
    if length > max_body {
        return Err(HttpError::BodyTooLarge { limit: max_body });
    }
    let mut body = head.overflow;
    if body.len() > length {
        return Err(HttpError::BadRequest(
            "more body bytes than Content-Length declared".to_owned(),
        ));
    }
    let mut remaining = length - body.len();
    body.reserve_exact(remaining);
    let mut chunk = vec![0u8; 64 * 1024];
    while remaining > 0 {
        let want = remaining.min(chunk.len());
        let n = reader.read(&mut chunk[..want]).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest(format!(
                "connection closed {remaining} bytes short of Content-Length"
            )));
        }
        body.extend_from_slice(&chunk[..n]);
        remaining -= n;
    }

    Ok(Request {
        method: method.to_owned(),
        path,
        query,
        body,
    })
}

/// The request head (everything through `\r\n\r\n`) plus whatever body
/// bytes the last read pulled in with it.
struct Head {
    bytes: Vec<u8>,
    overflow: Vec<u8>,
}

fn read_head<R: Read>(reader: &mut R) -> Result<Head, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = find_head_end(&buf) {
            let overflow = buf.split_off(end);
            return Ok(Head {
                bytes: buf,
                overflow,
            });
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let n = reader.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed before the request head ended".to_owned(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Percent-decodes `s`; with `plus_is_space`, `+` decodes to a space
/// (query-string convention). `None` on a malformed `%` escape or
/// non-UTF-8 decoded bytes.
fn percent_decode(s: &str, plus_is_space: bool) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// A response: status, content type, body. Always closes the
/// connection.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A plain-text response (shapes, generated code).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// Serializes the response head + body into wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// The reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut std::io::Cursor::new(raw.to_vec()), 1024)
    }

    #[test]
    fn parses_a_get_with_query() {
        let r = parse(b"GET /v1/orders/shape?env=1&mode=full HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/v1/orders/shape");
        assert_eq!(r.segments(), vec!["v1", "orders", "shape"]);
        assert_eq!(r.query_param("mode"), Some("full"));
        assert!(r.query_flag("env"));
        assert!(!r.query_flag("missing"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_exactly() {
        let r = parse(b"POST /v1/t/ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.body, b"hello");
        // Body bytes may arrive in the same read as the head.
        let r = parse(b"POST /x HTTP/1.1\r\ncontent-length: 2\r\n\r\nab").unwrap();
        assert_eq!(r.body, b"ab");
    }

    #[test]
    fn percent_decoding_applies_to_path_and_query() {
        let r = parse(b"GET /v1/a%2db/shape?q=x+y%21 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.path, "/v1/a-b/shape");
        assert_eq!(r.query_param("q"), Some("x y!"));
        assert!(parse(b"GET /v1/%zz HTTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(matches!(
            parse(b"NONSENSE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET /x SMTP/1.0\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET relative HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nNoColonHere\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // Truncated mid-head.
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn body_requires_and_honors_content_length() {
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\n\r\n"),
            Err(HttpError::LengthRequired)
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn caps_are_enforced() {
        let e = parse(b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert!(matches!(e, HttpError::BodyTooLarge { limit: 1024 }));
        assert_eq!(e.status(), 413);
        let mut huge = b"GET /x HTTP/1.1\r\n".to_vec();
        huge.extend_from_slice("X-Filler: y\r\n".repeat(4096).as_bytes());
        huge.extend_from_slice(b"\r\n");
        let e = parse(&huge).unwrap_err();
        assert!(matches!(e, HttpError::HeadTooLarge));
        assert_eq!(e.status(), 431);
    }

    #[test]
    fn responses_serialize_with_length_and_close() {
        let r = Response::json(200, "{}".to_owned());
        let bytes = r.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
        assert_eq!(reason(413), "Payload Too Large");
    }
}
