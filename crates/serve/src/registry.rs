//! The schema registry: per-tenant shape state behind short locks.
//!
//! Each tenant entry owns exactly three things the rest of the daemon
//! never touches directly:
//!
//! * a [`GlobalShape`] — the env-carrying Fig. 3 fold of every record
//!   the tenant ever ingested (the *record-level* fold; the corpus view
//!   is derived by the format's `wrap_corpus_shape` at read time),
//! * its own [`Interner`] **arena** — every name in the tenant's shape,
//!   version history and nothing else lives there, so
//!   [`Registry::evict`] reclaims the tenant's whole vocabulary by
//!   dropping the entry (the PR 8 payoff),
//! * a monotonically increasing **version**, bumped per ingest, with a
//!   schema-sized corpus-view snapshot per version so
//!   [`Registry::diff`] can classify evolution against any past
//!   version.
//!
//! Ingest itself runs *outside* the tenant lock: the corpus streams
//! through the engine's recovery drivers into a request-local arena,
//! and only the schema-sized summary is re-interned and absorbed under
//! the lock. Because the shape join is associative and commutative
//! (proved by the PR 5 differential suites), N concurrent ingests of
//! disjoint corpus slices reach a state byte-identical to the
//! sequential fold — the integration suite asserts fingerprint
//! equality over real sockets.
//!
//! Every public method returns owned, `Name`-free data (strings,
//! numbers, [`ErrorReport`]s): nothing that borrows a tenant arena ever
//! escapes the entry lock, so a concurrent eviction can never dangle a
//! caller's result.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use tfd_codegen::{generate_global, CodegenOptions, SourceFormat};
use tfd_core::analyze::{diff_global, fingerprint, CompatMode, ShapeFingerprint};
use tfd_core::recover::{ErrorReport, RecoveryPolicy};
use tfd_core::report::diff_json;
use tfd_core::stream::StreamError;
use tfd_core::{conforms_in, engine, GlobalShape, Shape, StreamFormat};
use tfd_value::intern::InternStats;
use tfd_value::Interner;

/// Most provider outputs a tenant keeps cached. Keys include the
/// fingerprint, so entries for superseded shapes are dead weight; the
/// cache is cleared rather than LRU-tracked once it fills.
const PROVIDER_CACHE_CAP: usize = 32;

/// Which generated-code surface `GET …/provider/{kind}` serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProviderKind {
    /// F#-style provided-type signatures (`tfd fsharp`).
    Fsharp,
    /// Generated Rust typed-access code (`tfd rust`).
    Rust,
}

impl ProviderKind {
    /// Parses the URL segment (`fsharp` | `rust`).
    pub fn parse(s: &str) -> Option<ProviderKind> {
        match s {
            "fsharp" => Some(ProviderKind::Fsharp),
            "rust" => Some(ProviderKind::Rust),
            _ => None,
        }
    }
}

/// Why a registry operation failed. The server maps each variant to an
/// HTTP status ([`crate::server`] owns that table).
#[derive(Debug)]
pub enum RegistryError {
    /// No tenant with this name exists.
    NoSuchTenant(String),
    /// The tenant exists but has no such registered version.
    NoSuchVersion {
        /// The requested version.
        version: u64,
        /// The tenant's current (latest) version.
        latest: u64,
    },
    /// The tenant was created with a different ingest format; one
    /// tenant folds one format (the corpus-shape wrap differs).
    FormatConflict {
        /// The format the tenant was created with.
        expected: StreamFormat,
        /// The format this request asked for.
        got: StreamFormat,
    },
    /// The uploaded corpus contained no records at all.
    EmptyCorpus,
    /// The engine rejected the corpus (parse error, exhausted Skip
    /// budget, tripped resource cap).
    Stream(StreamError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::NoSuchTenant(t) => write!(f, "no such tenant {t}"),
            RegistryError::NoSuchVersion { version, latest } => {
                write!(f, "no such version {version} (latest is {latest})")
            }
            RegistryError::FormatConflict { expected, got } => write!(
                f,
                "tenant ingests {expected:?} corpora, not {got:?} \
                 (evict and re-create to change formats)"
            ),
            RegistryError::EmptyCorpus => write!(f, "the uploaded corpus contains no records"),
            RegistryError::Stream(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// What one successful ingest did.
#[derive(Debug)]
pub struct IngestOutcome {
    /// The tenant's version after this ingest.
    pub version: u64,
    /// Records folded from this upload's clean subset.
    pub records: usize,
    /// Bytes consumed from this upload.
    pub bytes: u64,
    /// Fingerprint of the tenant's corpus shape after this ingest.
    pub fingerprint: ShapeFingerprint,
    /// What Skip-mode recovery dropped (empty under fail-fast).
    pub report: ErrorReport,
}

/// What a conformance check found.
#[derive(Debug)]
pub struct CheckOutcome {
    /// The tenant version the records were checked against.
    pub version: u64,
    /// How many records the upload parsed into.
    pub records: usize,
    /// 0-based indices of records that do **not** conform.
    pub failures: Vec<usize>,
}

/// Generated provider code plus cache provenance.
#[derive(Debug)]
pub struct ProviderOutput {
    /// Fingerprint of the shape the code was generated from.
    pub fingerprint: ShapeFingerprint,
    /// The generated source text.
    pub code: Arc<String>,
    /// True when the fingerprint-keyed cache already held the code.
    pub cached: bool,
}

/// A classified diff against a past version.
#[derive(Debug)]
pub struct DiffOutcome {
    /// The version diffed against (the "old" side).
    pub old_version: u64,
    /// The current version (the "new" side).
    pub new_version: u64,
    /// Whether no entry breaks under the requested mode.
    pub compatible: bool,
    /// The full report as the shared `tfd diff --json` object.
    pub json: String,
}

/// One tenant's row in the stats report.
#[derive(Debug)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// The ingest format the tenant was created with.
    pub format: StreamFormat,
    /// Current version.
    pub version: u64,
    /// Fingerprint of the current corpus shape.
    pub fingerprint: ShapeFingerprint,
    /// Total records folded across all ingests.
    pub records: u64,
    /// Total bytes ingested.
    pub bytes: u64,
    /// The tenant arena's footprint (reclaimed whole on eviction).
    pub intern: InternStats,
}

/// What one tenant ingest request asks for (the query-parameter
/// equivalents of the CLI's driver flags).
#[derive(Debug)]
pub struct IngestRequest<'a> {
    /// The corpus format (`?format=json|xml|csv`).
    pub format: StreamFormat,
    /// The uploaded corpus bytes.
    pub body: &'a [u8],
    /// Parser worker threads (`?jobs=N`, like `--jobs`).
    pub jobs: usize,
    /// Recovery policy (`?skip_errors`, `?max_errors`, …).
    pub policy: RecoveryPolicy,
}

struct Tenant {
    format: StreamFormat,
    arena: Interner,
    fold: GlobalShape,
    version: u64,
    fingerprint: ShapeFingerprint,
    records: u64,
    bytes: u64,
    /// Corpus-view snapshot per version (`history[v - 1]` is version
    /// `v`). Snapshots are schema-sized, not corpus-sized.
    history: Vec<GlobalShape>,
    provider_cache: HashMap<String, Arc<String>>,
}

impl Tenant {
    fn new(format: StreamFormat) -> Tenant {
        Tenant {
            format,
            arena: Interner::new(),
            fold: GlobalShape::plain(Shape::Bottom),
            version: 0,
            fingerprint: ShapeFingerprint(0),
            records: 0,
            bytes: 0,
            history: Vec::new(),
            provider_cache: HashMap::new(),
        }
    }

    /// The one-shot corpus view of the record fold (CSV re-wraps rows
    /// as a collection; JSON/XML are identity) — what `GET /shape`
    /// prints and what fingerprints, diffs and providers run on.
    fn corpus_view(&self) -> GlobalShape {
        GlobalShape {
            root: engine::wrap_corpus_shape_dyn(self.format, self.fold.root.clone()),
            env: self.fold.env.clone(),
        }
    }
}

/// The registry: a map of named tenants, each independently locked.
///
/// The outer map lock is held only to look up or create entries; all
/// shape work happens under the per-tenant lock, so ingest into tenant
/// A never blocks reads of tenant B.
#[derive(Default)]
pub struct Registry {
    tenants: RwLock<HashMap<String, Arc<Mutex<Tenant>>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn entry(&self, tenant: &str) -> Result<Arc<Mutex<Tenant>>, RegistryError> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(tenant)
            .cloned()
            .ok_or_else(|| RegistryError::NoSuchTenant(tenant.to_owned()))
    }

    fn entry_or_create(&self, tenant: &str, format: StreamFormat) -> Arc<Mutex<Tenant>> {
        if let Some(e) = self
            .tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(tenant)
        {
            return e.clone();
        }
        self.tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(tenant.to_owned())
            .or_insert_with(|| Arc::new(Mutex::new(Tenant::new(format))))
            .clone()
    }

    /// Streams `req.body` through the engine's recovery drivers in a
    /// request-local arena, then joins the schema-sized summary into
    /// the tenant's shape under its lock and bumps the version. Creates
    /// the tenant on first ingest.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Stream`] when the engine rejects the corpus,
    /// [`EmptyCorpus`](RegistryError::EmptyCorpus) on record-free
    /// input, [`FormatConflict`](RegistryError::FormatConflict) when
    /// the tenant folds a different format.
    #[allow(clippy::expect_used)] // one source in, one result out — checked by the engine's contract
    pub fn ingest(
        &self,
        tenant: &str,
        req: &IngestRequest<'_>,
    ) -> Result<IngestOutcome, RegistryError> {
        // Parse + fold outside any lock through the engine's corpus
        // driver (the same entry multi-file `tfd infer` uses), in an
        // arena that dies with the request: the corpus's whole data
        // vocabulary (however many distinct keys it carries) is
        // reclaimed before the response is written; only the
        // schema-sized shape survives.
        let options = engine::infer_options_dyn(req.format);
        let sources = [engine::CorpusSource::Bytes(req.body)];
        let summary = engine::infer_sources_parallel(
            req.format,
            &sources,
            &options,
            &req.policy,
            req.jobs.max(1),
        )
        .pop()
        .expect("one source in, one result out")
        .map_err(RegistryError::Stream)?;
        // The arena must outlive the reintern below, which migrates the
        // shape's names out of it into the tenant arena.
        let engine::FileSummary {
            recovered,
            arena: _request_arena,
        } = summary;
        if recovered.summary.records == 0 {
            return Err(RegistryError::EmptyCorpus);
        }

        let entry = self.entry_or_create(tenant, req.format);
        let mut t = entry.lock().unwrap_or_else(PoisonError::into_inner);
        if t.format != req.format {
            return Err(RegistryError::FormatConflict {
                expected: t.format,
                got: req.format,
            });
        }
        // The short-lock join: migrate the summary's names into the
        // tenant arena, absorb (the env-carrying Fig. 3 fold — PR 5
        // proved the join order-insensitive, so concurrent ingests
        // commute), snapshot, bump.
        let mut shape = recovered.summary.shape;
        shape.reintern(&t.arena);
        let arena = t.arena.clone();
        t.fold.absorb(shape);
        t.fold.reintern(&arena);
        t.version += 1;
        t.records += recovered.summary.records as u64;
        t.bytes += recovered.summary.bytes;
        let corpus = t.corpus_view();
        t.fingerprint = fingerprint(&corpus);
        t.history.push(corpus);
        Ok(IngestOutcome {
            version: t.version,
            records: recovered.summary.records,
            bytes: recovered.summary.bytes,
            fingerprint: t.fingerprint,
            report: recovered.report,
        })
    }

    /// Renders the tenant's corpus shape in the paper's notation
    /// (exactly the `tfd infer` output); with `env`, the root plus the
    /// recursive-definitions table (the `--global --env` view).
    ///
    /// # Errors
    ///
    /// [`RegistryError::NoSuchTenant`].
    pub fn shape(&self, tenant: &str, env: bool) -> Result<(u64, String), RegistryError> {
        let entry = self.entry(tenant)?;
        let t = entry.lock().unwrap_or_else(PoisonError::into_inner);
        let corpus = t.corpus_view();
        let text = if env {
            let mut out = format!("{}\n", corpus.root);
            if corpus.env.is_empty() {
                out.push_str("(no global definitions)\n");
            } else {
                out.push_str("where\n");
                for (name, def) in corpus.env.iter() {
                    out.push_str(&format!("  {name} = {}\n", Shape::Record(def.clone())));
                }
            }
            out
        } else {
            format!("{}\n", corpus.inline())
        };
        Ok((t.version, text))
    }

    /// The tenant's current version and corpus-shape fingerprint.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NoSuchTenant`].
    pub fn fingerprint(&self, tenant: &str) -> Result<(u64, ShapeFingerprint), RegistryError> {
        let entry = self.entry(tenant)?;
        let t = entry.lock().unwrap_or_else(PoisonError::into_inner);
        Ok((t.version, t.fingerprint))
    }

    /// Generated provider code for the tenant's current shape, served
    /// from the fingerprint-keyed cache when the shape hasn't moved.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NoSuchTenant`].
    pub fn provider(
        &self,
        tenant: &str,
        kind: ProviderKind,
        module: &str,
        root: &str,
        prefix: &str,
    ) -> Result<ProviderOutput, RegistryError> {
        let entry = self.entry(tenant)?;
        let mut t = entry.lock().unwrap_or_else(PoisonError::into_inner);
        let fp = t.fingerprint;
        let key = format!(
            "{}:{module}:{root}:{prefix}:{fp}",
            match kind {
                ProviderKind::Fsharp => "fsharp",
                ProviderKind::Rust => "rust",
            }
        );
        if let Some(code) = t.provider_cache.get(&key) {
            return Ok(ProviderOutput {
                fingerprint: fp,
                code: code.clone(),
                cached: true,
            });
        }
        let corpus = t.corpus_view();
        let code = Arc::new(match kind {
            ProviderKind::Fsharp => {
                tfd_provider::signature(&tfd_provider::provide_global(&corpus, root))
            }
            ProviderKind::Rust => {
                let options = CodegenOptions {
                    crate_prefix: prefix.to_owned(),
                    format: Some(match t.format {
                        StreamFormat::Json => SourceFormat::Json,
                        StreamFormat::Xml => SourceFormat::Xml,
                        StreamFormat::Csv => SourceFormat::Csv,
                    }),
                    sample_text: None,
                };
                generate_global(&corpus, module, root, &options)
            }
        });
        if t.provider_cache.len() >= PROVIDER_CACHE_CAP {
            t.provider_cache.clear();
        }
        t.provider_cache.insert(key, code.clone());
        Ok(ProviderOutput {
            fingerprint: fp,
            code,
            cached: false,
        })
    }

    /// Parses `body` as records of `format` (defaulting to the
    /// tenant's) and checks each against the tenant's record shape
    /// under its environment — the §5 conformance relation, so a
    /// conforming record is guaranteed safe for every access the shape
    /// type-checks.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NoSuchTenant`], or
    /// [`RegistryError::Stream`] when the records fail to parse.
    pub fn check(
        &self,
        tenant: &str,
        format: Option<StreamFormat>,
        body: &[u8],
    ) -> Result<CheckOutcome, RegistryError> {
        let entry = self.entry(tenant)?;
        let request_arena = Interner::new();
        let text = std::str::from_utf8(body).map_err(|_| {
            RegistryError::Stream(StreamError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "check body is not valid UTF-8",
            )))
        })?;
        let t = entry.lock().unwrap_or_else(PoisonError::into_inner);
        let format = format.unwrap_or(t.format);
        let values = engine::parse_many_values_dyn_in(format, text, &request_arena)
            .map_err(RegistryError::Stream)?;
        let failures: Vec<usize> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| !conforms_in(&t.fold.root, v, Some(&t.fold.env)))
            .map(|(i, _)| i)
            .collect();
        Ok(CheckOutcome {
            version: t.version,
            records: values.len(),
            failures,
        })
    }

    /// Diffs registered version `version` (old) against the current
    /// shape (new) under `mode`, so clients can gate an upload on
    /// backward/forward compatibility.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NoSuchTenant`] or
    /// [`NoSuchVersion`](RegistryError::NoSuchVersion).
    pub fn diff(
        &self,
        tenant: &str,
        version: u64,
        mode: CompatMode,
    ) -> Result<DiffOutcome, RegistryError> {
        let entry = self.entry(tenant)?;
        let t = entry.lock().unwrap_or_else(PoisonError::into_inner);
        let index = usize::try_from(version.wrapping_sub(1)).ok();
        let old = index
            .and_then(|i| if version == 0 { None } else { t.history.get(i) })
            .ok_or(RegistryError::NoSuchVersion {
                version,
                latest: t.version,
            })?;
        let report = diff_global(old, &t.corpus_view(), mode);
        Ok(DiffOutcome {
            old_version: version,
            new_version: t.version,
            compatible: report.is_compatible(),
            json: diff_json(&report),
        })
    }

    /// Evicts a tenant: the entry (shape, history, provider cache — and
    /// the arena holding every one of their names) drops with the last
    /// reference, reclaiming the tenant's whole vocabulary. Returns
    /// `false` when no such tenant existed.
    pub fn evict(&self, tenant: &str) -> bool {
        self.tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(tenant)
            .is_some()
    }

    /// Per-tenant stats rows, sorted by tenant name.
    pub fn stats(&self) -> Vec<TenantStats> {
        let entries: Vec<(String, Arc<Mutex<Tenant>>)> = self
            .tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let mut rows: Vec<TenantStats> = entries
            .into_iter()
            .map(|(name, entry)| {
                let t = entry.lock().unwrap_or_else(PoisonError::into_inner);
                TenantStats {
                    name,
                    format: t.format,
                    version: t.version,
                    fingerprint: t.fingerprint,
                    records: t.records,
                    bytes: t.bytes,
                    intern: t.arena.stats(),
                }
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Number of live tenants.
    pub fn len(&self) -> usize {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Parses the `?format=` query value (`json` | `xml` | `csv`).
pub fn parse_stream_format(s: &str) -> Option<StreamFormat> {
    match s {
        "json" => Some(StreamFormat::Json),
        "xml" => Some(StreamFormat::Xml),
        "csv" => Some(StreamFormat::Csv),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfd_core::RecoveryMode;

    fn ingest_req(format: StreamFormat, body: &[u8]) -> IngestRequest<'_> {
        IngestRequest {
            format,
            body,
            jobs: 1,
            policy: RecoveryPolicy::default(),
        }
    }

    #[test]
    fn ingest_folds_and_versions() {
        let reg = Registry::new();
        let out = reg
            .ingest(
                "t",
                &ingest_req(StreamFormat::Json, b"{\"a\": 1}\n{\"a\": 2}\n"),
            )
            .unwrap();
        assert_eq!(out.version, 1);
        assert_eq!(out.records, 2);
        let (v, shape) = reg.shape("t", false).unwrap();
        assert_eq!(v, 1);
        assert_eq!(shape, "• {a : int}\n");
        // A widening ingest bumps the version and moves the shape.
        let out2 = reg
            .ingest(
                "t",
                &ingest_req(StreamFormat::Json, b"{\"a\": 2.5, \"b\": true}\n"),
            )
            .unwrap();
        assert_eq!(out2.version, 2);
        assert_ne!(out.fingerprint, out2.fingerprint);
        let (_, shape) = reg.shape("t", false).unwrap();
        assert!(shape.contains("a : float"), "{shape}");
        assert!(shape.contains("b : nullable bool"), "{shape}");
        // Re-absorbing data the shape has seen is a no-op (Lemma 1),
        // but still registers a version.
        let out3 = reg
            .ingest("t", &ingest_req(StreamFormat::Json, b"{\"a\": 1}\n"))
            .unwrap();
        assert_eq!(out3.version, 3);
        assert_eq!(out3.fingerprint, out2.fingerprint);
    }

    #[test]
    fn csv_tenants_serve_the_wrapped_corpus_shape() {
        let reg = Registry::new();
        reg.ingest(
            "rows",
            &ingest_req(StreamFormat::Csv, b"id,name\n1,a\n2,b\n"),
        )
        .unwrap();
        let (_, shape) = reg.shape("rows", false).unwrap();
        assert!(shape.starts_with('['), "{shape}");
        assert!(shape.contains("id : int"), "{shape}");
        // Checks run against the *row* shape, so a bare row conforms.
        let ok = reg.check("rows", None, b"id,name\n3,c\n").unwrap();
        assert_eq!(ok.records, 1);
        assert!(ok.failures.is_empty());
        let bad = reg.check("rows", None, b"id,name\nnot-an-int,c\n").unwrap();
        assert_eq!(bad.failures, vec![0]);
    }

    #[test]
    fn format_conflicts_are_rejected() {
        let reg = Registry::new();
        reg.ingest("t", &ingest_req(StreamFormat::Json, b"{\"a\": 1}\n"))
            .unwrap();
        let err = reg
            .ingest("t", &ingest_req(StreamFormat::Csv, b"a\n1\n"))
            .unwrap_err();
        assert!(
            matches!(err, RegistryError::FormatConflict { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn skip_mode_honors_the_policy() {
        let reg = Registry::new();
        let mut policy = RecoveryPolicy::skip();
        policy.max_errors = 10;
        let out = reg
            .ingest(
                "t",
                &IngestRequest {
                    format: StreamFormat::Json,
                    body: b"{\"a\": 1}\n{\"a\": @}\n{\"a\": 3}\n",
                    jobs: 2,
                    policy,
                },
            )
            .unwrap();
        assert_eq!(out.records, 2);
        assert_eq!(out.report.total(), 1);
        // Fail-fast rejects the same corpus outright.
        let err = reg
            .ingest(
                "bad",
                &IngestRequest {
                    format: StreamFormat::Json,
                    body: b"{\"a\": @}\n",
                    jobs: 1,
                    policy: RecoveryPolicy {
                        mode: RecoveryMode::FailFast,
                        ..RecoveryPolicy::default()
                    },
                },
            )
            .unwrap_err();
        assert!(matches!(err, RegistryError::Stream(_)), "{err:?}");
        // …and the failed ingest registered nothing.
        assert!(matches!(
            reg.shape("bad", false),
            Err(RegistryError::NoSuchTenant(_))
        ));
    }

    #[test]
    fn provider_cache_hits_on_unchanged_fingerprint() {
        let reg = Registry::new();
        reg.ingest("t", &ingest_req(StreamFormat::Json, b"{\"id\": 7}\n"))
            .unwrap();
        let first = reg
            .provider("t", ProviderKind::Rust, "gen", "Thing", "::types_from_data")
            .unwrap();
        assert!(!first.cached);
        assert!(first.code.contains("pub struct Thing"), "{}", first.code);
        let second = reg
            .provider("t", ProviderKind::Rust, "gen", "Thing", "::types_from_data")
            .unwrap();
        assert!(second.cached);
        assert!(Arc::ptr_eq(&first.code, &second.code));
        // Different options miss; a moved shape misses.
        let fsharp = reg
            .provider("t", ProviderKind::Fsharp, "gen", "Thing", "")
            .unwrap();
        assert!(!fsharp.cached);
        assert!(fsharp.code.contains("member Id"), "{}", fsharp.code);
        reg.ingest(
            "t",
            &ingest_req(StreamFormat::Json, b"{\"id\": 7, \"x\": 1}\n"),
        )
        .unwrap();
        let third = reg
            .provider("t", ProviderKind::Rust, "gen", "Thing", "::types_from_data")
            .unwrap();
        assert!(!third.cached);
        assert_ne!(first.code.as_str(), third.code.as_str());
    }

    #[test]
    fn diff_classifies_against_past_versions() {
        let reg = Registry::new();
        reg.ingest("t", &ingest_req(StreamFormat::Json, b"{\"a\": 1}\n"))
            .unwrap();
        reg.ingest("t", &ingest_req(StreamFormat::Json, b"{\"a\": null}\n"))
            .unwrap();
        let d = reg.diff("t", 1, CompatMode::Backward).unwrap();
        assert_eq!((d.old_version, d.new_version), (1, 2));
        assert!(d.compatible); // nullability introduction widens
        assert!(d.json.contains("nullability-introduced"), "{}", d.json);
        let d = reg.diff("t", 1, CompatMode::Forward).unwrap();
        assert!(!d.compatible);
        // Self-diff is empty.
        let d = reg.diff("t", 2, CompatMode::Full).unwrap();
        assert!(d.compatible);
        assert!(d.json.contains("\"entries\":[]"), "{}", d.json);
        // Version 0 and future versions don't exist.
        assert!(matches!(
            reg.diff("t", 0, CompatMode::Full),
            Err(RegistryError::NoSuchVersion { latest: 2, .. })
        ));
        assert!(matches!(
            reg.diff("t", 9, CompatMode::Full),
            Err(RegistryError::NoSuchVersion { .. })
        ));
    }

    #[test]
    fn eviction_reclaims_the_tenant_arena() {
        let before = tfd_value::intern::stats();
        let reg = Registry::new();
        let mut corpus = String::new();
        for i in 0..512 {
            corpus.push_str(&format!("{{\"evict_reclaim_key_{i}\": {i}}}\n"));
        }
        reg.ingest("t", &ingest_req(StreamFormat::Json, corpus.as_bytes()))
            .unwrap();
        let rows = reg.stats();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "t");
        assert!(rows[0].intern.symbols >= 512, "{:?}", rows[0].intern);
        assert!(reg.evict("t"));
        assert!(!reg.evict("t"));
        assert!(reg.is_empty());
        // The tenant's whole vocabulary went with its arena.
        let after = tfd_value::intern::stats();
        assert_eq!(after.retained_bytes, before.retained_bytes);
        assert_eq!(after.symbols, before.symbols);
    }

    #[test]
    fn empty_and_missing_are_distinct_errors() {
        let reg = Registry::new();
        assert!(matches!(
            reg.ingest("t", &ingest_req(StreamFormat::Json, b"  \n")),
            Err(RegistryError::EmptyCorpus)
        ));
        assert!(matches!(
            reg.shape("ghost", false),
            Err(RegistryError::NoSuchTenant(_))
        ));
        assert!(matches!(
            reg.fingerprint("ghost"),
            Err(RegistryError::NoSuchTenant(_))
        ));
    }
}
