//! The daemon: a [`TcpListener`] accept loop, one thread per
//! connection, routing requests into the [`Registry`].
//!
//! ## Routes
//!
//! | Method | Path | Does |
//! |---|---|---|
//! | `POST` | `/v1/{tenant}/ingest?format=json\|xml\|csv` | stream the body through the recovery drivers, absorb into the tenant shape |
//! | `GET` | `/v1/{tenant}/shape[?env=1]` | the corpus shape in the paper's notation (`tfd infer` output) |
//! | `GET` | `/v1/{tenant}/fingerprint` | version + canonical shape fingerprint |
//! | `GET` | `/v1/{tenant}/provider/{fsharp\|rust}` | generated provider code, fingerprint-cached |
//! | `POST` | `/v1/{tenant}/check` | conformance-check uploaded records against the tenant shape |
//! | `GET` | `/v1/{tenant}/diff/{version}[?mode=backward\|forward\|full]` | classified schema diff vs a past version |
//! | `DELETE` | `/v1/{tenant}` | evict the tenant, reclaiming its arena |
//! | `GET` | `/v1/stats` | process-wide + per-tenant interner/shape figures |
//!
//! (`stats` is a reserved word: no tenant may take that name.)
//!
//! Ingest query parameters mirror the CLI driver flags: `jobs=N`
//! (`--jobs`), `skip_errors=1` (`--skip-errors`), `max_errors=N`,
//! `max_record_bytes=N`, `max_depth=N`.
//!
//! Errors come back as the same machine-readable JSON the CLI's
//! `--json` mode emits: `{"error":{"code":…,"message":…}}`, with
//! [`StreamError`](tfd_core::stream::StreamError)s rendered by the shared
//! [`tfd_core::report::stream_error_json`].

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use tfd_core::analyze::CompatMode;
use tfd_core::recover::RecoveryPolicy;
use tfd_core::report::{error_report_json, json_escape, stream_error_json};

use crate::http::{self, read_request, HttpError, Request, Response};
use crate::registry::{parse_stream_format, IngestRequest, ProviderKind, Registry, RegistryError};

/// Tunables for a daemon instance.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Cap on one request body (the uploaded corpus), in bytes.
    pub max_body_bytes: usize,
    /// Per-connection socket read timeout (`None` = unbounded). A
    /// client that trickles its request slower than this is
    /// disconnected — the slowloris defence.
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write timeout (`None` = unbounded), so a
    /// client that stops reading its response cannot pin a handler.
    pub write_timeout: Option<Duration>,
    /// Cap on concurrently serving handler threads. Connections over
    /// the cap are refused with `503 server-busy` instead of queueing
    /// without bound.
    pub max_connections: usize,
}

/// Default per-connection socket timeout: generous for real clients,
/// fatal for slowloris drips.
const DEFAULT_CONN_TIMEOUT: Duration = Duration::from_secs(30);

/// Default cap on concurrent handler threads.
const DEFAULT_MAX_CONNECTIONS: usize = 64;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            read_timeout: Some(DEFAULT_CONN_TIMEOUT),
            write_timeout: Some(DEFAULT_CONN_TIMEOUT),
            max_connections: DEFAULT_MAX_CONNECTIONS,
        }
    }
}

/// Live occupancy of the connection handler pool, observable through
/// `/v1/stats` (and `tfd stats --addr`) so the cap is visible from the
/// outside, not just felt.
#[derive(Debug, Default)]
pub struct ConnGauge {
    active: AtomicUsize,
    accepted: AtomicU64,
    refused: AtomicU64,
}

/// A point-in-time reading of the gauge.
#[derive(Debug, Clone, Copy)]
pub struct ConnStats {
    /// Handler threads currently serving a connection.
    pub active: usize,
    /// Connections accepted into a handler since the daemon started.
    pub accepted: u64,
    /// Connections refused with `503 server-busy` since the daemon
    /// started.
    pub refused: u64,
}

impl ConnGauge {
    /// Tries to claim a handler slot under `cap`; `None` means the pool
    /// is full and the connection must be refused. The returned guard
    /// releases the slot on drop (panic-safe: a crashing handler still
    /// frees its slot).
    fn try_acquire(self: &Arc<Self>, cap: usize) -> Option<ConnGuard> {
        let prev = self.active.fetch_add(1, Ordering::SeqCst);
        if prev >= cap.max(1) {
            self.active.fetch_sub(1, Ordering::SeqCst);
            self.refused.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.accepted.fetch_add(1, Ordering::Relaxed);
        Some(ConnGuard {
            gauge: Arc::clone(self),
        })
    }

    /// The current occupancy and lifetime accept/refuse counters.
    pub fn snapshot(&self) -> ConnStats {
        ConnStats {
            active: self.active.load(Ordering::SeqCst),
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
        }
    }
}

struct ConnGuard {
    gauge: Arc<ConnGauge>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.gauge.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A bound-but-not-yet-serving daemon.
pub struct Server {
    listener: TcpListener,
    registry: Arc<Registry>,
    config: ServeConfig,
    stop: Arc<AtomicBool>,
    gauge: Arc<ConnGauge>,
}

impl Server {
    /// Binds to `addr` (e.g. `127.0.0.1:7341`; port `0` asks the OS for
    /// an ephemeral port) with an empty registry.
    ///
    /// # Errors
    ///
    /// The bind failure, verbatim.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            registry: Arc::new(Registry::new()),
            config,
            stop: Arc::new(AtomicBool::new(false)),
            gauge: Arc::new(ConnGauge::default()),
        })
    }

    /// The address actually bound (resolves port `0`).
    ///
    /// # Errors
    ///
    /// The socket introspection failure, verbatim.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared registry (for in-process inspection in tests/bench).
    pub fn registry(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// Serves until stopped: accepts connections forever, one handler
    /// thread per connection, capped at
    /// [`max_connections`](ServeConfig::max_connections) concurrent
    /// handlers (over-cap connections get an immediate `503
    /// server-busy`). Every accepted socket carries the configured
    /// read/write timeouts, so a client that stalls mid-request or
    /// mid-response is disconnected instead of pinning a handler
    /// forever. A failed accept is retried; a panic in a handler kills
    /// only its connection's thread, never the daemon — one bad request
    /// cannot take the registry down.
    pub fn run(self) {
        let Server {
            listener,
            registry,
            config,
            stop,
            gauge,
        } = self;
        for conn in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            // Timeouts go on before any byte is exchanged: the defence
            // must cover the request head, not just the body.
            let _ = stream.set_read_timeout(config.read_timeout);
            let _ = stream.set_write_timeout(config.write_timeout);
            match gauge.try_acquire(config.max_connections) {
                Some(guard) => {
                    let registry = registry.clone();
                    let gauge = gauge.clone();
                    thread::spawn(move || {
                        let _guard = guard;
                        handle_connection(stream, &registry, config, &gauge);
                    });
                }
                None => {
                    // Refuse off the accept thread — the write timeout
                    // bounds this thread's lifetime even against a
                    // client that never reads.
                    thread::spawn(move || {
                        let mut stream = stream;
                        let resp =
                            error_response(503, "server-busy", "connection limit reached; retry");
                        let _ = stream.write_all(&resp.to_bytes());
                        let _ = stream.flush();
                        // Closing with the client's unsent request still
                        // in flight would RST the 503 off the wire; a
                        // bounded drain (read timeout still armed) lets
                        // the client finish and read its refusal.
                        let mut sink = [0u8; 8 * 1024];
                        let mut drained = 0usize;
                        while drained < 256 * 1024 {
                            match std::io::Read::read(&mut stream, &mut sink) {
                                Ok(0) | Err(_) => break,
                                Ok(n) => drained += n,
                            }
                        }
                    });
                }
            }
        }
    }

    /// Starts the accept loop on a background thread and returns a
    /// handle that can stop it — the shape the integration suite and
    /// the bench harness use.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = self.stop.clone();
        let registry = self.registry.clone();
        let thread = thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            stop,
            registry,
            thread: Some(thread),
        })
    }
}

/// A running daemon on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    registry: Arc<Registry>,
    thread: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's registry (for in-process assertions).
    pub fn registry(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// Stops the accept loop and joins the serving thread. In-flight
    /// connection handlers finish on their own threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag on its next wakeup;
        // a throwaway self-connection provides one.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    registry: &Registry,
    config: ServeConfig,
    gauge: &ConnGauge,
) {
    let (response, refused_early) = match read_request(&mut stream, config.max_body_bytes) {
        Ok(request) => (route(&request, registry, gauge, &config), false),
        Err(HttpError::Io(_)) => return, // socket died; nobody to answer
        Err(e) => (error_response(e.status(), e.code(), &e.to_string()), true),
    };
    let _ = stream.write_all(&response.to_bytes());
    let _ = stream.flush();
    if refused_early {
        // The request was rejected before its body was consumed (e.g.
        // 413 on the Content-Length alone). Closing now would RST the
        // still-writing client and destroy the response in flight;
        // draining what the client sends (bounded) lets it finish and
        // read the error instead.
        let mut sink = [0u8; 64 * 1024];
        let mut drained = 0usize;
        while drained <= config.max_body_bytes.saturating_add(http::MAX_HEAD_BYTES) {
            match std::io::Read::read(&mut stream, &mut sink) {
                Ok(0) | Err(_) => break,
                Ok(n) => drained += n,
            }
        }
    }
}

/// `{"error":{"code":…,"message":…}}` — the uniform error body.
fn error_response(status: u16, code: &str, message: &str) -> Response {
    Response::json(
        status,
        format!(
            "{{\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}}}}\n",
            json_escape(code),
            json_escape(message)
        ),
    )
}

fn registry_error_response(e: &RegistryError) -> Response {
    match e {
        RegistryError::NoSuchTenant(_) => error_response(404, "no-such-tenant", &e.to_string()),
        RegistryError::NoSuchVersion { .. } => {
            error_response(404, "no-such-version", &e.to_string())
        }
        RegistryError::FormatConflict { .. } => {
            error_response(409, "format-conflict", &e.to_string())
        }
        RegistryError::EmptyCorpus => error_response(422, "empty-corpus", &e.to_string()),
        // Same rendering as the CLI's structured stream errors — code,
        // message, and the nested first error for exhausted budgets.
        RegistryError::Stream(se) => {
            Response::json(400, format!("{{\"error\":{}}}\n", stream_error_json(se)))
        }
    }
}

fn route(
    request: &Request,
    registry: &Registry,
    gauge: &ConnGauge,
    config: &ServeConfig,
) -> Response {
    let segments = request.segments();
    match segments.as_slice() {
        ["v1", "stats"] => match request.method.as_str() {
            "GET" => stats(registry, gauge, config),
            _ => method_not_allowed(request),
        },
        ["v1", tenant] => match request.method.as_str() {
            "DELETE" => evict(registry, tenant),
            _ => method_not_allowed(request),
        },
        ["v1", "stats", ..] => error_response(404, "not-found", "\"stats\" is a reserved name"),
        ["v1", tenant, "ingest"] => match request.method.as_str() {
            "POST" => ingest(request, registry, tenant),
            _ => method_not_allowed(request),
        },
        ["v1", tenant, "shape"] => match request.method.as_str() {
            "GET" => shape(request, registry, tenant),
            _ => method_not_allowed(request),
        },
        ["v1", tenant, "fingerprint"] => match request.method.as_str() {
            "GET" => fingerprint(registry, tenant),
            _ => method_not_allowed(request),
        },
        ["v1", tenant, "provider", kind] => match request.method.as_str() {
            "GET" => provider(request, registry, tenant, kind),
            _ => method_not_allowed(request),
        },
        ["v1", tenant, "check"] => match request.method.as_str() {
            "POST" => check(request, registry, tenant),
            _ => method_not_allowed(request),
        },
        ["v1", tenant, "diff", version] => match request.method.as_str() {
            "GET" => diff(request, registry, tenant, version),
            _ => method_not_allowed(request),
        },
        _ => error_response(404, "not-found", &format!("no route for {}", request.path)),
    }
}

fn method_not_allowed(request: &Request) -> Response {
    error_response(
        405,
        "method-not-allowed",
        &format!("{} is not supported on {}", request.method, request.path),
    )
}

/// Builds the ingest driver parameters from the query string, erroring
/// like the CLI does on unparseable flag values.
fn ingest_params(request: &Request) -> Result<(usize, RecoveryPolicy), Response> {
    let mut policy = RecoveryPolicy::default();
    if request.query_flag("skip_errors") {
        policy.mode = tfd_core::RecoveryMode::Skip;
    }
    let jobs = parse_usize(request, "jobs")?.unwrap_or(1).max(1);
    if let Some(n) = parse_usize(request, "max_errors")? {
        policy.max_errors = n;
    }
    if let Some(n) = parse_usize(request, "max_record_bytes")? {
        policy.max_record_bytes = n;
    }
    if let Some(n) = parse_usize(request, "max_depth")? {
        policy.max_depth = Some(n);
    }
    Ok((jobs, policy))
}

fn parse_usize(request: &Request, key: &str) -> Result<Option<usize>, Response> {
    match request.query_param(key) {
        None => Ok(None),
        Some(v) => v.parse::<usize>().map(Some).map_err(|_| {
            error_response(
                400,
                "bad-query",
                &format!("query parameter {key} wants a number, got {v:?}"),
            )
        }),
    }
}

fn ingest(request: &Request, registry: &Registry, tenant: &str) -> Response {
    if tenant == "stats" {
        return error_response(404, "not-found", "\"stats\" is a reserved name");
    }
    let Some(format) = request.query_param("format").and_then(parse_stream_format) else {
        return error_response(400, "bad-query", "ingest wants ?format=json|xml|csv");
    };
    let (jobs, policy) = match ingest_params(request) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let req = IngestRequest {
        format,
        body: &request.body,
        jobs,
        policy,
    };
    match registry.ingest(tenant, &req) {
        Ok(out) => Response::json(
            200,
            format!(
                "{{\"tenant\":\"{}\",\"version\":{},\"records\":{},\"bytes\":{},\
                 \"fingerprint\":\"{}\",\"report\":{}}}\n",
                json_escape(tenant),
                out.version,
                out.records,
                out.bytes,
                out.fingerprint,
                error_report_json(&out.report),
            ),
        ),
        Err(e) => registry_error_response(&e),
    }
}

fn shape(request: &Request, registry: &Registry, tenant: &str) -> Response {
    match registry.shape(tenant, request.query_flag("env")) {
        Ok((_, text)) => Response::text(200, text),
        Err(e) => registry_error_response(&e),
    }
}

fn fingerprint(registry: &Registry, tenant: &str) -> Response {
    match registry.fingerprint(tenant) {
        Ok((version, fp)) => Response::json(
            200,
            format!("{{\"version\":{version},\"fingerprint\":\"{fp}\"}}\n"),
        ),
        Err(e) => registry_error_response(&e),
    }
}

fn provider(request: &Request, registry: &Registry, tenant: &str, kind: &str) -> Response {
    let Some(kind) = ProviderKind::parse(kind) else {
        return error_response(
            404,
            "not-found",
            &format!("no provider {kind:?}; try fsharp or rust"),
        );
    };
    // Same defaults as `tfd fsharp` / `tfd rust`.
    let module = request.query_param("module").unwrap_or("provided");
    let root = request.query_param("root").unwrap_or("Root");
    let prefix = request.query_param("prefix").unwrap_or("::types_from_data");
    match registry.provider(tenant, kind, module, root, prefix) {
        Ok(out) => Response::text(200, out.code.as_str()),
        Err(e) => registry_error_response(&e),
    }
}

fn check(request: &Request, registry: &Registry, tenant: &str) -> Response {
    let format = match request.query_param("format") {
        None => None,
        Some(f) => match parse_stream_format(f) {
            Some(f) => Some(f),
            None => {
                return error_response(
                    400,
                    "bad-query",
                    &format!("unknown format {f:?}; try json, xml or csv"),
                )
            }
        },
    };
    match registry.check(tenant, format, &request.body) {
        Ok(out) => {
            let failures = out
                .failures
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",");
            Response::json(
                200,
                format!(
                    "{{\"version\":{},\"records\":{},\"conforms\":{},\"failures\":[{}]}}\n",
                    out.version,
                    out.records,
                    out.failures.is_empty(),
                    failures
                ),
            )
        }
        Err(e) => registry_error_response(&e),
    }
}

fn diff(request: &Request, registry: &Registry, tenant: &str, version: &str) -> Response {
    let Ok(version) = version.parse::<u64>() else {
        return error_response(
            400,
            "bad-query",
            &format!("version must be a number, got {version:?}"),
        );
    };
    let mode = match request.query_param("mode") {
        None => CompatMode::Backward,
        Some(m) => match m.parse::<CompatMode>() {
            Ok(m) => m,
            Err(e) => return error_response(400, "bad-query", &e.to_string()),
        },
    };
    match registry.diff(tenant, version, mode) {
        Ok(out) => Response::json(
            200,
            format!(
                "{{\"old_version\":{},\"new_version\":{},\"report\":{}}}\n",
                out.old_version,
                out.new_version,
                out.json.trim_end()
            ),
        ),
        Err(e) => registry_error_response(&e),
    }
}

fn evict(registry: &Registry, tenant: &str) -> Response {
    if tenant == "stats" {
        return error_response(404, "not-found", "\"stats\" is a reserved name");
    }
    if registry.evict(tenant) {
        Response::json(
            200,
            format!("{{\"evicted\":\"{}\"}}\n", json_escape(tenant)),
        )
    } else {
        registry_error_response(&RegistryError::NoSuchTenant(tenant.to_owned()))
    }
}

fn stats(registry: &Registry, gauge: &ConnGauge, config: &ServeConfig) -> Response {
    let process = tfd_value::intern::stats();
    let conns = gauge.snapshot();
    let mut body = format!(
        "{{\"process\":{{\"symbols\":{},\"spelling_bytes\":{},\"retained_bytes\":{},\
         \"arenas\":{}}},\"connections\":{{\"active\":{},\"capacity\":{},\"accepted\":{},\
         \"refused\":{}}},\"tenants\":[",
        process.symbols,
        process.spelling_bytes,
        process.retained_bytes,
        process.arenas,
        conns.active,
        config.max_connections,
        conns.accepted,
        conns.refused,
    );
    for (i, t) in registry.stats().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"tenant\":\"{}\",\"format\":\"{}\",\"version\":{},\"fingerprint\":\"{}\",\
             \"records\":{},\"bytes\":{},\"intern\":{{\"symbols\":{},\"spelling_bytes\":{},\
             \"retained_bytes\":{}}}}}",
            json_escape(&t.name),
            match t.format {
                tfd_core::StreamFormat::Json => "json",
                tfd_core::StreamFormat::Xml => "xml",
                tfd_core::StreamFormat::Csv => "csv",
            },
            t.version,
            t.fingerprint,
            t.records,
            t.bytes,
            t.intern.symbols,
            t.intern.spelling_bytes,
            t.intern.retained_bytes,
        ));
    }
    body.push_str("]}\n");
    Response::json(200, body)
}
