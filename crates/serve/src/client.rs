//! A minimal blocking client for the daemon's one-request-per-connection
//! protocol — used by `tfd stats`, the integration suite and the bench
//! harness. Not a general HTTP client: it speaks exactly the dialect
//! [`crate::http`] serves.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A response as the client sees it: status code and body bytes.
#[derive(Debug)]
pub struct ClientResponse {
    /// The HTTP status code.
    pub status: u16,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy — error bodies are always UTF-8, data
    /// bodies are whatever was stored).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request and reads the response to EOF (the server closes
/// every connection after one exchange).
///
/// `body` is `Some((content_type, bytes))` for `POST`-style requests,
/// `None` for `GET`/`DELETE`.
///
/// # Errors
///
/// Connection/socket failures, or a malformed status line from
/// something that is not this daemon.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<(&str, &[u8])>,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: tfd\r\n");
    if let Some((content_type, bytes)) = body {
        head.push_str(&format!(
            "Content-Type: {content_type}\r\nContent-Length: {}\r\n",
            bytes.len()
        ));
    }
    head.push_str("Connection: close\r\n\r\n");
    // A server may refuse the request from its head alone (413 on the
    // declared length) and stop reading; the body write then fails with
    // a reset even though a perfectly good error response is waiting.
    // Remember the failure but read the response anyway.
    let write_result: std::io::Result<()> = (|| {
        stream.write_all(head.as_bytes())?;
        if let Some((_, bytes)) = body {
            stream.write_all(bytes)?;
        }
        stream.flush()
    })();
    // Half-close: tells the server this request is complete (its
    // error-path body drain reads to EOF) while leaving the read side
    // open for the response.
    let _ = stream.shutdown(std::net::Shutdown::Write);

    let mut raw = Vec::new();
    match stream.read_to_end(&mut raw) {
        Ok(_) => {}
        Err(e) => return Err(write_result.err().unwrap_or(e)),
    }
    if raw.is_empty() {
        write_result?;
    }
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let malformed = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(malformed)?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| malformed())?;
    let status_line = head.lines().next().ok_or_else(malformed)?;
    // "HTTP/1.1 200 OK" — the middle token is the status.
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(malformed)?;
    Ok(ClientResponse {
        status,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let r = parse_response(b"HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nno").unwrap();
        assert_eq!(r.status, 404);
        assert_eq!(r.text(), "no");
        assert!(parse_response(b"garbage").is_err());
        assert!(parse_response(b"HTTP/1.1 nope\r\n\r\n").is_err());
    }
}
