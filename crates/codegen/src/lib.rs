//! # tfd-codegen — Rust "provided types" from inferred shapes
//!
//! The Rust analogue of the paper's type-provider output (§4.2): given an
//! inferred [`Shape`](tfd_core::Shape), [`generate`] emits the source of
//! a Rust module with one struct per class-like shape and typed accessor
//! methods over [`tfd_runtime`](https://docs.rs)'s conversions — the same
//! architecture as the Fig. 8 mapping, but targeting Rust structs instead
//! of Foo classes:
//!
//! | Fig. 8 rule         | Generated Rust                                  |
//! |---------------------|-------------------------------------------------|
//! | primitives          | `as_i64()` / `as_f64()` / … calls               |
//! | records             | a struct with one accessor per field            |
//! | collections         | `Vec<T>` via `elements()`                       |
//! | `nullable σ̂`        | `Option<T>` via `opt()`                         |
//! | labelled top (§3.5) | option-returning case methods via `case()`      |
//! | hetero lists (§6.4) | multiplicity-typed case methods via `tagged_*`  |
//!
//! The proc-macro crate (`tfd-macros`) compiles this text at the use
//! site — the Rust equivalent of invoking `JsonProvider<"...">` at
//! compile time; the `tfd` CLI prints it like `quicktype`.
//!
//! # Example
//!
//! ```
//! use tfd_codegen::{generate, CodegenOptions, SourceFormat};
//! use tfd_core::{infer_with, InferOptions};
//!
//! let sample = tfd_json::parse(r#"[{ "name": "Jan", "age": 25 }]"#)?;
//! let shape = infer_with(&sample.to_value(), &InferOptions::json());
//! let code = generate(&shape, "people", "Person", &CodegenOptions {
//!     format: Some(SourceFormat::Json),
//!     ..CodegenOptions::default()
//! });
//! assert!(code.contains("pub struct Person"));
//! assert!(code.contains("pub fn age(&self)"));
//! # Ok::<(), tfd_json::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emit;
mod rust_names;

pub use emit::{generate, generate_global, CodegenOptions, SourceFormat};
pub use rust_names::{snake_case, struct_name};
