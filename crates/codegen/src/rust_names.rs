//! Rust-flavoured naming for generated code.
//!
//! The §6.3 pipeline targets F# conventions (PascalCase members); Rust
//! code follows the Rust API Guidelines instead: `UpperCamelCase` types
//! and `snake_case` methods, with keyword escaping and collision
//! numbering.

/// Converts a field name to a `snake_case` method name, escaping Rust
/// keywords by appending `_`.
///
/// ```
/// use tfd_codegen::snake_case;
/// assert_eq!(snake_case("TempMin"), "temp_min");
/// assert_eq!(snake_case("user-name"), "user_name");
/// assert_eq!(snake_case("type"), "type_");
/// assert_eq!(snake_case("2fast"), "n2fast");
/// assert_eq!(snake_case("•"), "value");
/// ```
pub fn snake_case(name: &str) -> String {
    if name == tfd_value::BODY_NAME {
        return "value".to_owned();
    }
    let mut out = String::new();
    let mut prev_lower = false;
    let mut prev_sep = true;
    for c in name.chars() {
        if c.is_alphanumeric() {
            if c.is_uppercase() {
                if prev_lower {
                    out.push('_');
                }
                out.extend(c.to_lowercase());
                prev_lower = false;
            } else {
                out.push(c);
                prev_lower = c.is_lowercase() || c.is_ascii_digit();
            }
            prev_sep = false;
        } else if !prev_sep {
            out.push('_');
            prev_lower = false;
            prev_sep = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    if out.is_empty() {
        out.push_str("value");
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, 'n');
    }
    if is_keyword(&out) {
        out.push('_');
    }
    out
}

/// Rust keywords that cannot be used as method names.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "async"
            | "await"
            | "abstract"
            | "become"
            | "box"
            | "do"
            | "final"
            | "macro"
            | "override"
            | "priv"
            | "typeof"
            | "unsized"
            | "virtual"
            | "yield"
            | "try"
            | "raw"
            | "gen"
    )
}

/// Converts a record/element name to a Rust struct name (UpperCamelCase,
/// digits prefixed, `•` becomes `Entity`).
///
/// ```
/// use tfd_codegen::struct_name;
/// assert_eq!(struct_name("person"), "Person");
/// assert_eq!(struct_name("temp_min"), "TempMin");
/// assert_eq!(struct_name("•"), "Entity");
/// ```
pub fn struct_name(name: &str) -> String {
    if name == tfd_value::BODY_NAME || name.is_empty() {
        return "Entity".to_owned();
    }
    tfd_provider::naming::pascal_case(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_case_varieties() {
        assert_eq!(snake_case("name"), "name");
        assert_eq!(snake_case("Name"), "name");
        assert_eq!(snake_case("TempMin"), "temp_min");
        assert_eq!(snake_case("tempMin"), "temp_min");
        assert_eq!(snake_case("TEMP"), "temp");
        assert_eq!(snake_case("temp min"), "temp_min");
        assert_eq!(snake_case("temp.min"), "temp_min");
        assert_eq!(snake_case("a-b-c"), "a_b_c");
    }

    #[test]
    fn snake_case_edge_cases() {
        assert_eq!(snake_case(""), "value");
        assert_eq!(snake_case("---"), "value");
        assert_eq!(snake_case("123"), "n123");
        assert_eq!(snake_case("fn"), "fn_");
        assert_eq!(snake_case("match"), "match_");
        assert_eq!(snake_case("trailing-"), "trailing");
    }

    #[test]
    fn struct_name_varieties() {
        assert_eq!(struct_name("root"), "Root");
        assert_eq!(struct_name("my-element"), "MyElement");
        assert_eq!(struct_name(tfd_value::BODY_NAME), "Entity");
    }
}
