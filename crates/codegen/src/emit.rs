//! Rust code emission from inferred shapes.
//!
//! [`generate`] turns a [`Shape`] into the source text of a Rust module —
//! the Rust analogue of the F# "provided types": one struct per record /
//! labelled-top / heterogeneous-collection shape, with typed accessor
//! methods implemented on top of `tfd-runtime`'s conversions. The
//! proc-macro providers compile this text into the user's crate; the
//! `tfd` CLI prints it (quicktype-style).

use crate::rust_names::{snake_case, struct_name};
use std::collections::HashMap;
use std::fmt::Write as _;
use tfd_core::{tag_of, GlobalShape, Multiplicity, Shape, ShapeEnv, Tag};
use tfd_provider::naming::ClassNamer;
use tfd_value::Name;

/// Which front-end the generated `parse`/`load` functions use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceFormat {
    /// JSON documents (`tfd_json::parse_value`).
    Json,
    /// XML documents (`tfd_xml::parse_value`).
    Xml,
    /// CSV files (`tfd_csv::parse_value`).
    Csv,
}

/// Code generation options.
#[derive(Debug, Clone)]
pub struct CodegenOptions {
    /// Path prefix for the support crates in generated code. The default
    /// `::types_from_data` works for users of the facade crate; pass
    /// e.g. `crate` when generating into the facade itself.
    pub crate_prefix: String,
    /// When set, `parse(text)` and `load(path)` functions are emitted for
    /// the format.
    pub format: Option<SourceFormat>,
    /// When set, the sample text is embedded as a `SAMPLE` constant with
    /// a `sample()` accessor — the analogue of `GetSample()` (§2.1).
    pub sample_text: Option<String>,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            crate_prefix: "::types_from_data".to_owned(),
            format: None,
            sample_text: None,
        }
    }
}

/// Generates a Rust module providing typed access for `shape`.
///
/// The module contains one struct per class-like shape (records, labelled
/// tops, heterogeneous collections), a `from_value` entry point, and —
/// when [`CodegenOptions::format`] is set — `parse`/`load`/`sample`
/// functions.
///
/// ```
/// use tfd_codegen::{generate, CodegenOptions};
/// use tfd_core::Shape;
///
/// let shape = Shape::record("•", [("name", Shape::String)]);
/// let code = generate(&shape, "people", "Entity", &CodegenOptions::default());
/// assert!(code.contains("pub mod people"));
/// assert!(code.contains("pub struct Entity"));
/// assert!(code.contains("pub fn name(&self)"));
/// ```
pub fn generate(
    shape: &Shape,
    module_name: &str,
    root_hint: &str,
    options: &CodegenOptions,
) -> String {
    generate_global(
        &GlobalShape::plain(shape.clone()),
        module_name,
        root_hint,
        options,
    )
}

/// Generates a Rust module providing typed access for a [`GlobalShape`]
/// — the §6.2 global-inference result.
///
/// Every environment definition becomes **one struct**, emitted in
/// topological order (dependencies first, cycles broken at the back
/// edge), and every [`Shape::Ref`] maps to that struct — so recursive
/// XML name classes come out as genuinely recursive Rust types. The
/// indirection recursion needs is already there: provided structs wrap a
/// runtime [`Node`](https://docs.rs) (a `Box`-like handle over the
/// document), collections come back as `Vec<T>`, and optional nesting as
/// `Option<T>` — an accessor on `Div` can therefore return
/// `Option<Div>` without constructing an infinite type. When the
/// environment is non-empty, a `SHAPE_ENV` static is emitted and the
/// labelled-top case checks run env-aware (`case_in`), so `hasShape`
/// tests unfold μ-references all the way down.
pub fn generate_global(
    global: &GlobalShape,
    module_name: &str,
    root_hint: &str,
    options: &CodegenOptions,
) -> String {
    let mut emitter = Emitter {
        prefix: options.crate_prefix.clone(),
        items: Vec::new(),
        statics: Vec::new(),
        memo: HashMap::new(),
        namer: ClassNamer::new(),
        static_count: 0,
        env: global.env.clone(),
        ref_structs: HashMap::new(),
        env_static_emitted: false,
    };
    // One struct per environment definition, topologically ordered:
    // reserve all names first (mutual recursion), then emit bodies.
    let ordered = topo_order(global);
    for &name in &ordered {
        let struct_for_def = emitter.namer.fresh(&name);
        emitter.ref_structs.insert(name, struct_for_def);
    }
    for &name in &ordered {
        if let Some(def) = global.env.get(name) {
            let def_struct = emitter.ref_structs[&name].clone();
            let body = emitter.record_struct(&def_struct, def);
            emitter.items.push(body);
        }
    }
    let root_ty = emitter.ty_of(&global.root, root_hint);
    let root_conv = emitter.conv(&global.root, "node", root_hint);

    let p = &options.crate_prefix;
    let mut out = String::new();
    let _ = writeln!(out, "/// Typed access module generated by types-from-data.");
    let _ = writeln!(out, "///");
    let _ = writeln!(out, "/// Inferred shape: `{global}`");
    let _ = writeln!(out, "pub mod {module_name} {{");
    let _ = writeln!(out, "    #![allow(dead_code, clippy::all)]");
    let _ = writeln!(out, "    use {p}::runtime::{{AccessError, Node}};");
    let _ = writeln!(out, "    use {p}::value::Value;");
    let _ = writeln!(out);

    for s in &emitter.statics {
        for line in s.lines() {
            let _ = writeln!(out, "    {line}");
        }
    }
    if !emitter.statics.is_empty() {
        let _ = writeln!(out);
    }
    for item in &emitter.items {
        for line in item.lines() {
            let _ = writeln!(out, "    {line}");
        }
        let _ = writeln!(out);
    }

    // Entry point.
    let _ = writeln!(
        out,
        "    /// Wraps an already-parsed document in the provided type."
    );
    let _ = writeln!(
        out,
        "    pub fn from_value(value: Value) -> Result<{root_ty}, AccessError> {{"
    );
    let _ = writeln!(out, "        let node = Node::new(value);");
    let _ = writeln!(out, "        Ok({root_conv})");
    let _ = writeln!(out, "    }}");

    if let Some(format) = options.format {
        let (parse_call, parse_in_call, error_ty) = match format {
            SourceFormat::Json => (
                format!("{p}::json::parse_value(text)?"),
                format!("{p}::json::parse_value_in(text, &Default::default(), interner)?"),
                "Box<dyn std::error::Error + Send + Sync>",
            ),
            SourceFormat::Xml => (
                format!("{p}::xml::parse_value(text)?"),
                format!(
                    "{p}::xml::parse_value_in(text, &Default::default(), &Default::default(), \
                     interner)?"
                ),
                "Box<dyn std::error::Error + Send + Sync>",
            ),
            SourceFormat::Csv => (
                format!("{p}::csv::parse_value(text)?"),
                format!(
                    "{p}::csv::parse_value_in(text, &Default::default(), &Default::default(), \
                     interner)?"
                ),
                "Box<dyn std::error::Error + Send + Sync>",
            ),
        };
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "    /// Parses a document of the same shape as the static sample\n    \
             /// (the analogue of the provider's `Parse` method, §2.1)."
        );
        let _ = writeln!(
            out,
            "    ///\n    /// # Errors\n    ///\n    /// Returns parse errors and \
             top-level shape mismatches."
        );
        let _ = writeln!(
            out,
            "    pub fn parse(text: &str) -> Result<{root_ty}, {error_ty}> {{"
        );
        let _ = writeln!(out, "        let value = {parse_call};");
        let _ = writeln!(out, "        Ok(from_value(value)?)");
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "    /// As [`parse`], interning names into the caller's scoped arena\n    \
             /// so a batch of documents can be parsed and dropped together\n    \
             /// without growing the process-wide name table."
        );
        let _ = writeln!(
            out,
            "    ///\n    /// # Errors\n    ///\n    /// Returns parse errors and \
             top-level shape mismatches."
        );
        let _ = writeln!(
            out,
            "    pub fn parse_in(text: &str, interner: &{p}::value::Interner) \
             -> Result<{root_ty}, {error_ty}> {{"
        );
        let _ = writeln!(out, "        let value = {parse_in_call};");
        let _ = writeln!(out, "        Ok(from_value(value)?)");
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "    /// Reads and parses a file (the analogue of `Load`, §2.2)."
        );
        let _ = writeln!(
            out,
            "    ///\n    /// # Errors\n    ///\n    /// Returns I/O errors, parse \
             errors and top-level shape mismatches."
        );
        let _ = writeln!(
            out,
            "    pub fn load(path: impl AsRef<std::path::Path>) -> Result<{root_ty}, {error_ty}> {{"
        );
        let _ = writeln!(out, "        parse(&std::fs::read_to_string(path)?)");
        let _ = writeln!(out, "    }}");

        if let Some(sample) = &options.sample_text {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "    /// The compile-time sample the types were inferred from."
            );
            let _ = writeln!(out, "    pub const SAMPLE: &str = {sample:?};");
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "    /// Parses the compile-time sample (the analogue of `GetSample()`, §2.1)."
            );
            let _ = writeln!(out, "    ///");
            let _ = writeln!(out, "    /// # Panics");
            let _ = writeln!(out, "    ///");
            let _ = writeln!(
                out,
                "    /// Never panics: the sample was parsed at generation time."
            );
            let _ = writeln!(out, "    pub fn sample() -> {root_ty} {{");
            let _ = writeln!(
                out,
                "        parse(SAMPLE).expect(\"the compile-time sample always parses\")"
            );
            let _ = writeln!(out, "    }}");
        }
    }

    let _ = writeln!(out, "}}");
    out
}

/// A record whose only field is the `•` body — a text-only XML element,
/// which the §6.3 pipeline reads as its content (the `Root`/`Item`
/// example prints `member Item : string`).
fn is_text_only(r: &tfd_core::RecordShape) -> bool {
    r.fields.len() == 1 && r.fields[0].name == tfd_value::BODY_NAME
}

/// Orders the environment definitions dependencies-first (post-order
/// DFS from the root's references; cycles are broken at the back edge,
/// which is where the recursion genuinely lives). Definitions unreachable
/// from the root follow in table order.
fn topo_order(global: &GlobalShape) -> Vec<Name> {
    fn refs_of(shape: &Shape, out: &mut Vec<Name>) {
        match shape {
            Shape::Ref(n) => out.push(*n),
            Shape::Record(r) => {
                for f in &r.fields {
                    refs_of(&f.shape, out);
                }
            }
            Shape::Nullable(s) | Shape::List(s) => refs_of(s, out),
            Shape::Top(labels) => {
                for l in labels {
                    refs_of(l, out);
                }
            }
            Shape::HeteroList(cases) => {
                for (s, _) in cases {
                    refs_of(s, out);
                }
            }
            _ => {}
        }
    }
    fn visit(name: Name, global: &GlobalShape, seen: &mut Vec<Name>, out: &mut Vec<Name>) {
        if seen.contains(&name) {
            return; // already placed, or a cycle's back edge
        }
        seen.push(name);
        if let Some(def) = global.env.get(name) {
            let mut deps = Vec::new();
            for f in &def.fields {
                refs_of(&f.shape, &mut deps);
            }
            for dep in deps {
                visit(dep, global, seen, out);
            }
            out.push(name);
        }
    }
    let mut seen = Vec::new();
    let mut out = Vec::new();
    let mut root_refs = Vec::new();
    refs_of(&global.root, &mut root_refs);
    for r in root_refs {
        visit(r, global, &mut seen, &mut out);
    }
    for name in global.env.names() {
        visit(name, global, &mut seen, &mut out);
    }
    out
}

struct Emitter {
    prefix: String,
    items: Vec<String>,
    statics: Vec<String>,
    memo: HashMap<Shape, String>,
    namer: ClassNamer,
    static_count: usize,
    /// The definitions table of the [`GlobalShape`] being emitted.
    env: ShapeEnv,
    /// Struct name reserved for each definition (μ-references resolve
    /// here).
    ref_structs: HashMap<Name, String>,
    /// Whether the `SHAPE_ENV` static has been emitted yet.
    env_static_emitted: bool,
}

impl Emitter {
    /// The Rust type for a shape, emitting supporting structs on demand.
    fn ty_of(&mut self, shape: &Shape, hint: &str) -> String {
        match shape {
            Shape::Int => "i64".to_owned(),
            Shape::Float => "f64".to_owned(),
            Shape::Bool | Shape::Bit => "bool".to_owned(),
            Shape::String => "String".to_owned(),
            Shape::Date => format!("{}::runtime::Date", self.prefix),
            Shape::Null | Shape::Bottom => "Node".to_owned(),
            Shape::Nullable(inner) => format!("Option<{}>", self.ty_of(inner, hint)),
            Shape::List(el) => format!("Vec<{}>", self.ty_of(el, hint)),
            // §6.3 collapse: a text-only element (a record whose only
            // field is the `•` body) reads as its content.
            Shape::Record(r) if is_text_only(r) => self.ty_of(&r.fields[0].shape, hint),
            Shape::Record(_) | Shape::Top(_) | Shape::HeteroList(_) => self.struct_for(shape, hint),
            // A μ-reference is its definition's struct — recursion in
            // the shape becomes recursion between generated types.
            Shape::Ref(n) => match self.ref_structs.get(n) {
                Some(name) => name.clone(),
                None => "Node".to_owned(), // dangling: raw escape hatch
            },
        }
    }

    /// A conversion expression of the shape's Rust type, reading from the
    /// node expression `node` (may use `?`, so it must appear in a
    /// function returning `Result<_, AccessError>`).
    fn conv(&mut self, shape: &Shape, node: &str, hint: &str) -> String {
        match shape {
            Shape::Int => format!("({node}).as_i64()?"),
            Shape::Float => format!("({node}).as_f64()?"),
            Shape::Bool => format!("({node}).as_bool()?"),
            Shape::Bit => format!("({node}).as_bit_bool()?"),
            Shape::String => format!("({node}).as_str()?.to_owned()"),
            Shape::Date => format!("({node}).as_date()?"),
            Shape::Null | Shape::Bottom => format!("({node})"),
            Shape::Nullable(inner) => {
                let inner_conv = self.conv(inner, "inner_node", hint);
                format!(
                    "match ({node}).opt() {{ Some(inner_node) => Some({inner_conv}), None => None }}"
                )
            }
            Shape::List(el) => {
                let el_conv = self.conv(el, "item", hint);
                format!(
                    "{{ let mut out = Vec::new(); for item in ({node}).elements()? {{ out.push({el_conv}); }} out }}"
                )
            }
            Shape::Record(r) if is_text_only(r) => {
                let inner = self.conv(&r.fields[0].shape, "body_node", hint);
                format!(
                    "{{ let body_node = ({node}).field({:?})?; {inner} }}",
                    tfd_value::BODY_NAME
                )
            }
            Shape::Record(_) | Shape::Top(_) | Shape::HeteroList(_) => {
                let name = self.struct_for(shape, hint);
                format!("{name}::from_node({node})")
            }
            Shape::Ref(n) => match self.ref_structs.get(n) {
                Some(name) => format!("{name}::from_node({node})"),
                None => format!("({node})"),
            },
        }
    }

    /// Returns (emitting on first use) the struct for a class-like shape.
    fn struct_for(&mut self, shape: &Shape, hint: &str) -> String {
        if let Some(name) = self.memo.get(shape) {
            return name.clone();
        }
        let base = match shape {
            Shape::Record(r) => struct_name(if r.name == tfd_value::BODY_NAME {
                hint
            } else {
                &r.name
            }),
            _ => struct_name(hint),
        };
        let name = self.namer.fresh(&base);
        self.memo.insert(shape.clone(), name.clone());

        let body = match shape {
            Shape::Record(r) => self.record_struct(&name, r),
            Shape::Top(labels) => self.top_struct(&name, labels),
            Shape::HeteroList(cases) => self.hetero_struct(&name, cases),
            _ => unreachable!("struct_for called on a non-class shape"),
        };
        self.items.push(body);
        name
    }

    fn struct_header(&self, name: &str, doc: &str) -> String {
        format!(
            "/// {doc}\n#[derive(Debug, Clone, PartialEq)]\npub struct {name} {{\n    node: Node,\n}}\n\nimpl {name} {{\n    /// Wraps a document node.\n    pub fn from_node(node: Node) -> {name} {{\n        {name} {{ node }}\n    }}\n\n    /// The underlying weakly typed value (escape hatch, §6.3).\n    pub fn raw(&self) -> &Value {{\n        self.node.raw()\n    }}\n\n    /// The runtime node (for advanced navigation).\n    pub fn node(&self) -> &Node {{\n        &self.node\n    }}\n"
        )
    }

    fn record_struct(&mut self, name: &str, r: &tfd_core::RecordShape) -> String {
        let mut out = self.struct_header(
            name,
            &format!(
                "Provided type for the record shape `{}`.",
                Shape::Record(r.clone())
            ),
        );
        let mut used: Vec<String> = vec!["from_node".into(), "raw".into(), "node".into()];
        for field in &r.fields {
            // §6.3 lifting: members of a labelled-top / heterogeneous
            // body (`•` field) are exposed directly on this struct.
            if field.name == tfd_value::BODY_NAME {
                let base = format!("self.node.field({:?})?", field.name);
                match &field.shape {
                    Shape::Top(labels) => {
                        self.emit_top_methods(&mut out, &mut used, labels, &base);
                        continue;
                    }
                    Shape::HeteroList(cases) => {
                        self.emit_hetero_methods(&mut out, &mut used, cases, &base);
                        continue;
                    }
                    _ => {}
                }
            }
            let mut method = snake_case(&field.name);
            while used.contains(&method) {
                method.push('_');
            }
            used.push(method.clone());
            let ty = self.ty_of(&field.shape, &field.name);
            let conv = self.conv(&field.shape, "node", &field.name);
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "    /// Accesses the `{}` field.",
                field.name.escape_debug()
            );
            let _ = writeln!(out, "    ///");
            let _ = writeln!(out, "    /// # Errors");
            let _ = writeln!(out, "    ///");
            let _ = writeln!(
                out,
                "    /// Fails when the value's shape differs from the inferred `{}`.",
                field.shape
            );
            let _ = writeln!(
                out,
                "    pub fn {method}(&self) -> Result<{ty}, AccessError> {{"
            );
            let _ = writeln!(
                out,
                "        let node = self.node.field({:?})?;",
                field.name
            );
            let _ = writeln!(out, "        Ok({conv})");
            let _ = writeln!(out, "    }}");
        }
        out.push_str("}\n");
        out
    }

    fn top_struct(&mut self, name: &str, labels: &[Shape]) -> String {
        let mut out = self.struct_header(
            name,
            "Provided type for a labelled top shape (open-world data, §3.5).",
        );
        let mut used: Vec<String> = vec!["from_node".into(), "raw".into(), "node".into()];
        self.emit_top_methods(&mut out, &mut used, labels, "self.node.clone()");
        out.push_str("}\n");
        out
    }

    /// Emits one option-returning case method per label, reading the
    /// scrutinee from `base` (an expression producing a `Node`; may use
    /// `?`). Shared between top structs and §6.3-lifted `•` members.
    fn emit_top_methods(
        &mut self,
        out: &mut String,
        used: &mut Vec<String>,
        labels: &[Shape],
        base: &str,
    ) {
        for label in labels {
            let mut method = snake_case(&tfd_provider::naming::tag_member_name(label));
            while used.contains(&method) {
                method.push('_');
            }
            used.push(method.clone());
            let shape_static = self.shape_static(label);
            let ty = self.ty_of(label, &method);
            let conv = self.conv(label, "node", &method);
            // μ-references inside case shapes need the definitions
            // table: route the hasShape test through the env-aware
            // checker whenever one is in play.
            let case_call = if self.env.is_empty() {
                format!("({base}).case(&{shape_static})")
            } else {
                let env_static = self.env_static();
                format!("({base}).case_in(&{shape_static}, &{env_static})")
            };
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "    /// `Some` when the value matches the statically known case `{label}`."
            );
            let _ = writeln!(out, "    ///");
            let _ = writeln!(out, "    /// # Errors");
            let _ = writeln!(out, "    ///");
            let _ = writeln!(
                out,
                "    /// Fails only when the matched value cannot convert."
            );
            let _ = writeln!(
                out,
                "    pub fn {method}(&self) -> Result<Option<{ty}>, AccessError> {{"
            );
            let _ = writeln!(out, "        match {case_call} {{");
            let _ = writeln!(out, "            Some(node) => Ok(Some({conv})),");
            let _ = writeln!(out, "            None => Ok(None),");
            let _ = writeln!(out, "        }}");
            let _ = writeln!(out, "    }}");
        }
    }

    fn hetero_struct(&mut self, name: &str, cases: &[(Shape, Multiplicity)]) -> String {
        let mut out =
            self.struct_header(name, "Provided type for a heterogeneous collection (§6.4).");
        let mut used: Vec<String> = vec!["from_node".into(), "raw".into(), "node".into()];
        self.emit_hetero_methods(&mut out, &mut used, cases, "self.node.clone()");
        out.push_str("}\n");
        out
    }

    /// Emits one multiplicity-typed case method per §6.4 case, reading
    /// the collection from `base` (an expression producing a `Node`; may
    /// use `?`). Shared between hetero structs and §6.3-lifted `•`
    /// members.
    fn emit_hetero_methods(
        &mut self,
        out: &mut String,
        used: &mut Vec<String>,
        cases: &[(Shape, Multiplicity)],
        base: &str,
    ) {
        for (case_shape, multiplicity) in cases {
            let member = tfd_provider::naming::tag_member_name(case_shape);
            let mut method = snake_case(&member);
            while used.contains(&method) {
                method.push('_');
            }
            used.push(method.clone());
            let tag_static = self.tag_static(&tag_of(case_shape));
            let ty = self.ty_of(case_shape, &method);
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "    /// The `{member}` case (multiplicity `{multiplicity}`)."
            );
            let _ = writeln!(out, "    ///");
            let _ = writeln!(out, "    /// # Errors");
            let _ = writeln!(out, "    ///");
            let _ = writeln!(
                out,
                "    /// Fails when the number of matching elements violates the multiplicity."
            );
            match multiplicity {
                Multiplicity::One => {
                    let conv = self.conv(case_shape, "node", &method);
                    let _ = writeln!(
                        out,
                        "    pub fn {method}(&self) -> Result<{ty}, AccessError> {{"
                    );
                    let _ = writeln!(
                        out,
                        "        let node = ({base}).tagged_one({member:?}, &{tag_static})?;"
                    );
                    let _ = writeln!(out, "        Ok({conv})");
                    let _ = writeln!(out, "    }}");
                }
                Multiplicity::ZeroOrOne => {
                    let conv = self.conv(case_shape, "node", &method);
                    let _ = writeln!(
                        out,
                        "    pub fn {method}(&self) -> Result<Option<{ty}>, AccessError> {{"
                    );
                    let _ = writeln!(
                        out,
                        "        match ({base}).tagged_opt({member:?}, &{tag_static})? {{"
                    );
                    let _ = writeln!(out, "            Some(node) => Ok(Some({conv})),");
                    let _ = writeln!(out, "            None => Ok(None),");
                    let _ = writeln!(out, "        }}");
                    let _ = writeln!(out, "    }}");
                }
                Multiplicity::Many => {
                    let conv = self.conv(case_shape, "node", &method);
                    let _ = writeln!(
                        out,
                        "    pub fn {method}(&self) -> Result<Vec<{ty}>, AccessError> {{"
                    );
                    let _ = writeln!(out, "        let mut out = Vec::new();");
                    let _ = writeln!(
                        out,
                        "        for node in ({base}).tagged_many(&{tag_static})? {{"
                    );
                    let _ = writeln!(out, "            out.push({conv});");
                    let _ = writeln!(out, "        }}");
                    let _ = writeln!(out, "        Ok(out)");
                    let _ = writeln!(out, "    }}");
                }
            }
        }
    }

    /// Emits (once) a `LazyLock<ShapeEnv>` static holding the
    /// definitions table; returns its name.
    fn env_static(&mut self) -> String {
        let name = "SHAPE_ENV".to_owned();
        if self.env_static_emitted {
            return name;
        }
        self.env_static_emitted = true;
        let p = self.prefix.clone();
        let defs: Vec<String> = self
            .env
            .iter()
            .map(|(n, def)| {
                let fields: Vec<String> = def
                    .fields
                    .iter()
                    .map(|f| format!("({:?}, {})", f.name, self.shape_expr(&f.shape)))
                    .collect();
                format!(
                    "({p}::value::Name::new({:?}), {p}::shape::RecordShape::new({:?}, vec![{}]))",
                    n.as_str(),
                    def.name,
                    fields.join(", ")
                )
            })
            .collect();
        self.statics.push(format!(
            "static {name}: std::sync::LazyLock<{p}::shape::ShapeEnv> =\n    std::sync::LazyLock::new(|| {p}::shape::ShapeEnv::from_defs(vec![{}]));",
            defs.join(", ")
        ));
        name
    }

    /// Emits a `LazyLock<Shape>` static for a label shape; returns its name.
    fn shape_static(&mut self, shape: &Shape) -> String {
        self.static_count += 1;
        let name = format!("SHAPE_{}", self.static_count);
        let expr = self.shape_expr(shape);
        let p = &self.prefix;
        self.statics.push(format!(
            "static {name}: std::sync::LazyLock<{p}::shape::Shape> =\n    std::sync::LazyLock::new(|| {expr});"
        ));
        name
    }

    /// Emits a `LazyLock<Tag>` static; returns its name.
    fn tag_static(&mut self, tag: &Tag) -> String {
        self.static_count += 1;
        let name = format!("TAG_{}", self.static_count);
        let p = &self.prefix;
        let expr = match tag {
            Tag::Number => format!("{p}::shape::Tag::Number"),
            Tag::Bool => format!("{p}::shape::Tag::Bool"),
            Tag::Str => format!("{p}::shape::Tag::Str"),
            Tag::Name(n) => format!("{p}::shape::Tag::Name({p}::value::Name::new({n:?}))"),
            Tag::Collection => format!("{p}::shape::Tag::Collection"),
            Tag::Nullable => format!("{p}::shape::Tag::Nullable"),
            Tag::Any => format!("{p}::shape::Tag::Any"),
            Tag::Null => format!("{p}::shape::Tag::Null"),
            Tag::Bottom => format!("{p}::shape::Tag::Bottom"),
        };
        self.statics.push(format!(
            "static {name}: std::sync::LazyLock<{p}::shape::Tag> =\n    std::sync::LazyLock::new(|| {expr});"
        ));
        name
    }

    /// A Rust expression constructing the shape (for runtime hasShape
    /// checks in generated code).
    fn shape_expr(&self, shape: &Shape) -> String {
        let p = &self.prefix;
        match shape {
            Shape::Bottom => format!("{p}::shape::Shape::Bottom"),
            Shape::Null => format!("{p}::shape::Shape::Null"),
            Shape::Bool => format!("{p}::shape::Shape::Bool"),
            Shape::Int => format!("{p}::shape::Shape::Int"),
            Shape::Float => format!("{p}::shape::Shape::Float"),
            Shape::String => format!("{p}::shape::Shape::String"),
            Shape::Bit => format!("{p}::shape::Shape::Bit"),
            Shape::Date => format!("{p}::shape::Shape::Date"),
            Shape::Record(r) => {
                let fields: Vec<String> = r
                    .fields
                    .iter()
                    .map(|f| format!("({:?}, {})", f.name, self.shape_expr(&f.shape)))
                    .collect();
                format!(
                    "{p}::shape::Shape::record({:?}, vec![{}])",
                    r.name,
                    fields.join(", ")
                )
            }
            Shape::Nullable(inner) => format!("{}.ceil()", self.shape_expr(inner)),
            Shape::List(el) => {
                format!("{p}::shape::Shape::list({})", self.shape_expr(el))
            }
            Shape::Top(labels) => {
                let items: Vec<String> = labels.iter().map(|l| self.shape_expr(l)).collect();
                format!("{p}::shape::Shape::Top(vec![{}])", items.join(", "))
            }
            Shape::HeteroList(cases) => {
                let items: Vec<String> = cases
                    .iter()
                    .map(|(s, m)| {
                        let m_expr = match m {
                            Multiplicity::One => format!("{p}::shape::Multiplicity::One"),
                            Multiplicity::ZeroOrOne => {
                                format!("{p}::shape::Multiplicity::ZeroOrOne")
                            }
                            Multiplicity::Many => format!("{p}::shape::Multiplicity::Many"),
                        };
                        format!("({}, {m_expr})", self.shape_expr(s))
                    })
                    .collect();
                format!("{p}::shape::Shape::HeteroList(vec![{}])", items.join(", "))
            }
            Shape::Ref(n) => {
                format!(
                    "{p}::shape::Shape::Ref({p}::value::Name::new({:?}))",
                    n.as_str()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(shape: &Shape) -> String {
        generate(shape, "m", "Root", &CodegenOptions::default())
    }

    #[test]
    fn record_struct_and_accessors() {
        let shape = Shape::record(
            tfd_value::BODY_NAME,
            [("name", Shape::String), ("age", Shape::Float.ceil())],
        );
        let code = gen(&shape);
        assert!(code.contains("pub struct Root"), "{code}");
        assert!(code.contains("pub fn name(&self) -> Result<String, AccessError>"));
        assert!(code.contains("pub fn age(&self) -> Result<Option<f64>, AccessError>"));
        assert!(code.contains("self.node.field(\"name\")"));
    }

    #[test]
    fn named_records_use_their_names() {
        let shape = Shape::record("person", [("id", Shape::Int)]);
        let code = gen(&shape);
        assert!(code.contains("pub struct Person"));
        assert!(code.contains("pub fn id(&self) -> Result<i64, AccessError>"));
    }

    #[test]
    fn nested_structs_are_emitted_once() {
        let inner = Shape::record("point", [("x", Shape::Int)]);
        let shape = Shape::record("pair", [("a", inner.clone()), ("b", inner)]);
        let code = gen(&shape);
        assert_eq!(code.matches("pub struct Point").count(), 1);
    }

    #[test]
    fn lists_emit_loops() {
        let shape = Shape::list(Shape::Int);
        let code = gen(&shape);
        assert!(code.contains("-> Result<Vec<i64>, AccessError>"));
        assert!(code.contains("elements()?"));
    }

    #[test]
    fn keywords_are_escaped() {
        let shape = Shape::record("r", [("type", Shape::String), ("fn", Shape::Int)]);
        let code = gen(&shape);
        assert!(code.contains("pub fn type_"));
        assert!(code.contains("pub fn fn_"));
        // ... while the data lookup keeps the original name:
        assert!(code.contains("self.node.field(\"type\")"));
    }

    #[test]
    fn method_collisions_get_suffixes() {
        let shape = Shape::record("r", [("a b", Shape::Int), ("a_b", Shape::Int)]);
        let code = gen(&shape);
        assert!(code.contains("pub fn a_b(&self)"));
        assert!(code.contains("pub fn a_b_(&self)"));
    }

    #[test]
    fn top_struct_has_case_methods() {
        let shape = Shape::Top(vec![
            Shape::Int,
            Shape::record("heading", [("x", Shape::Int)]),
        ]);
        let code = gen(&shape);
        assert!(code.contains("pub fn number(&self) -> Result<Option<i64>, AccessError>"));
        assert!(code.contains("pub fn heading(&self) -> Result<Option<Heading>, AccessError>"));
        assert!(code.contains("SHAPE_1"));
        assert!(code.contains("LazyLock"));
    }

    #[test]
    fn hetero_struct_multiplicity_signatures() {
        let shape = Shape::HeteroList(vec![
            (
                Shape::record(tfd_value::BODY_NAME, [("pages", Shape::Int)]),
                Multiplicity::One,
            ),
            (Shape::list(Shape::Int), Multiplicity::ZeroOrOne),
            (Shape::Bool, Multiplicity::Many),
        ]);
        let code = gen(&shape);
        assert!(code.contains("pub fn record(&self) -> Result<Record, AccessError>"));
        assert!(code.contains("pub fn array(&self) -> Result<Option<Vec<i64>>, AccessError>"));
        assert!(code.contains("pub fn boolean(&self) -> Result<Vec<bool>, AccessError>"));
        assert!(code.contains("tagged_one(\"Record\""));
    }

    #[test]
    fn format_functions_are_emitted() {
        let shape = Shape::record(tfd_value::BODY_NAME, [("a", Shape::Int)]);
        let opts = CodegenOptions {
            format: Some(SourceFormat::Json),
            sample_text: Some("{\"a\": 1}".to_owned()),
            ..CodegenOptions::default()
        };
        let code = generate(&shape, "m", "Root", &opts);
        assert!(code.contains("pub fn parse(text: &str)"));
        assert!(code.contains("pub fn load(path:"));
        assert!(code.contains("pub const SAMPLE: &str"));
        assert!(code.contains("pub fn sample() -> Root"));
        assert!(code.contains("::json::parse_value(text)?"));
    }

    #[test]
    fn generation_is_deterministic() {
        let shape = Shape::record(
            "r",
            [
                ("a", Shape::Top(vec![Shape::Int, Shape::String])),
                ("b", Shape::list(Shape::record("c", [("d", Shape::Date)]))),
            ],
        );
        assert_eq!(gen(&shape), gen(&shape));
    }

    #[test]
    fn custom_crate_prefix() {
        let shape = Shape::record("r", [("a", Shape::Int)]);
        let opts = CodegenOptions {
            crate_prefix: "crate".to_owned(),
            ..Default::default()
        };
        let code = generate(&shape, "m", "Root", &opts);
        assert!(code.contains("use crate::runtime::{AccessError, Node};"));
        assert!(!code.contains("::types_from_data"));
    }

    fn ul_li_global() -> tfd_core::GlobalShape {
        use tfd_core::{RecordShape, ShapeEnv};
        let env = ShapeEnv::from_defs([
            (
                Name::new("ul"),
                RecordShape::new(
                    "ul",
                    [
                        ("id", Shape::Int),
                        ("item", Shape::list(Shape::Ref("li".into()))),
                    ],
                ),
            ),
            (
                Name::new("li"),
                RecordShape::new("li", [("sub", Shape::Ref("ul".into()).ceil())]),
            ),
        ]);
        tfd_core::GlobalShape {
            root: Shape::Ref("ul".into()),
            env,
        }
    }

    #[test]
    fn global_emits_one_struct_per_definition_topologically() {
        let g = ul_li_global();
        let code = generate_global(&g, "m", "Root", &CodegenOptions::default());
        assert_eq!(code.matches("pub struct Ul").count(), 1, "{code}");
        assert_eq!(code.matches("pub struct Li").count(), 1, "{code}");
        // Dependencies first: the root's class (Ul) depends on Li, so Li
        // is emitted before Ul (the cycle is broken at the back edge).
        let li_pos = code.find("pub struct Li").unwrap();
        let ul_pos = code.find("pub struct Ul").unwrap();
        assert!(li_pos < ul_pos, "definitions must be topologically ordered");
        // Mutually recursive accessors, typed by each other's structs:
        assert!(
            code.contains("pub fn item(&self) -> Result<Vec<Li>, AccessError>"),
            "{code}"
        );
        assert!(
            code.contains("pub fn sub(&self) -> Result<Option<Ul>, AccessError>"),
            "{code}"
        );
        // The root conversion produces the Ul struct:
        assert!(code.contains("-> Result<Ul, AccessError>"), "{code}");
        // Deterministic:
        assert_eq!(
            code,
            generate_global(&g, "m", "Root", &CodegenOptions::default())
        );
    }

    #[test]
    fn global_case_shapes_check_through_the_env_static() {
        use tfd_core::{RecordShape, ShapeEnv};
        // A labelled top whose case is a μ-reference: hasShape needs the
        // definitions table at runtime.
        let env = ShapeEnv::from_defs([(
            Name::new("div"),
            RecordShape::new("div", [("child", Shape::Ref("div".into()).ceil())]),
        )]);
        let g = tfd_core::GlobalShape {
            root: Shape::Top(vec![Shape::Int, Shape::Ref("div".into())]),
            env,
        };
        let code = generate_global(&g, "m", "Root", &CodegenOptions::default());
        assert!(code.contains("static SHAPE_ENV"), "{code}");
        assert!(code.contains("ShapeEnv::from_defs"), "{code}");
        assert!(code.contains("case_in(&SHAPE_"), "{code}");
        assert!(
            !code.contains(").case(&"),
            "plain case must not be used: {code}"
        );
        assert!(code.contains("Shape::Ref("), "{code}");
    }

    #[test]
    fn plain_generate_never_emits_the_env_static() {
        let shape = Shape::Top(vec![Shape::Int, Shape::record("r", [("a", Shape::Int)])]);
        let code = gen(&shape);
        assert!(!code.contains("SHAPE_ENV"), "{code}");
        assert!(code.contains(").case(&SHAPE_"), "{code}");
    }

    #[test]
    fn shape_expr_roundtrip_forms() {
        // The emitted shape expressions mention every constructor.
        let shape = Shape::Top(vec![
            Shape::record(
                "r",
                [("a", Shape::Int.ceil()), ("b", Shape::list(Shape::Date))],
            ),
            Shape::String,
        ]);
        let code = gen(&shape);
        assert!(code.contains("Shape::record(\"r\""));
        assert!(code.contains(".ceil()"));
        assert!(code.contains("Shape::list("));
    }
}
