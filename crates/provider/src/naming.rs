//! Idiomatic naming (§6.3).
//!
//! > "Class members are renamed to follow PascalCase naming convention,
//! > when a collision occurs, a number is appended to the end as in
//! > PascalCase2. The provided implementation performs the lookup using
//! > the original name."
//!
//! Plus name sources for members generated from labelled-top labels and
//! heterogeneous-collection cases: the paper's World Bank example calls
//! them `Record` and `Array` (§2.3), and the XML example derives
//! `Heading`/`Paragraph`/`Image` from element names (§2.2).

use tfd_core::{tag_of, Shape, Tag};
use tfd_value::BODY_NAME;

/// Converts an arbitrary field/element name to PascalCase.
///
/// Splits on non-alphanumeric separators and camelCase boundaries;
/// leading digits are prefixed with `N` so the result is a valid
/// identifier.
///
/// ```
/// use tfd_provider::naming::pascal_case;
/// assert_eq!(pascal_case("temp_min"), "TempMin");
/// assert_eq!(pascal_case("user-name"), "UserName");
/// assert_eq!(pascal_case("camelCase"), "CamelCase");
/// assert_eq!(pascal_case("2fast"), "N2fast");
/// assert_eq!(pascal_case(""), "Value");
/// ```
pub fn pascal_case(name: &str) -> String {
    let mut words: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut prev_lower = false;
    for c in name.chars() {
        if c.is_alphanumeric() {
            // A lower→upper transition starts a new word (camelCase).
            if c.is_uppercase() && prev_lower && !current.is_empty() {
                words.push(std::mem::take(&mut current));
            }
            prev_lower = c.is_lowercase() || c.is_ascii_digit();
            current.push(c);
        } else {
            prev_lower = false;
            if !current.is_empty() {
                words.push(std::mem::take(&mut current));
            }
        }
    }
    if !current.is_empty() {
        words.push(current);
    }
    let mut out = String::new();
    for w in words {
        let mut chars = w.chars();
        if let Some(first) = chars.next() {
            out.extend(first.to_uppercase());
            out.push_str(chars.as_str());
        }
    }
    if out.is_empty() {
        return "Value".to_owned();
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, 'N');
    }
    out
}

/// The §6.3 member name for a record field: PascalCase, with the special
/// `•` body field renamed to `Value` ("Remaining members named • in the
/// provided classes … are renamed to Value").
pub fn member_name(field: &str) -> String {
    if field == BODY_NAME {
        "Value".to_owned()
    } else {
        pascal_case(field)
    }
}

/// Member name for a labelled-top label or heterogeneous-collection case,
/// derived from the shape tag: records use their name (`•` reads as
/// `Record`, matching the paper's World Bank type), collections are
/// `Array`, primitives use their type name.
pub fn tag_member_name(shape: &Shape) -> String {
    match tag_of(shape) {
        Tag::Name(n) if n == BODY_NAME => "Record".to_owned(),
        Tag::Name(n) => pascal_case(&n),
        Tag::Collection => "Array".to_owned(),
        Tag::Number => "Number".to_owned(),
        Tag::Bool => "Boolean".to_owned(),
        Tag::Str => "String".to_owned(),
        Tag::Nullable => "Optional".to_owned(),
        Tag::Any => "Any".to_owned(),
        Tag::Null | Tag::Bottom => "Value".to_owned(),
    }
}

/// Allocates collision-free member names: the first use of a name is
/// kept, later uses get `2`, `3`, … appended ("PascalCase2").
#[derive(Debug, Default)]
pub struct MemberNamer {
    used: Vec<String>,
}

impl MemberNamer {
    /// Creates a namer with no used names.
    pub fn new() -> MemberNamer {
        MemberNamer::default()
    }

    /// Returns `base` or `base2`, `base3`, … — whichever is free.
    pub fn fresh(&mut self, base: &str) -> String {
        if !self.used.iter().any(|u| u == base) {
            self.used.push(base.to_owned());
            return base.to_owned();
        }
        let mut n = 2usize;
        loop {
            let candidate = format!("{base}{n}");
            if !self.used.iter().any(|u| u == &candidate) {
                self.used.push(candidate.clone());
                return candidate;
            }
            n += 1;
        }
    }
}

/// Allocates fresh class names across a whole provider run.
#[derive(Debug, Default)]
pub struct ClassNamer {
    used: Vec<String>,
}

impl ClassNamer {
    /// Creates a namer with no used names.
    pub fn new() -> ClassNamer {
        ClassNamer::default()
    }

    /// Returns a fresh class name based on `hint` (PascalCased; the
    /// anonymous `•` hint becomes `Entity`, following the paper's §2.1
    /// provided type).
    pub fn fresh(&mut self, hint: &str) -> String {
        let base = if hint == BODY_NAME || hint.is_empty() {
            "Entity".to_owned()
        } else {
            pascal_case(hint)
        };
        if !self.used.iter().any(|u| u == &base) {
            self.used.push(base.clone());
            return base;
        }
        let mut n = 2usize;
        loop {
            let candidate = format!("{base}{n}");
            if !self.used.iter().any(|u| u == &candidate) {
                self.used.push(candidate.clone());
                return candidate;
            }
            n += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pascal_case_varieties() {
        assert_eq!(pascal_case("name"), "Name");
        assert_eq!(pascal_case("temp_min"), "TempMin");
        assert_eq!(pascal_case("temp-max"), "TempMax");
        assert_eq!(pascal_case("TEMP"), "TEMP");
        assert_eq!(pascal_case("camelCase"), "CamelCase");
        assert_eq!(pascal_case("with space"), "WithSpace");
        assert_eq!(pascal_case("dotted.name"), "DottedName");
        assert_eq!(pascal_case("a"), "A");
    }

    #[test]
    fn pascal_case_handles_digits_and_empty() {
        assert_eq!(pascal_case("2nd"), "N2nd");
        assert_eq!(pascal_case("x1"), "X1");
        assert_eq!(pascal_case(""), "Value");
        assert_eq!(pascal_case("---"), "Value");
    }

    #[test]
    fn member_name_renames_bullet_to_value() {
        assert_eq!(member_name(BODY_NAME), "Value");
        assert_eq!(member_name("temp"), "Temp");
    }

    #[test]
    fn tag_member_names_match_paper_examples() {
        // §2.3 World Bank: the record and array cases.
        let rec = Shape::record(BODY_NAME, [("pages", Shape::Int)]);
        assert_eq!(tag_member_name(&rec), "Record");
        assert_eq!(tag_member_name(&Shape::list(Shape::Int)), "Array");
        // §2.2 XML: element records use their element names.
        let heading = Shape::record("heading", [("x", Shape::Int)]);
        assert_eq!(tag_member_name(&heading), "Heading");
        assert_eq!(tag_member_name(&Shape::Int), "Number");
        assert_eq!(tag_member_name(&Shape::String), "String");
        assert_eq!(tag_member_name(&Shape::Bool), "Boolean");
    }

    #[test]
    fn member_namer_numbers_collisions() {
        let mut n = MemberNamer::new();
        assert_eq!(n.fresh("Name"), "Name");
        assert_eq!(n.fresh("Name"), "Name2");
        assert_eq!(n.fresh("Name"), "Name3");
        assert_eq!(n.fresh("Other"), "Other");
    }

    #[test]
    fn class_namer_entity_for_anonymous() {
        let mut n = ClassNamer::new();
        assert_eq!(n.fresh(BODY_NAME), "Entity");
        assert_eq!(n.fresh(BODY_NAME), "Entity2");
        assert_eq!(n.fresh("person"), "Person");
        assert_eq!(n.fresh("person"), "Person2");
    }
}
