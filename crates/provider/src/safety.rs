//! The relative-safety harness (Lemma 2 / Theorem 3).
//!
//! [`deep_eval`] checks the conclusion of Lemma 2 mechanically: the
//! provided conversion applied to an input reduces to a value, and *all*
//! members of every provided class instance reachable from it (through
//! options, lists and nested classes) also reduce to values.
//!
//! Theorem 3 then says: if `S(d′) ⊑ S(d1, …, dn)` for the samples the
//! provider saw, `deep_eval` succeeds on `d′`. The integration test suite
//! (`tests/relative_safety.rs`) instantiates this with both hand-built
//! and property-generated documents, and checks the negative direction:
//! inputs outside the preference relation are *allowed* to fail.

use crate::mapping::Provided;
use tfd_foo::{run_with_fuel, Classes, Expr, Outcome, StuckReason, Type};

/// How a deep evaluation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SafetyFailure {
    /// Some member access got stuck — the model of a runtime exception.
    Stuck {
        /// Dotted path of members that led to the failure.
        path: String,
        /// Why evaluation got stuck.
        reason: StuckReason,
    },
    /// The §6.5 exception value surfaced.
    Exception {
        /// Dotted path of members that led to the failure.
        path: String,
    },
    /// Evaluation did not finish within the step budget.
    OutOfFuel {
        /// Dotted path of members that led to the failure.
        path: String,
    },
}

impl std::fmt::Display for SafetyFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SafetyFailure::Stuck { path, reason } => {
                write!(f, "stuck at {path}: {reason}")
            }
            SafetyFailure::Exception { path } => write!(f, "exception at {path}"),
            SafetyFailure::OutOfFuel { path } => write!(f, "out of fuel at {path}"),
        }
    }
}

/// Statistics from a successful deep evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeepEvalReport {
    /// Total member accesses evaluated.
    pub members_evaluated: usize,
    /// Total objects (class instances) visited.
    pub objects_visited: usize,
}

/// Evaluates `conv d` and then every member of every reachable provided
/// object, transitively.
///
/// # Errors
///
/// Returns the first [`SafetyFailure`] encountered, with the member path
/// that triggered it.
pub fn deep_eval(
    provided: &Provided,
    d: &tfd_value::Value,
) -> Result<DeepEvalReport, SafetyFailure> {
    let mut report = DeepEvalReport::default();
    let root = force(&provided.classes, &provided.convert(d), "<root>")?;
    explore(
        &provided.classes,
        &root,
        &provided.ty,
        "<root>",
        &mut report,
    )?;
    Ok(report)
}

fn force(classes: &Classes, e: &Expr, path: &str) -> Result<Expr, SafetyFailure> {
    match run_with_fuel(classes, e, tfd_foo::DEFAULT_FUEL) {
        Outcome::Value(v) => Ok(v),
        Outcome::Stuck(reason) => Err(SafetyFailure::Stuck {
            path: path.to_owned(),
            reason,
        }),
        Outcome::Exception => Err(SafetyFailure::Exception {
            path: path.to_owned(),
        }),
        Outcome::OutOfFuel => Err(SafetyFailure::OutOfFuel {
            path: path.to_owned(),
        }),
    }
}

fn explore(
    classes: &Classes,
    value: &Expr,
    ty: &Type,
    path: &str,
    report: &mut DeepEvalReport,
) -> Result<(), SafetyFailure> {
    match ty {
        Type::Class(c) => {
            report.objects_visited += 1;
            let class = classes
                .get(c)
                .unwrap_or_else(|| panic!("provided type references unknown class {c}"));
            for member in &class.members {
                let member_path = format!("{path}.{}", member.name);
                let accessed = Expr::member(value.clone(), member.name.clone());
                report.members_evaluated += 1;
                let v = force(classes, &accessed, &member_path)?;
                explore(classes, &v, &member.ty, &member_path, report)?;
            }
            Ok(())
        }
        Type::Option(inner) => match value {
            Expr::SomeLit(v) => explore(classes, v, inner, &format!("{path}?"), report),
            _ => Ok(()),
        },
        Type::List(inner) => {
            let mut cursor = value;
            let mut index = 0usize;
            while let Expr::Cons(head, tail) = cursor {
                explore(classes, head, inner, &format!("{path}[{index}]"), report)?;
                cursor = tail;
                index += 1;
            }
            Ok(())
        }
        // Primitives, Data and functions need no further exploration.
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{provide, provide_idiomatic};
    use tfd_core::{infer_with, InferOptions};
    use tfd_value::{arr, json_rec, Value};

    #[test]
    fn deep_eval_succeeds_on_the_sample_itself() {
        let sample = arr([
            json_rec([("name", Value::str("Jan")), ("age", Value::Int(25))]),
            json_rec([("name", Value::str("Tomas"))]),
        ]);
        let shape = infer_with(&sample, &InferOptions::formal());
        let p = provide(&shape);
        let report = deep_eval(&p, &sample).unwrap();
        // Two records, each with two members (name, age).
        assert_eq!(report.objects_visited, 2);
        assert_eq!(report.members_evaluated, 4);
    }

    #[test]
    fn deep_eval_fails_on_incompatible_input() {
        let sample = json_rec([("age", Value::Int(25))]);
        let shape = infer_with(&sample, &InferOptions::formal());
        let p = provide(&shape);
        // An input whose age is a string is NOT a subshape: stuck.
        let bad = json_rec([("age", Value::str("old"))]);
        let failure = deep_eval(&p, &bad).unwrap_err();
        match failure {
            SafetyFailure::Stuck { path, .. } => assert_eq!(path, "<root>.age"),
            other => panic!("expected stuck, got {other}"),
        }
    }

    #[test]
    fn deep_eval_reports_nested_paths() {
        let sample = json_rec([("inner", json_rec([("x", Value::Int(1))]))]);
        let shape = infer_with(&sample, &InferOptions::formal());
        let p = provide(&shape);
        let bad = json_rec([("inner", json_rec([("x", Value::Bool(true))]))]);
        let failure = deep_eval(&p, &bad).unwrap_err();
        match failure {
            SafetyFailure::Stuck { path, .. } => assert_eq!(path, "<root>.inner.x"),
            other => panic!("expected stuck, got {other}"),
        }
    }

    #[test]
    fn deep_eval_walks_idiomatic_types_too() {
        let sample = arr([json_rec([
            ("temp", Value::Float(5.0)),
            ("city", Value::str("Prague")),
        ])]);
        let shape = infer_with(&sample, &InferOptions::json());
        let p = provide_idiomatic(&shape, "Weather");
        assert!(deep_eval(&p, &sample).is_ok());
    }

    #[test]
    fn subshape_inputs_with_fewer_optional_fields_pass() {
        // Theorem 3's central case: the sample makes age optional, so an
        // input without age works.
        let samples = [
            json_rec([("name", Value::str("a")), ("age", Value::Int(1))]),
            json_rec([("name", Value::str("b"))]),
        ];
        let shape = tfd_core::infer_many(&samples, &InferOptions::formal());
        let p = provide(&shape);
        let input = json_rec([("name", Value::str("c"))]);
        assert!(deep_eval(&p, &input).is_ok());
        // And an input with a *smaller numeric type* (int where the
        // sample had float) also passes:
        let samples2 = [json_rec([("v", Value::Float(1.5))])];
        let shape2 = tfd_core::infer_many(&samples2, &InferOptions::formal());
        let p2 = provide(&shape2);
        assert!(deep_eval(&p2, &json_rec([("v", Value::Int(3))])).is_ok());
    }

    #[test]
    fn extra_fields_in_input_are_ignored() {
        let sample = json_rec([("a", Value::Int(1))]);
        let shape = infer_with(&sample, &InferOptions::formal());
        let p = provide(&shape);
        let wider = json_rec([("a", Value::Int(2)), ("b", Value::str("extra"))]);
        assert!(deep_eval(&p, &wider).is_ok());
    }
}
