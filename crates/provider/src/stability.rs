//! Stability of inference (Remark 1, §6.5).
//!
//! > "When a new sample is added, the program can be modified to run as
//! > before with only small local changes. […] Such e′ is obtained by
//! > transforming sub-expressions of e using one of the following
//! > translation rules:
//! >   1. C[e] to C[match e with Some(v) → v | None → exn]
//! >   2. C[e] to C[e.M] where M = tagof(σ) for some σ
//! >   3. C[e] to C[int(e)]"
//!
//! We model user code as an [`AccessProgram`] — a chain of member
//! accesses, option unwraps and list indexing against a provided type
//! (the shape of real client code like `item.Age` or
//! `root.Doc.[0].Heading`). [`apply`] compiles a program to a Foo
//! expression; [`migrate`] mechanically rewrites a program written
//! against `⟦S(d1, …, dn)⟧` into one for `⟦S(d1, …, dn, dn+1)⟧` by
//! inserting exactly the three transformations above.
//!
//! The integration suite (`tests/stability.rs`) verifies the Remark's
//! conclusion: whenever the original program evaluates to a value on some
//! input, the migrated program evaluates to the same value under the new
//! provider.

use crate::naming::tag_member_name;
use tfd_core::{is_preferred, is_preferred_global, tag_of, GlobalShape, Shape, ShapeEnv};
use tfd_foo::Expr;

/// One step of client code against a provided type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessStep {
    /// `.field` — member access on a provided record class (raw-mode
    /// member names are the field names).
    Member(String),
    /// Transformation 1: `match e with Some(v) → v | None → exn`.
    Unwrap,
    /// Index into a provided list (`exn` when out of range).
    Nth(usize),
    /// Transformation 2 (+1): select a labelled-top member `.M` where
    /// `M = tagof(σ)` and unwrap its option.
    Case(String),
    /// Transformation 3: `int(e)`.
    AsInt,
}

/// A chain of [`AccessStep`]s — the model of user code.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessProgram {
    /// The steps, applied left to right.
    pub steps: Vec<AccessStep>,
}

impl AccessProgram {
    /// Builds a program from steps.
    pub fn new(steps: impl IntoIterator<Item = AccessStep>) -> AccessProgram {
        AccessProgram {
            steps: steps.into_iter().collect(),
        }
    }

    /// Convenience: a chain of plain member accesses.
    pub fn members<'a>(names: impl IntoIterator<Item = &'a str>) -> AccessProgram {
        AccessProgram::new(names.into_iter().map(|n| AccessStep::Member(n.to_owned())))
    }
}

/// Compiles a program applied to a root expression into a Foo expression.
pub fn apply(program: &AccessProgram, root: Expr) -> Expr {
    let mut e = root;
    for step in &program.steps {
        e = apply_step(step, e);
    }
    e
}

fn unwrap_expr(e: Expr) -> Expr {
    Expr::MatchOption {
        scrutinee: Box::new(e),
        binder: "v".into(),
        some_branch: Box::new(Expr::var("v")),
        none_branch: Box::new(Expr::Exn),
    }
}

fn apply_step(step: &AccessStep, e: Expr) -> Expr {
    match step {
        AccessStep::Member(name) => Expr::member(e, name.clone()),
        AccessStep::Unwrap => unwrap_expr(e),
        AccessStep::Nth(i) => {
            // i tail-matches followed by a head-match; exn on a short list.
            let mut cur = e;
            for _ in 0..*i {
                cur = Expr::MatchList {
                    scrutinee: Box::new(cur),
                    head: "h".into(),
                    tail: "t".into(),
                    cons_branch: Box::new(Expr::var("t")),
                    nil_branch: Box::new(Expr::Exn),
                };
            }
            Expr::MatchList {
                scrutinee: Box::new(cur),
                head: "h".into(),
                tail: "t".into(),
                cons_branch: Box::new(Expr::var("h")),
                nil_branch: Box::new(Expr::Exn),
            }
        }
        AccessStep::Case(name) => unwrap_expr(Expr::member(e, name.clone())),
        AccessStep::AsInt => Expr::ToInt(Box::new(e)),
    }
}

/// Errors from [`migrate`]: the program does not fit the old shape, or
/// the shapes are not related by adding samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrateError(pub String);

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot migrate access program: {}", self.0)
    }
}

impl std::error::Error for MigrateError {}

/// Rewrites a program written against `old` (the provided type for the
/// original samples) into one for `new` (after adding a sample), using
/// only the three Remark 1 transformations.
///
/// # Errors
///
/// Returns [`MigrateError`] when the program does not navigate `old`, or
/// when `old ⋢ new` in a way adding samples cannot produce.
pub fn migrate(
    program: &AccessProgram,
    old: &Shape,
    new: &Shape,
) -> Result<AccessProgram, MigrateError> {
    if !is_preferred(old, new) {
        return Err(MigrateError(format!(
            "old shape {old} is not preferred over new shape {new} — \
             adding samples only generalizes"
        )));
    }
    let mut out = Vec::new();
    let mut cur_old = old.clone();
    let mut cur_new = new.clone();

    for step in &program.steps {
        reconcile(&cur_old, &mut cur_new, &mut out)?;
        match step {
            AccessStep::Member(name) => {
                let old_field = record_field(&cur_old, name)?;
                let new_field = record_field(&cur_new, name)?;
                out.push(AccessStep::Member(name.clone()));
                cur_old = old_field;
                cur_new = new_field;
            }
            AccessStep::Unwrap => match (&cur_old, &cur_new) {
                (Shape::Nullable(o), Shape::Nullable(n)) => {
                    let (o, n) = ((**o).clone(), (**n).clone());
                    out.push(AccessStep::Unwrap);
                    cur_old = o;
                    cur_new = n;
                }
                // A preceding Case insertion (transformation 2) already
                // unwrapped the option on the new side — the label member
                // returns `option τ` and Case compiles to member+unwrap —
                // so the old program's explicit unwrap is dropped.
                (Shape::Nullable(o), _) => {
                    cur_old = (**o).clone();
                }
                _ => {
                    return Err(MigrateError(format!(
                        "unwrap applied at non-nullable shape {cur_old}"
                    )))
                }
            },
            AccessStep::Nth(i) => {
                let o = list_element(&cur_old)?;
                let n = list_element(&cur_new)?;
                out.push(AccessStep::Nth(*i));
                cur_old = o;
                cur_new = n;
            }
            AccessStep::Case(name) => {
                let o = top_label(&cur_old, name)?;
                let n = top_label(&cur_new, name)?;
                out.push(AccessStep::Case(name.clone()));
                cur_old = o;
                cur_new = n;
            }
            AccessStep::AsInt => {
                out.push(AccessStep::AsInt);
                cur_old = Shape::Int;
                cur_new = Shape::Int;
            }
        }
    }
    // Leaf reconciliation: unwrap/select as needed, then transformation 3
    // when int generalized to float.
    reconcile(&cur_old, &mut cur_new, &mut out)?;
    if cur_old == Shape::Int && cur_new == Shape::Float {
        out.push(AccessStep::AsInt);
    }
    Ok(AccessProgram { steps: out })
}

/// μ-aware [`migrate`]: rewrites a program written against the old
/// *global* shape into one for the new global shape, resolving each
/// side's [`Shape::Ref`] back-references in its **own** environment.
///
/// The finite-tree `migrate` cannot follow a navigation through a
/// recursion point — the inline rendering cuts recursive classes to a
/// `↺name` reference, and a member access on `↺div` has nowhere to go.
/// Here the cursors unfold references lazily (one definitions-table
/// lookup per navigated record level), so programs that walk arbitrarily
/// deep into recursive providers migrate with the same three Remark 1
/// transformations. `tests/stability.rs` holds the recursive-provider
/// regression.
///
/// # Errors
///
/// Returns [`MigrateError`] when the program does not navigate `old`, or
/// when `old ⋢ new` under [`is_preferred_global`] in a way adding
/// samples cannot produce.
pub fn migrate_global(
    program: &AccessProgram,
    old: &GlobalShape,
    new: &GlobalShape,
) -> Result<AccessProgram, MigrateError> {
    if !is_preferred_global(old, new) {
        return Err(MigrateError(format!(
            "old global shape {old} is not preferred over new global shape {new} — \
             adding samples only generalizes"
        )));
    }
    let mut out = Vec::new();
    let mut cur_old = resolve(old.root.clone(), &old.env);
    let mut cur_new = resolve(new.root.clone(), &new.env);

    for step in &program.steps {
        reconcile_global(&cur_old, &mut cur_new, &old.env, &new.env, &mut out)?;
        match step {
            AccessStep::Member(name) => {
                let old_field = resolve(record_field(&cur_old, name)?, &old.env);
                let new_field = resolve(record_field(&cur_new, name)?, &new.env);
                out.push(AccessStep::Member(name.clone()));
                cur_old = old_field;
                cur_new = new_field;
            }
            AccessStep::Unwrap => match (&cur_old, &cur_new) {
                (Shape::Nullable(o), Shape::Nullable(n)) => {
                    let (o, n) = ((**o).clone(), (**n).clone());
                    out.push(AccessStep::Unwrap);
                    cur_old = resolve(o, &old.env);
                    cur_new = resolve(n, &new.env);
                }
                // A preceding Case insertion already unwrapped the new
                // side (see `migrate`); the explicit unwrap is dropped.
                (Shape::Nullable(o), _) => {
                    cur_old = resolve((**o).clone(), &old.env);
                }
                _ => {
                    return Err(MigrateError(format!(
                        "unwrap applied at non-nullable shape {cur_old}"
                    )))
                }
            },
            AccessStep::Nth(i) => {
                let o = resolve(list_element(&cur_old)?, &old.env);
                let n = resolve(list_element(&cur_new)?, &new.env);
                out.push(AccessStep::Nth(*i));
                cur_old = o;
                cur_new = n;
            }
            AccessStep::Case(name) => {
                let o = resolve(top_label(&cur_old, name)?, &old.env);
                let n = resolve(top_label(&cur_new, name)?, &new.env);
                out.push(AccessStep::Case(name.clone()));
                cur_old = o;
                cur_new = n;
            }
            AccessStep::AsInt => {
                out.push(AccessStep::AsInt);
                cur_old = Shape::Int;
                cur_new = Shape::Int;
            }
        }
    }
    reconcile_global(&cur_old, &mut cur_new, &old.env, &new.env, &mut out)?;
    if cur_old == Shape::Int && cur_new == Shape::Float {
        out.push(AccessStep::AsInt);
    }
    Ok(AccessProgram { steps: out })
}

/// Unfolds a top-level μ-reference through its environment (one level;
/// nested references unfold lazily as navigation reaches them). Dangling
/// references stay as they are.
fn resolve(shape: Shape, env: &ShapeEnv) -> Shape {
    match shape {
        Shape::Ref(n) => match env.get(n) {
            Some(def) => Shape::Record(def.clone()),
            None => Shape::Ref(n),
        },
        other => other,
    }
}

/// [`reconcile`] for global cursors: labels inside a new-side top may
/// themselves be μ-references, so tag computation and case naming
/// resolve through the new environment.
fn reconcile_global(
    cur_old: &Shape,
    cur_new: &mut Shape,
    old_env: &ShapeEnv,
    new_env: &ShapeEnv,
    out: &mut Vec<AccessStep>,
) -> Result<(), MigrateError> {
    if let Shape::Nullable(inner) = cur_new {
        if cur_old.is_non_nullable() {
            out.push(AccessStep::Unwrap);
            *cur_new = resolve((**inner).clone(), new_env);
        }
    }
    if let Shape::Top(labels) = cur_new {
        if !cur_old.is_top() && *cur_old != Shape::Bottom && *cur_old != Shape::Null {
            let want = tfd_core::tag_of_in(&cur_old.clone().floor(), Some(old_env));
            let label = labels
                .iter()
                .find(|l| tfd_core::tag_of_in(l, Some(new_env)) == want)
                .cloned()
                .ok_or_else(|| {
                    MigrateError(format!(
                        "labelled top {cur_new} lost the {want} case — \
                         labels are never removed by adding samples"
                    ))
                })?;
            out.push(AccessStep::Case(tag_member_name(&resolve(
                label.clone(),
                new_env,
            ))));
            *cur_new = resolve(label, new_env);
        }
    }
    Ok(())
}

/// Inserts Unwrap (transformation 1) when the new shape became nullable,
/// and Case (transformation 2) when it became a labelled top; updates the
/// new-side cursor accordingly.
fn reconcile(
    cur_old: &Shape,
    cur_new: &mut Shape,
    out: &mut Vec<AccessStep>,
) -> Result<(), MigrateError> {
    // Became optional: nullable σ̂ where old was non-nullable.
    if let Shape::Nullable(inner) = cur_new {
        if cur_old.is_non_nullable() {
            out.push(AccessStep::Unwrap);
            *cur_new = (**inner).clone();
        }
    }
    // Became a labelled top: select the label with the old shape's tag.
    if let Shape::Top(labels) = cur_new {
        if !cur_old.is_top() && *cur_old != Shape::Bottom && *cur_old != Shape::Null {
            let want = tag_of(&cur_old.clone().floor());
            let label = labels
                .iter()
                .find(|l| tag_of(l) == want)
                .cloned()
                .ok_or_else(|| {
                    MigrateError(format!(
                        "labelled top {cur_new} lost the {want} case — \
                         labels are never removed by adding samples"
                    ))
                })?;
            out.push(AccessStep::Case(tag_member_name(&label)));
            *cur_new = label;
            // The old side may itself have been nullable (the label is
            // non-nullable): nothing further to do — option-ness was
            // handled by the Case unwrap.
        }
    }
    Ok(())
}

fn record_field(shape: &Shape, name: &str) -> Result<Shape, MigrateError> {
    match shape {
        Shape::Record(r) => r
            .field(name)
            .cloned()
            .ok_or_else(|| MigrateError(format!("record {shape} has no field '{name}'"))),
        other => Err(MigrateError(format!(
            "member access on non-record shape {other}"
        ))),
    }
}

fn list_element(shape: &Shape) -> Result<Shape, MigrateError> {
    match shape {
        Shape::List(e) => Ok((**e).clone()),
        other => Err(MigrateError(format!(
            "indexing into non-collection shape {other}"
        ))),
    }
}

fn top_label(shape: &Shape, member: &str) -> Result<Shape, MigrateError> {
    match shape {
        Shape::Top(labels) => labels
            .iter()
            .find(|l| tag_member_name(l) == member)
            .cloned()
            .ok_or_else(|| MigrateError(format!("top {shape} has no case '{member}'"))),
        other => Err(MigrateError(format!(
            "case selection on non-top shape {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessStep::{AsInt, Case, Member, Nth, Unwrap};

    #[test]
    fn apply_builds_member_chains() {
        let p = AccessProgram::members(["main", "temp"]);
        let e = apply(&p, Expr::var("w"));
        assert_eq!(e.to_string(), "w.main.temp");
    }

    #[test]
    fn apply_unwrap_compiles_to_match_with_exn() {
        let p = AccessProgram::new([Member("age".into()), Unwrap]);
        let e = apply(&p, Expr::var("r"));
        assert!(e.to_string().contains("match r.age with Some(v)"));
        assert!(e.to_string().contains("None \u{2192} exn"));
    }

    #[test]
    fn migrate_identity_when_shape_unchanged() {
        let shape = Shape::record("P", [("x", Shape::Int)]);
        let p = AccessProgram::members(["x"]);
        let migrated = migrate(&p, &shape, &shape).unwrap();
        assert_eq!(migrated, p);
    }

    #[test]
    fn migrate_inserts_unwrap_for_new_optional_field() {
        // Old: x : int. New sample lacks x → x : nullable int.
        let old = Shape::record("P", [("x", Shape::Int)]);
        let new = Shape::record("P", [("x", Shape::Int.ceil())]);
        let p = AccessProgram::members(["x"]);
        let migrated = migrate(&p, &old, &new).unwrap();
        assert_eq!(migrated, AccessProgram::new([Member("x".into()), Unwrap]));
    }

    #[test]
    fn migrate_inserts_as_int_for_widened_number() {
        // Transformation 3: int became float.
        let old = Shape::record("P", [("x", Shape::Int)]);
        let new = Shape::record("P", [("x", Shape::Float)]);
        let p = AccessProgram::members(["x"]);
        let migrated = migrate(&p, &old, &new).unwrap();
        assert_eq!(migrated, AccessProgram::new([Member("x".into()), AsInt]));
    }

    #[test]
    fn migrate_inserts_case_for_new_top() {
        // Transformation 2: the field became any⟨P{...}, string⟩.
        let inner_old = Shape::record("P", [("y", Shape::Int)]);
        let old = Shape::record("R", [("x", inner_old.clone())]);
        let new = Shape::record("R", [("x", Shape::Top(vec![inner_old, Shape::String]))]);
        let p = AccessProgram::new([Member("x".into()), Member("y".into())]);
        let migrated = migrate(&p, &old, &new).unwrap();
        assert_eq!(
            migrated,
            AccessProgram::new([Member("x".into()), Case("P".into()), Member("y".into())])
        );
    }

    #[test]
    fn migrate_combines_optional_and_widening() {
        let old = Shape::record("P", [("x", Shape::Int)]);
        let new = Shape::record("P", [("x", Shape::Float.ceil())]);
        let p = AccessProgram::members(["x"]);
        let migrated = migrate(&p, &old, &new).unwrap();
        assert_eq!(
            migrated,
            AccessProgram::new([Member("x".into()), Unwrap, AsInt])
        );
    }

    #[test]
    fn migrate_through_lists() {
        let old = Shape::list(Shape::record("P", [("x", Shape::Int)]));
        let new = Shape::list(Shape::record("P", [("x", Shape::Int.ceil())]));
        let p = AccessProgram::new([Nth(0), Member("x".into())]);
        let migrated = migrate(&p, &old, &new).unwrap();
        assert_eq!(
            migrated,
            AccessProgram::new([Nth(0), Member("x".into()), Unwrap])
        );
    }

    // --- μ-aware migration (satellite: stability through the env) ---

    fn recursive_globals() -> (tfd_core::GlobalShape, tfd_core::GlobalShape) {
        use tfd_core::{globalize_env, infer_many, InferOptions};
        use tfd_value::{rec, Value};
        let opts = InferOptions::xml();
        let d1 = rec(
            "div",
            [
                ("child", rec("div", [("x", Value::Int(1))])),
                ("x", Value::Int(7)),
            ],
        );
        let d2 = rec(
            "div",
            [
                ("child", rec("div", [("x", Value::Float(2.5))])),
                ("x", Value::Int(9)),
            ],
        );
        let old = globalize_env(infer_many([&d1], &opts));
        let new = globalize_env(infer_many([&d1, &d2], &opts));
        (old, new)
    }

    #[test]
    fn migrate_global_navigates_through_recursion_points() {
        let (old, new) = recursive_globals();
        assert!(!old.env.is_empty(), "the corpus is genuinely recursive");
        // Navigate through the μ-reference: child is nullable ↺div.
        let p = AccessProgram::new([Member("child".into()), Unwrap, Member("x".into())]);
        let migrated = migrate_global(&p, &old, &new).unwrap();
        // x widened from int to float inside the class: transformation 3.
        assert_eq!(
            migrated,
            AccessProgram::new([Member("child".into()), Unwrap, Member("x".into()), AsInt])
        );
        // The finite-tree migrate cannot follow this program: the inline
        // rendering cuts the recursive class at a ↺div reference.
        let err = migrate(&p, &old.inline(), &new.inline()).unwrap_err();
        assert!(err.0.contains("member access on non-record"), "{err}");
    }

    #[test]
    fn migrate_global_is_identity_on_unchanged_recursive_shapes() {
        let (old, _) = recursive_globals();
        let p = AccessProgram::new([Member("child".into()), Unwrap, Member("x".into())]);
        assert_eq!(migrate_global(&p, &old, &old).unwrap(), p);
    }

    #[test]
    fn migrate_global_rejects_narrowing() {
        let (old, new) = recursive_globals();
        let p = AccessProgram::new([Member("x".into())]);
        // Migrating backwards (new → old) is a narrowing the Remark
        // never produces.
        assert!(migrate_global(&p, &new, &old).is_err());
    }

    #[test]
    fn migrate_rejects_unrelated_shapes() {
        // int → string is not something adding samples produces at the
        // same position without a top.
        let old = Shape::record("P", [("x", Shape::Int)]);
        let new = Shape::record("P", [("x", Shape::String)]);
        assert!(migrate(&AccessProgram::members(["x"]), &old, &new).is_err());
    }

    #[test]
    fn migrate_rejects_bad_programs() {
        let shape = Shape::record("P", [("x", Shape::Int)]);
        let p = AccessProgram::members(["ghost"]);
        assert!(migrate(&p, &shape, &shape).is_err());
    }
}
