//! # tfd-provider — the type providers of *Types from data* (§4.2, §5)
//!
//! Links the shape world (`tfd-core`) to the Foo calculus (`tfd-foo`):
//!
//! * [`provide`] / [`provide_idiomatic`] — the Fig. 8 mapping
//!   `⟦σ⟧ = (τ, e, L)` producing a Foo type, a conversion expression and
//!   generated class declarations; the idiomatic variant adds the §6.3
//!   naming pipeline (PascalCase, `•` lifting/renaming, collision
//!   numbering, text-element collapse);
//! * [`deep_eval`] — the Lemma 2 / Theorem 3 harness that evaluates
//!   every member of every reachable provided object;
//! * [`AccessProgram`] / [`migrate`] — the Remark 1 stability
//!   transformations, executable;
//! * [`signature`] — F#-style signature printing matching the paper's
//!   listings;
//! * [`naming`] — the §6.3 naming rules.
//!
//! # Example: the paper's Example 1 (§4.2)
//!
//! ```
//! use tfd_provider::{provide, signature};
//! use tfd_core::Shape;
//!
//! // Person { Age : option⟨int⟩, Name : string }
//! let shape = Shape::record(
//!     "Person",
//!     [("Age", Shape::Int.ceil()), ("Name", Shape::String)],
//! );
//! let p = provide(&shape);
//! let sig = signature(&p);
//! assert!(sig.contains("member Age : option<int>"));
//! assert!(sig.contains("member Name : string"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fsharp;
mod mapping;
pub mod naming;
mod safety;
mod stability;

pub use fsharp::{root_type_name, signature};
pub use mapping::{provide, provide_global, provide_idiomatic, Provided};
pub use safety::{deep_eval, DeepEvalReport, SafetyFailure};
pub use stability::{apply, migrate, migrate_global, AccessProgram, AccessStep, MigrateError};
