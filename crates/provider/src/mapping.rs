//! The type-provider mapping `⟦σ⟧ = (τ, e, L)` (Fig. 8).
//!
//! Given an inferred shape, produces an F# type τ (a Foo [`Type`]), a
//! conversion expression `e : Data → τ`, and the generated class
//! declarations `L`. The conversion turns weakly typed input data into a
//! strongly typed Foo value; the classes' members perform the dynamic
//! data operations of Fig. 6.
//!
//! Two modes:
//!
//! * [`provide`] — the paper's Fig. 8 verbatim: member names are the raw
//!   field names, every record becomes a class.
//! * [`provide_idiomatic`] — additionally applies the §6.3
//!   transformations: text-only XML elements collapse to their primitive
//!   (implied by the §6.3 `Root`/`Item` example), `•` members whose type
//!   is a generated class are lifted into the parent, remaining `•`
//!   members are renamed to `Value`, and all member names are PascalCased
//!   with `2`, `3`, … appended on collisions.

use crate::naming::{member_name, tag_member_name, ClassNamer, MemberNamer};
use std::collections::HashMap;
use tfd_core::{GlobalShape, Multiplicity, RecordShape, Shape};
use tfd_foo::{Class, Classes, Expr, Member, Op, Type};
use tfd_value::{Name, Value, BODY_NAME};

/// The result of running a type provider: `⟦σ⟧ = (τ, e, L)`.
#[derive(Debug, Clone)]
pub struct Provided {
    /// The provided F# type τ.
    pub ty: Type,
    /// The conversion expression `e` with `L; ∅ ⊢ e : Data → τ`.
    pub conv: Expr,
    /// The generated class declarations `L`.
    pub classes: Classes,
}

impl Provided {
    /// The application `e d` — the typed view of an input document.
    pub fn convert(&self, d: &Value) -> Expr {
        Expr::app(self.conv.clone(), Expr::Data(d.clone()))
    }
}

/// Runs the Fig. 8 mapping with raw (paper-faithful) naming.
///
/// ```
/// use tfd_provider::provide;
/// use tfd_core::Shape;
/// use tfd_foo::Type;
///
/// let p = provide(&Shape::record("Point", [("x", Shape::Int)]));
/// assert_eq!(p.ty, Type::Class("Point".into()));
/// assert_eq!(p.classes.len(), 1);
/// ```
pub fn provide(shape: &Shape) -> Provided {
    Builder::new(false).build(shape, "Root")
}

/// Runs the Fig. 8 mapping with the §6.3 idiomatic-naming pipeline.
/// `root_hint` names the root class when the shape is anonymous.
pub fn provide_idiomatic(shape: &Shape, root_hint: &str) -> Provided {
    Builder::new(true).build(shape, root_hint)
}

/// Runs the Fig. 8 mapping over a [`GlobalShape`] — the §6.2 global
/// inference result — with the §6.3 idiomatic-naming pipeline.
///
/// Every environment definition becomes **one class**, and every
/// [`Shape::Ref`] maps to that class's name, so mutually recursive XML
/// name classes come out as genuinely recursive F# signatures (exactly
/// how F# Data renders them):
///
/// ```text
/// type Ul =
///   member Li : option<Li>
/// type Li =
///   member Ul : option<Ul>
/// ```
///
/// ```
/// use tfd_core::{globalize_env, infer_with, InferOptions};
/// use tfd_provider::{provide_global, signature};
/// use tfd_value::{rec, Value};
///
/// let doc = rec("div", [("child", rec("div", [("x", Value::Int(1))]))]);
/// let g = globalize_env(infer_with(&doc, &InferOptions::formal()));
/// let sig = signature(&provide_global(&g, "Root"));
/// assert!(sig.contains("type Div ="), "{sig}");
/// assert!(sig.contains("member Child : option<Div>"), "{sig}");
/// ```
pub fn provide_global(global: &GlobalShape, root_hint: &str) -> Provided {
    let mut builder = Builder::new(true);
    builder.check_env = global.env.clone();
    // Reserve one class per definition first, so mutually recursive
    // references resolve to stable names regardless of build order...
    for (name, _) in global.env.iter() {
        let class = builder.namer.fresh(&name);
        builder.ref_classes.insert(name, class);
    }
    // ...then build the definition bodies (which may reference each
    // other and themselves), and finally the root.
    for (name, def) in global.env.iter() {
        let class = builder.ref_classes[&name].clone();
        builder.record_class(class, def);
    }
    builder.build(&global.root, root_hint)
}

/// The constructor parameter name used by all generated classes (the
/// paper's Fig. 8 uses `x1`).
const CTOR_PARAM: &str = "x1";

struct Builder {
    idiomatic: bool,
    namer: ClassNamer,
    classes: Classes,
    /// Class names reserved for μ-references: one class per
    /// [`ShapeEnv`](tfd_core::ShapeEnv) definition.
    ref_classes: HashMap<Name, String>,
    /// The definitions table of the [`GlobalShape`] being provided
    /// (empty for the plain entry points). Runtime `hasShape` checks in
    /// the Foo calculus are env-free, so label shapes are inlined
    /// through this table before they land in [`Op::HasShape`]: the
    /// interpreter then checks one full unfolding of every reference
    /// and only degrades to a name check at recursion points, matching
    /// the env-aware Rust runtime up to the μ-knot.
    check_env: tfd_core::ShapeEnv,
}

impl Builder {
    fn new(idiomatic: bool) -> Builder {
        Builder {
            idiomatic,
            namer: ClassNamer::new(),
            classes: Classes::new(),
            ref_classes: HashMap::new(),
            check_env: tfd_core::ShapeEnv::new(),
        }
    }

    fn build(mut self, shape: &Shape, root_hint: &str) -> Provided {
        let (ty, conv) = self.go(shape, root_hint);
        Provided {
            ty,
            conv,
            classes: self.classes,
        }
    }

    /// The recursive worker: returns (τ, e) and accumulates classes.
    fn go(&mut self, shape: &Shape, hint: &str) -> (Type, Expr) {
        match shape {
            // ⟦σp⟧ = (τp, λx. op(σp, x), ∅) — primitives; the bit/date
            // extensions provide bool/string through the extended
            // convPrim (see tfd-foo::ops).
            Shape::Bool => prim(Type::Bool, Op::ConvPrim(Shape::Bool, var_box())),
            Shape::Int => prim(Type::Int, Op::ConvPrim(Shape::Int, var_box())),
            Shape::String => prim(Type::String, Op::ConvPrim(Shape::String, var_box())),
            Shape::Float => prim(Type::Float, Op::ConvFloat(Shape::Float, var_box())),
            Shape::Bit => prim(Type::Bool, Op::ConvPrim(Shape::Bit, var_box())),
            Shape::Date => prim(Type::String, Op::ConvPrim(Shape::Date, var_box())),

            // ⟦ν{…}⟧ — a class with one member per field.
            Shape::Record(r) => {
                // §6.3 collapse: an element with only a `•` body and no
                // attributes reads as its body (Root's Item : string).
                if self.idiomatic && r.fields.len() == 1 && r.fields[0].name == BODY_NAME {
                    let (inner_ty, inner_conv) = self.go(&r.fields[0].shape, hint);
                    let conv = Expr::lam(
                        "x",
                        Type::Data,
                        Expr::Op(Op::ConvField(
                            r.name,
                            tfd_value::body_name(),
                            Box::new(Expr::var("x")),
                            Box::new(inner_conv),
                        )),
                    );
                    return (inner_ty, conv);
                }

                let class_hint = if r.name == BODY_NAME { hint } else { &r.name };
                let class_name = self.namer.fresh(class_hint);
                self.record_class(class_name.clone(), r);
                (
                    Type::Class(class_name.clone()),
                    Expr::lam("x", Type::Data, Expr::New(class_name, vec![Expr::var("x")])),
                )
            }

            // ⟦↺ν⟧ — a μ-reference maps to its definition's (reserved)
            // class: recursion in the shape becomes recursion between
            // generated classes, exactly as in F# Data's provided types.
            Shape::Ref(n) => match self.ref_classes.get(n).cloned() {
                Some(class_name) => (
                    Type::Class(class_name.clone()),
                    Expr::lam("x", Type::Data, Expr::New(class_name, vec![Expr::var("x")])),
                ),
                // A dangling reference (no definition in scope) provides
                // only the raw-data escape hatch, like ⟦⊥⟧.
                None => {
                    let class_name = self.namer.fresh(n.as_str());
                    self.classes.add(Class {
                        name: class_name.clone(),
                        params: vec![("v".to_owned(), Type::Data)],
                        members: vec![],
                    });
                    (
                        Type::Class(class_name.clone()),
                        Expr::lam("x", Type::Data, Expr::New(class_name, vec![Expr::var("x")])),
                    )
                }
            },

            // ⟦[σ]⟧ = (list τ, λx. convElements(x, e′), L).
            Shape::List(element) => {
                let (el_ty, el_conv) = self.go(element, hint);
                (
                    Type::list(el_ty),
                    Expr::lam(
                        "x",
                        Type::Data,
                        Expr::Op(Op::ConvElements(
                            Box::new(Expr::var("x")),
                            Box::new(el_conv),
                        )),
                    ),
                )
            }

            // ⟦nullable σ̂⟧ = (option τ, λx. convNull(x, e), L).
            Shape::Nullable(inner) => {
                let (inner_ty, inner_conv) = self.go(inner, hint);
                (
                    Type::option(inner_ty),
                    Expr::lam(
                        "x",
                        Type::Data,
                        Expr::Op(Op::ConvNull(Box::new(Expr::var("x")), Box::new(inner_conv))),
                    ),
                )
            }

            // ⟦any⟨σ1,…,σn⟩⟧ — a class with an option-typed member per
            // label, guarded by hasShape.
            Shape::Top(labels) => {
                let class_name = self
                    .namer
                    .fresh(if hint.is_empty() { "Choice" } else { hint });
                let mut namer = MemberNamer::new();
                let mut members = Vec::new();
                for label in labels {
                    let base = tag_member_name(label);
                    let name = namer.fresh(&base);
                    let (label_ty, label_conv) = self.go(label, &base);
                    let body = Expr::if_(
                        Expr::Op(Op::HasShape(
                            // Inline μ-references: the Foo `hasShape` is
                            // env-free, so hand it the expanded check
                            // (see the `check_env` field docs).
                            self.check_env.inline(label),
                            Box::new(Expr::var(CTOR_PARAM)),
                        )),
                        Expr::some(Expr::app(label_conv, Expr::var(CTOR_PARAM))),
                        Expr::NoneLit,
                    );
                    members.push(Member {
                        name,
                        ty: Type::option(label_ty),
                        body,
                    });
                }
                self.classes.add(Class {
                    name: class_name.clone(),
                    params: vec![(CTOR_PARAM.to_owned(), Type::Data)],
                    members,
                });
                (
                    Type::Class(class_name.clone()),
                    Expr::lam("x", Type::Data, Expr::New(class_name, vec![Expr::var("x")])),
                )
            }

            // ⟦[σ1,ψ1 | … | σn,ψn]⟧ — §6.4: a class with a member per
            // case, typed by the case's multiplicity.
            Shape::HeteroList(cases) => {
                let class_name = self
                    .namer
                    .fresh(if hint.is_empty() { "Items" } else { hint });
                let mut namer = MemberNamer::new();
                let mut members = Vec::new();
                for (case_shape, multiplicity) in cases {
                    let base = tag_member_name(case_shape);
                    let name = namer.fresh(&base);
                    let (case_ty, case_conv) = self.go(case_shape, &base);
                    let member_ty = match multiplicity {
                        Multiplicity::One => case_ty,
                        Multiplicity::ZeroOrOne => Type::option(case_ty),
                        Multiplicity::Many => Type::list(case_ty),
                    };
                    let body = Expr::Op(Op::ConvTagged(
                        case_shape.clone(),
                        *multiplicity,
                        Box::new(Expr::var(CTOR_PARAM)),
                        Box::new(case_conv),
                    ));
                    members.push(Member {
                        name,
                        ty: member_ty,
                        body,
                    });
                }
                self.classes.add(Class {
                    name: class_name.clone(),
                    params: vec![(CTOR_PARAM.to_owned(), Type::Data)],
                    members,
                });
                (
                    Type::Class(class_name.clone()),
                    Expr::lam("x", Type::Data, Expr::New(class_name, vec![Expr::var("x")])),
                )
            }

            // ⟦⊥⟧ = ⟦null⟧ — a memberless class holding the raw value.
            Shape::Bottom | Shape::Null => {
                let class_name = self
                    .namer
                    .fresh(if hint.is_empty() { "Unit" } else { hint });
                self.classes.add(Class {
                    name: class_name.clone(),
                    params: vec![("v".to_owned(), Type::Data)],
                    members: vec![],
                });
                (
                    Type::Class(class_name.clone()),
                    Expr::lam("x", Type::Data, Expr::New(class_name, vec![Expr::var("x")])),
                )
            }
        }
    }
}

impl Builder {
    /// Adds the class for a record body under an already-chosen name —
    /// shared by the inline-record rule of [`Builder::go`] and the
    /// per-definition classes of [`provide_global`].
    fn record_class(&mut self, class_name: String, r: &RecordShape) {
        let mut namer = MemberNamer::new();
        let mut members = Vec::new();
        for field in &r.fields {
            let (field_ty, field_conv) = self.go(&field.shape, &field.name);
            let body = Expr::Op(Op::ConvField(
                r.name,
                field.name,
                Box::new(Expr::var(CTOR_PARAM)),
                Box::new(field_conv),
            ));
            if self.idiomatic && field.name == BODY_NAME {
                if let Type::Class(inner_name) = &field_ty {
                    // §6.3 lifting: the members of the `•` class move
                    // into this class, accessed through the body
                    // conversion. A μ-reference to a class whose body is
                    // not built yet (mutual recursion) cannot be lifted;
                    // it stays a plain `Value` member instead.
                    if let Some(inner) = self.classes.get(inner_name).cloned() {
                        for m in &inner.members {
                            members.push(Member {
                                name: namer.fresh(&m.name),
                                ty: m.ty.clone(),
                                body: Expr::member(body.clone(), m.name.clone()),
                            });
                        }
                        continue;
                    }
                }
            }
            let name = if self.idiomatic {
                namer.fresh(&member_name(&field.name))
            } else {
                field.name.as_str().to_owned()
            };
            members.push(Member {
                name,
                ty: field_ty,
                body,
            });
        }
        self.classes.add(Class {
            name: class_name,
            params: vec![(CTOR_PARAM.to_owned(), Type::Data)],
            members,
        });
    }
}

fn var_box() -> Box<Expr> {
    Box::new(Expr::var("x"))
}

fn prim(ty: Type, op: Op) -> (Type, Expr) {
    (ty, Expr::lam("x", Type::Data, Expr::Op(op)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfd_foo::{check_classes, run, type_of, Ctx, Outcome};
    use tfd_value::{arr, json_rec, rec};

    fn eval(p: &Provided, d: &Value) -> Outcome {
        run(&p.classes, &p.convert(d))
    }

    fn eval_member(p: &Provided, d: &Value, member: &str) -> Outcome {
        run(&p.classes, &Expr::member(p.convert(d), member))
    }

    // --- Fig. 8, rule by rule ---

    #[test]
    fn primitives_map_to_conversions() {
        let p = provide(&Shape::Int);
        assert_eq!(p.ty, Type::Int);
        assert!(p.classes.is_empty());
        assert_eq!(eval(&p, &Value::Int(42)), Outcome::Value(Expr::data(42i64)));
        // The wrong primitive gets stuck:
        assert!(eval(&p, &Value::str("no")).is_stuck());
    }

    #[test]
    fn float_conversion_widens_ints() {
        let p = provide(&Shape::Float);
        assert_eq!(eval(&p, &Value::Int(5)), Outcome::Value(Expr::data(5.0)));
        assert_eq!(
            eval(&p, &Value::Float(5.5)),
            Outcome::Value(Expr::data(5.5))
        );
    }

    #[test]
    fn record_maps_to_class_with_members() {
        let shape = Shape::record("Point", [("x", Shape::Int), ("y", Shape::Int)]);
        let p = provide(&shape);
        assert_eq!(p.ty, Type::Class("Point".into()));
        let class = p.classes.get("Point").unwrap();
        assert_eq!(class.members.len(), 2);
        assert_eq!(class.members[0].name, "x");
        let d = rec("Point", [("x", Value::Int(1)), ("y", Value::Int(2))]);
        assert_eq!(eval_member(&p, &d, "y"), Outcome::Value(Expr::data(2i64)));
    }

    #[test]
    fn collection_maps_to_list() {
        let p = provide(&Shape::list(Shape::Int));
        assert_eq!(p.ty, Type::list(Type::Int));
        let out = eval(&p, &arr([Value::Int(1), Value::Int(2)])).unwrap_value();
        assert_eq!(
            out,
            Expr::Cons(
                Box::new(Expr::data(1i64)),
                Box::new(Expr::Cons(Box::new(Expr::data(2i64)), Box::new(Expr::Nil)))
            )
        );
        // Null reads as the empty collection (design decision D3):
        assert_eq!(eval(&p, &Value::Null), Outcome::Value(Expr::Nil));
    }

    #[test]
    fn nullable_maps_to_option() {
        let p = provide(&Shape::Int.ceil());
        assert_eq!(p.ty, Type::option(Type::Int));
        assert_eq!(eval(&p, &Value::Null), Outcome::Value(Expr::NoneLit));
        assert_eq!(
            eval(&p, &Value::Int(3)),
            Outcome::Value(Expr::some(Expr::data(3i64)))
        );
    }

    #[test]
    fn labelled_top_maps_to_option_members() {
        let shape = Shape::Top(vec![Shape::Int, Shape::String]);
        let p = provide(&shape);
        let class_name = match &p.ty {
            Type::Class(c) => c.clone(),
            other => panic!("expected class, got {other}"),
        };
        let class = p.classes.get(&class_name).unwrap();
        assert_eq!(class.members.len(), 2);
        assert_eq!(class.members[0].name, "Number");
        assert_eq!(class.members[1].name, "String");
        // An int input: Number = Some 42, String = None.
        let d = Value::Int(42);
        assert_eq!(
            eval_member(&p, &d, "Number"),
            Outcome::Value(Expr::some(Expr::data(42i64)))
        );
        assert_eq!(eval_member(&p, &d, "String"), Outcome::Value(Expr::NoneLit));
        // The open world: a record input answers None to both.
        let stranger = rec("table", [("z", Value::Int(1))]);
        assert_eq!(
            eval_member(&p, &stranger, "Number"),
            Outcome::Value(Expr::NoneLit)
        );
        assert_eq!(
            eval_member(&p, &stranger, "String"),
            Outcome::Value(Expr::NoneLit)
        );
    }

    #[test]
    fn bottom_and_null_map_to_memberless_class() {
        for s in [Shape::Bottom, Shape::Null] {
            let p = provide(&s);
            let Type::Class(c) = &p.ty else {
                panic!("expected class")
            };
            assert!(p.classes.get(c).unwrap().members.is_empty());
            // Conversion accepts anything (it never inspects the data).
            assert!(matches!(eval(&p, &Value::Null), Outcome::Value(_)));
        }
    }

    #[test]
    fn hetero_collection_maps_multiplicities() {
        let shape = Shape::HeteroList(vec![
            (
                Shape::record(BODY_NAME, [("pages", Shape::Int)]),
                Multiplicity::One,
            ),
            (Shape::list(Shape::Int), Multiplicity::ZeroOrOne),
        ]);
        let p = provide(&shape);
        let Type::Class(c) = &p.ty else {
            panic!("expected class")
        };
        let class = p.classes.get(c).unwrap();
        assert_eq!(class.members[0].name, "Record");
        assert_eq!(class.members[1].name, "Array");
        assert!(matches!(class.members[1].ty, Type::Option(_)));

        let d = arr([json_rec([("pages", Value::Int(5))]), arr([Value::Int(1)])]);
        // Record has multiplicity 1 → direct access:
        match eval_member(&p, &d, "Record") {
            Outcome::Value(Expr::New(name, _)) => {
                assert_eq!(p.classes.get(&name).unwrap().members[0].name, "pages");
            }
            other => panic!("expected object, got {other:?}"),
        }
        // Array has multiplicity 1? → Some list:
        assert!(matches!(
            eval_member(&p, &d, "Array"),
            Outcome::Value(Expr::SomeLit(_))
        ));
        // Without the array element, Array = None:
        let d2 = arr([json_rec([("pages", Value::Int(5))])]);
        assert_eq!(eval_member(&p, &d2, "Array"), Outcome::Value(Expr::NoneLit));
    }

    // --- Well-typedness of everything we generate (Lemma 4 obligation) ---

    #[test]
    fn generated_classes_typecheck() {
        let shapes = [
            Shape::Int,
            Shape::Float.ceil(),
            Shape::list(Shape::record("P", [("a", Shape::Int.ceil())])),
            Shape::Top(vec![Shape::Int, Shape::record("q", [("b", Shape::Bool)])]),
            Shape::HeteroList(vec![
                (
                    Shape::record(BODY_NAME, [("x", Shape::Int)]),
                    Multiplicity::One,
                ),
                (Shape::list(Shape::Float), Multiplicity::Many),
            ]),
            Shape::record(
                "root",
                [
                    ("id", Shape::Int),
                    (
                        BODY_NAME,
                        Shape::list(Shape::record("item", [(BODY_NAME, Shape::String)])),
                    ),
                ],
            ),
        ];
        for shape in &shapes {
            for provided in [provide(shape), provide_idiomatic(shape, "Root")] {
                check_classes(&provided.classes)
                    .unwrap_or_else(|e| panic!("classes for {shape}: {e}"));
                // The conversion has type Data → τ:
                let conv_ty = type_of(&provided.classes, &Ctx::new(), &provided.conv).unwrap();
                assert_eq!(conv_ty, Type::fun(Type::Data, provided.ty.clone()));
            }
        }
    }

    // --- μ-shapes: provide_global over a definitions table ---

    #[test]
    fn global_provider_makes_one_class_per_definition() {
        use tfd_core::{GlobalShape, RecordShape, ShapeEnv};
        let env = ShapeEnv::from_defs([
            (
                "ul".into(),
                RecordShape::new(
                    "ul",
                    [
                        ("id", Shape::Int),
                        ("item", Shape::list(Shape::Ref("li".into()))),
                    ],
                ),
            ),
            (
                "li".into(),
                RecordShape::new("li", [("sub", Shape::Ref("ul".into()).ceil())]),
            ),
        ]);
        let g = GlobalShape {
            root: Shape::Ref("ul".into()),
            env,
        };
        let p = provide_global(&g, "Root");
        assert_eq!(p.ty, Type::Class("Ul".into()));
        let ul = p.classes.get("Ul").unwrap();
        let li = p.classes.get("Li").unwrap();
        // Mutually recursive member types, through the class names:
        assert_eq!(
            ul.members
                .iter()
                .map(|m| format!("{} : {}", m.name, m.ty))
                .collect::<Vec<_>>(),
            vec!["Id : int", "Item : list\u{27e8}Li\u{27e9}"]
        );
        assert_eq!(
            li.members
                .iter()
                .map(|m| format!("{} : {}", m.name, m.ty))
                .collect::<Vec<_>>(),
            vec!["Sub : option\u{27e8}Ul\u{27e9}"]
        );
        // Everything we generate still typechecks (Lemma 4 obligation):
        check_classes(&p.classes).expect("recursive classes typecheck");
        let conv_ty = type_of(&p.classes, &Ctx::new(), &p.conv).unwrap();
        assert_eq!(conv_ty, Type::fun(Type::Data, p.ty.clone()));
    }

    /// The Foo interpreter's `hasShape` is env-free, so `provide_global`
    /// inlines μ-references into the check shapes: a value that merely
    /// *names* the class but violates its definition is rejected, in
    /// agreement with the env-aware Rust runtime (regression for a
    /// review finding).
    #[test]
    fn global_provider_hasshape_checks_unfold_the_definition() {
        use tfd_core::{GlobalShape, RecordShape, ShapeEnv};
        let env =
            ShapeEnv::from_defs([("div".into(), RecordShape::new("div", [("x", Shape::Int)]))]);
        let g = GlobalShape {
            root: Shape::Top(vec![Shape::Int, Shape::Ref("div".into())]),
            env,
        };
        let p = provide_global(&g, "Root");
        let good = rec("div", [("x", Value::Int(1))]);
        assert!(matches!(
            eval_member(&p, &good, "Div"),
            Outcome::Value(Expr::SomeLit(_))
        ));
        let bad = rec("div", [("x", Value::str("s"))]);
        assert_eq!(eval_member(&p, &bad, "Div"), Outcome::Value(Expr::NoneLit));
    }

    #[test]
    fn global_provider_with_empty_env_matches_idiomatic() {
        use tfd_core::GlobalShape;
        let shape = Shape::record(
            BODY_NAME,
            [("name", Shape::String), ("age", Shape::Float.ceil())],
        );
        let g = GlobalShape::plain(shape.clone());
        let from_global = provide_global(&g, "Entity");
        let idiomatic = provide_idiomatic(&shape, "Entity");
        assert_eq!(from_global.ty, idiomatic.ty);
        assert_eq!(from_global.classes.len(), idiomatic.classes.len());
    }

    // --- §6.3 idiomatic naming ---

    #[test]
    fn idiomatic_names_are_pascal_cased() {
        let shape = Shape::record(
            BODY_NAME,
            [("name", Shape::String), ("temp_min", Shape::Float)],
        );
        let p = provide_idiomatic(&shape, "Weather");
        let class = p.classes.get("Weather").unwrap();
        let names: Vec<_> = class.members.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["Name", "TempMin"]);
    }

    #[test]
    fn idiomatic_collision_numbering() {
        let shape = Shape::record(
            BODY_NAME,
            [
                ("value", Shape::Int),
                ("Value", Shape::Int),
                ("VALUE", Shape::Int),
            ],
        );
        let p = provide_idiomatic(&shape, "C");
        let class = p.classes.get("C").unwrap();
        let names: Vec<_> = class.members.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["Value", "Value2", "VALUE"]);
    }

    #[test]
    fn idiomatic_xml_root_example() {
        // §6.2/§6.3: root {id ↦ 1, • ↦ [item {• ↦ "Hello!"}]} provides
        //   type Root = member Id : int; member Item : string
        // (via the single-element heterogeneous collection).
        let shape = Shape::record(
            "root",
            [
                ("id", Shape::Int),
                (
                    BODY_NAME,
                    Shape::HeteroList(vec![(
                        Shape::record("item", [(BODY_NAME, Shape::String)]),
                        Multiplicity::One,
                    )]),
                ),
            ],
        );
        let p = provide_idiomatic(&shape, "Root");
        let class = p.classes.get("Root").unwrap();
        let sig: Vec<_> = class
            .members
            .iter()
            .map(|m| format!("{} : {}", m.name, m.ty))
            .collect();
        assert_eq!(sig, vec!["Id : int", "Item : string"]);

        // And it evaluates: Item on the paper's document returns "Hello!".
        let doc = rec(
            "root",
            [
                ("id", Value::Int(1)),
                (
                    BODY_NAME,
                    arr([rec("item", [(BODY_NAME, Value::str("Hello!"))])]),
                ),
            ],
        );
        assert_eq!(
            eval_member(&p, &doc, "Item"),
            Outcome::Value(Expr::data("Hello!"))
        );
        assert_eq!(
            eval_member(&p, &doc, "Id"),
            Outcome::Value(Expr::data(1i64))
        );
    }

    #[test]
    fn idiomatic_bullet_member_renamed_to_value() {
        // A record with a primitive • field alongside attributes keeps a
        // Value member (§6.3 rule 2).
        let shape = Shape::record("n", [("id", Shape::Int), (BODY_NAME, Shape::String)]);
        let p = provide_idiomatic(&shape, "N");
        let class = p.classes.get("N").unwrap();
        let names: Vec<_> = class.members.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["Id", "Value"]);
    }

    #[test]
    fn raw_mode_keeps_field_names() {
        let shape = Shape::record(BODY_NAME, [("temp_min", Shape::Int)]);
        let p = provide(&shape);
        let Type::Class(c) = &p.ty else { panic!() };
        assert_eq!(p.classes.get(c).unwrap().members[0].name, "temp_min");
    }
}
