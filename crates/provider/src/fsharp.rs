//! F#-style signature printing for provided types.
//!
//! Renders generated classes the way the paper's listings do, e.g. §2.1:
//!
//! ```text
//! type Entity =
//!   member Name : string
//!   member Age : option<float>
//! ```
//!
//! Used by the examples and the experiment suite to compare the provided
//! types against the paper's printed expectations.

use crate::mapping::Provided;
use tfd_foo::Type;

fn type_name(ty: &Type) -> String {
    match ty {
        Type::Int => "int".to_owned(),
        Type::Float => "float".to_owned(),
        Type::Bool => "bool".to_owned(),
        Type::String => "string".to_owned(),
        Type::Data => "Data".to_owned(),
        Type::Class(c) => c.clone(),
        Type::Fun(a, b) => format!("{} -> {}", type_name(a), type_name(b)),
        Type::List(t) => format!("list<{}>", type_name(t)),
        Type::Option(t) => format!("option<{}>", type_name(t)),
    }
}

/// Renders all generated classes as F#-style type signatures, in
/// generation order (inner classes first, root last).
///
/// ```
/// use tfd_provider::{provide_idiomatic, signature};
/// use tfd_core::Shape;
///
/// let shape = Shape::record("•", [("name", Shape::String), ("age", Shape::Float.ceil())]);
/// let p = provide_idiomatic(&shape, "Entity");
/// let sig = signature(&p);
/// assert!(sig.contains("type Entity ="));
/// assert!(sig.contains("member Name : string"));
/// assert!(sig.contains("member Age : option<float>"));
/// ```
pub fn signature(provided: &Provided) -> String {
    let mut out = String::new();
    for class in provided.classes.iter() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!("type {} =\n", class.name));
        if class.members.is_empty() {
            out.push_str("  (no members)\n");
        }
        for member in &class.members {
            out.push_str(&format!(
                "  member {} : {}\n",
                member.name,
                type_name(&member.ty)
            ));
        }
    }
    if provided.classes.is_empty() {
        out.push_str(&format!(
            "(* primitive provided type: {} *)\n",
            type_name(&provided.ty)
        ));
    }
    out
}

/// Renders the root provided type name (e.g. for `Parse`/`Load`
/// signatures in documentation).
pub fn root_type_name(provided: &Provided) -> String {
    type_name(&provided.ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{provide, provide_idiomatic};
    use tfd_core::Shape;

    #[test]
    fn paper_entity_signature() {
        // §2.1's provided type for people.json elements.
        let shape = Shape::record(
            tfd_value::BODY_NAME,
            [("name", Shape::String), ("age", Shape::Float.ceil())],
        );
        let p = provide_idiomatic(&shape, "Entity");
        let sig = signature(&p);
        assert_eq!(
            sig,
            "type Entity =\n  member Name : string\n  member Age : option<float>\n"
        );
    }

    #[test]
    fn primitive_signature_mentions_type() {
        let p = provide(&Shape::Int);
        assert!(signature(&p).contains("int"));
        assert_eq!(root_type_name(&p), "int");
    }

    #[test]
    fn list_and_option_names() {
        let p = provide(&Shape::list(Shape::Float.ceil()));
        assert_eq!(root_type_name(&p), "list<option<float>>");
    }

    #[test]
    fn memberless_class_prints_placeholder() {
        let p = provide(&Shape::Null);
        assert!(signature(&p).contains("(no members)"));
    }
}
