//! # tfd-macros — compile-time type providers for Rust
//!
//! The Rust analogue of `JsonProvider<"...">` (§1, §2): procedural macros
//! that take sample documents at **compile time**, run the paper's shape
//! inference, and expand to a module of typed accessor structs (generated
//! by `tfd-codegen`). Like F# type providers, the types come from the
//! sample data, and changing the sample changes the types at the next
//! compile — the schema-change detection of §6.1.
//!
//! # Grammar
//!
//! ```text
//! json_provider! {
//!     mod weather;                 // generated module name
//!     root Weather;                // root struct name hint
//!     sample r#"{ "temp": 5 }"#;   // one or more inline samples
//!     sample_file "data/w.json";   // and/or files (relative to the
//!                                  // crate's CARGO_MANIFEST_DIR)
//!     prefix ::types_from_data;    // optional support-crate path
//! }
//! ```
//!
//! `xml_provider!` additionally accepts `global;` to enable the §6.2
//! global (by-name) inference mode, and any provider accepts
//! `no_hetero;` to disable §6.4 heterogeneous collections in favour of
//! the §2.2/§3.5 labelled-top presentation. `csv_provider!` uses the §6.2 CSV
//! options (bit shapes, date detection, `#N/A` handling).
//!
//! # Example
//!
//! ```ignore
//! types_from_data::json_provider! {
//!     mod people;
//!     root Person;
//!     sample r#"[ { "name": "Jan", "age": 25 }, { "name": "Tomas" } ]"#;
//! }
//!
//! let items = people::sample();
//! for item in items {
//!     println!("{}", item.name()?);
//! }
//! ```

use proc_macro::{TokenStream, TokenTree};
use tfd_codegen::{generate_global, CodegenOptions, SourceFormat};
use tfd_core::{engine, globalize_env, infer_many, GlobalShape, InferOptions, StreamFormat};
use tfd_value::{Interner, Value};

/// Which provider front-end a macro invocation uses. The three engine
/// formats route through `tfd_core::engine`; HTML is the footnote-10
/// extension with its own table handling.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    Json,
    Xml,
    Csv,
    Html,
}

impl Format {
    /// The engine format, when this is one of the three engine-backed
    /// front-ends.
    fn engine_format(self) -> Option<StreamFormat> {
        match self {
            Format::Json => Some(StreamFormat::Json),
            Format::Xml => Some(StreamFormat::Xml),
            Format::Csv => Some(StreamFormat::Csv),
            Format::Html => None,
        }
    }
}

struct Request {
    module: String,
    root: String,
    samples: Vec<String>,
    prefix: String,
    global: bool,
    no_hetero: bool,
    table_index: usize,
}

/// A JSON type provider: infers types from JSON samples at compile time.
#[proc_macro]
pub fn json_provider(input: TokenStream) -> TokenStream {
    expand(input, Format::Json)
}

/// An XML type provider: infers types from XML samples at compile time.
#[proc_macro]
pub fn xml_provider(input: TokenStream) -> TokenStream {
    expand(input, Format::Xml)
}

/// A CSV type provider: infers row types from CSV samples at compile
/// time (with the §6.2 bit/date/missing-value handling).
#[proc_macro]
pub fn csv_provider(input: TokenStream) -> TokenStream {
    expand(input, Format::Csv)
}

/// An HTML type provider: infers row types from the first `<table>` in an
/// HTML sample — the footnote-10 extension ("similarly easy access to
/// data in HTML tables"). Accepts `table N;` to select a different table
/// by index.
#[proc_macro]
pub fn html_provider(input: TokenStream) -> TokenStream {
    expand(input, Format::Html)
}

#[allow(clippy::expect_used)] // checked invariant, documented at each site
fn expand(input: TokenStream, format: Format) -> TokenStream {
    match try_expand(input, format) {
        Ok(ts) => ts,
        Err(msg) => {
            let escaped = msg.replace('\\', "\\\\").replace('"', "\\\"");
            format!("compile_error!(\"{escaped}\");")
                .parse()
                .expect("compile_error! always parses")
        }
    }
}

fn try_expand(input: TokenStream, format: Format) -> Result<TokenStream, String> {
    let request = parse_request(input)?;
    if request.samples.is_empty() {
        return Err("provide at least one `sample \"...\";` or `sample_file \"...\";`".into());
    }

    // Parse every sample through the engine's format-generic front-end
    // dispatch (HTML stays special: it needs the table index). The
    // samples' vocabulary interns into a scoped arena that dies with
    // this expansion, so large samples don't grow the compiler process
    // for the rest of the build.
    let interner = Interner::new();
    let mut values: Vec<Value> = Vec::new();
    for (i, text) in request.samples.iter().enumerate() {
        let value = match format.engine_format() {
            Some(sformat) => engine::parse_value_dyn_in(sformat, text, &interner)
                .map_err(|e| format!("sample {}: invalid {}: {e}", i + 1, sformat_name(sformat)))?,
            None => {
                let tables = tfd_html::parse_tables(text);
                let table = tables.get(request.table_index).ok_or_else(|| {
                    format!(
                        "sample {}: HTML contains {} table(s), index {} requested",
                        i + 1,
                        tables.len(),
                        request.table_index
                    )
                })?;
                table.to_value()
            }
        };
        values.push(value);
    }

    let mut options = match format.engine_format() {
        Some(sformat) => engine::infer_options_dyn(sformat),
        // HTML tables are CSV-like cell grids (§6.2 inference applies).
        None => InferOptions::csv(),
    };
    if request.no_hetero {
        // §2.2/§3.5 presentation: collections of mixed elements become
        // collections of a labelled top instead of §6.4 heterogeneous
        // collections.
        options.hetero_collections = false;
        options.singleton_collections = false;
    }
    let shape = infer_many(&values, &options);
    // The §6.2 global mode goes through the env-carrying form, so
    // recursive XML elements expand to genuinely recursive structs (one
    // per definitions-table entry) instead of a truncated tree.
    let global = if request.global {
        globalize_env(shape)
    } else {
        GlobalShape::plain(shape)
    };

    let codegen = CodegenOptions {
        crate_prefix: request.prefix.clone(),
        format: match format {
            Format::Json => Some(SourceFormat::Json),
            Format::Xml => Some(SourceFormat::Xml),
            Format::Csv => Some(SourceFormat::Csv),
            // HTML parse/load need the table index; emitted below.
            Format::Html => None,
        },
        sample_text: Some(request.samples[0].clone()),
    };
    let mut code = generate_global(&global, &request.module, &request.root, &codegen);
    if format == Format::Html {
        // Append HTML-specific parse/load/sample functions inside the
        // module (codegen is format-agnostic for HTML).
        let root_ty = root_type_of(&code);
        let idx = request.table_index;
        let prefix = &request.prefix;
        let sample = &request.samples[0];
        let extra = format!(
            "    /// Extracts table {idx} of an HTML document and types it like the sample.\n             \x20   ///\n\x20   /// # Errors\n\x20   ///\n\x20   /// Returns an error when              the table is missing or misshapen.\n             \x20   pub fn parse(text: &str) -> Result<{root_ty}, Box<dyn std::error::Error + Send + Sync>> {{\n             \x20       let tables = {prefix}::html::parse_tables(text);\n             \x20       let table = tables.get({idx}).ok_or(\"table index out of range\")?;\n             \x20       Ok(from_value(table.to_value())?)\n             \x20   }}\n\n             \x20   /// Reads and parses an HTML file.\n             \x20   ///\n\x20   /// # Errors\n\x20   ///\n\x20   /// Returns I/O and shape errors.\n             \x20   pub fn load(path: impl AsRef<std::path::Path>) -> Result<{root_ty}, Box<dyn std::error::Error + Send + Sync>> {{\n             \x20       parse(&std::fs::read_to_string(path)?)\n             \x20   }}\n\n             \x20   /// The compile-time sample.\n             \x20   pub const SAMPLE: &str = {sample:?};\n\n             \x20   /// Parses the compile-time sample.\n             \x20   ///\n\x20   /// # Panics\n\x20   ///\n\x20   /// Never: validated at expansion time.\n             \x20   pub fn sample() -> {root_ty} {{\n             \x20       parse(SAMPLE).expect(\"the compile-time sample always parses\")\n             \x20   }}\n"
        );
        // Insert before the final closing brace of the module.
        if let Some(pos) = code.rfind('}') {
            code.insert_str(pos, &extra);
        }
    }
    code.parse()
        .map_err(|e| format!("internal error: generated code does not parse: {e}"))
}

/// Uppercase format name for sample-error diagnostics.
fn sformat_name(format: StreamFormat) -> &'static str {
    match format {
        StreamFormat::Json => "JSON",
        StreamFormat::Xml => "XML",
        StreamFormat::Csv => "CSV",
    }
}

#[allow(clippy::expect_used)] // checked invariant, documented at each site
/// Recovers the root type from the generated `from_value` signature.
fn root_type_of(code: &str) -> String {
    let marker = "pub fn from_value(value: Value) -> Result<";
    let start = code.find(marker).expect("from_value is always generated") + marker.len();
    let rest = &code[start..];
    let end = rest
        .find(", AccessError>")
        .expect("from_value returns AccessError");
    rest[..end].to_owned()
}

fn parse_request(input: TokenStream) -> Result<Request, String> {
    let mut request = Request {
        module: String::new(),
        root: "Root".to_owned(),
        samples: Vec::new(),
        prefix: "::types_from_data".to_owned(),
        global: false,
        no_hetero: false,
        table_index: 0,
    };
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "expected a key (mod/root/sample/...), found `{other}`"
                ))
            }
        };
        i += 1;
        match key.as_str() {
            "mod" => {
                request.module = expect_ident(&tokens, &mut i)?;
                expect_semi(&tokens, &mut i)?;
            }
            "root" => {
                request.root = expect_ident(&tokens, &mut i)?;
                expect_semi(&tokens, &mut i)?;
            }
            "sample" => {
                request.samples.push(expect_string(&tokens, &mut i)?);
                expect_semi(&tokens, &mut i)?;
            }
            "sample_file" => {
                let rel = expect_string(&tokens, &mut i)?;
                expect_semi(&tokens, &mut i)?;
                let base = std::env::var("CARGO_MANIFEST_DIR")
                    .map_err(|_| "CARGO_MANIFEST_DIR is not set".to_owned())?;
                let path = std::path::Path::new(&base).join(&rel);
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read sample file {}: {e}", path.display()))?;
                request.samples.push(text);
            }
            "global" => {
                request.global = true;
                expect_semi(&tokens, &mut i)?;
            }
            "no_hetero" => {
                request.no_hetero = true;
                expect_semi(&tokens, &mut i)?;
            }
            "table" => {
                let idx = match tokens.get(i) {
                    Some(TokenTree::Literal(lit)) => {
                        let text = lit.to_string();
                        i += 1;
                        text.parse::<usize>()
                            .map_err(|_| format!("`table` expects an index, found {text}"))?
                    }
                    other => return Err(format!("`table` expects an index, found {other:?}")),
                };
                expect_semi(&tokens, &mut i)?;
                request.table_index = idx;
            }
            "prefix" => {
                // Collect tokens until the semicolon as a path.
                let mut path = String::new();
                while i < tokens.len() {
                    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ';') {
                        break;
                    }
                    path.push_str(&tokens[i].to_string());
                    i += 1;
                }
                expect_semi(&tokens, &mut i)?;
                if path.is_empty() {
                    return Err("`prefix` requires a path, e.g. `prefix ::types_from_data;`".into());
                }
                request.prefix = path;
            }
            other => {
                return Err(format!(
                    "unknown key `{other}` (expected mod, root, sample, sample_file, global, no_hetero, prefix)"
                ))
            }
        }
    }
    if request.module.is_empty() {
        return Err("missing `mod <name>;`".into());
    }
    Ok(request)
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            let name = id.to_string();
            *i += 1;
            Ok(name)
        }
        other => Err(format!("expected an identifier, found `{other:?}`")),
    }
}

fn expect_semi(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            *i += 1;
            Ok(())
        }
        other => Err(format!("expected `;`, found `{other:?}`")),
    }
}

fn expect_string(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Literal(lit)) => {
            let text = lit.to_string();
            *i += 1;
            unquote(&text)
        }
        other => Err(format!("expected a string literal, found `{other:?}`")),
    }
}

/// Decodes a Rust string literal (normal or raw) from its source form.
fn unquote(src: &str) -> Result<String, String> {
    if let Some(rest) = src.strip_prefix('r') {
        // Raw string: r"..."  or  r#"..."#  (any number of #).
        let hashes = rest.chars().take_while(|&c| c == '#').count();
        let body = &rest[hashes..];
        let body = body
            .strip_prefix('"')
            .and_then(|b| b.strip_suffix(&format!("\"{}", "#".repeat(hashes))))
            .ok_or_else(|| format!("malformed raw string literal: {src}"))?;
        return Ok(body.to_owned());
    }
    let body = src
        .strip_prefix('"')
        .and_then(|b| b.strip_suffix('"'))
        .ok_or_else(|| format!("expected a string literal, found {src}"))?;
    // Unescape.
    let mut out = String::new();
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('\'') => out.push('\''),
            Some('u') => {
                // \u{XXXX}
                if chars.next() != Some('{') {
                    return Err("malformed \\u escape in string literal".into());
                }
                let mut hex = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    hex.push(c);
                }
                let cp = u32::from_str_radix(&hex, 16)
                    .map_err(|_| "malformed \\u escape in string literal".to_owned())?;
                out.push(char::from_u32(cp).ok_or_else(|| "invalid unicode escape".to_owned())?);
            }
            other => return Err(format!("unsupported escape \\{other:?} in string literal")),
        }
    }
    Ok(out)
}
