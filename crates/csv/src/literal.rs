//! Primitive-literal inference for untyped text (§6.2).
//!
//! CSV cells and XML attribute/text content carry no type information;
//! this module decides whether `"42"` is an integer, `"3 kveten"` a plain
//! string, `"#N/A"` a missing value, and `"2012-05-01"` a date.
//!
//! Booleans: `true`/`false` (any capitalization). Note that `0`/`1` parse
//! as integers here — the *bit* shape that makes the paper's `Autofilled`
//! column a boolean is inferred at the shape level (see `tfd-core`), from
//! integer values that are only ever 0 or 1.

use tfd_value::Value;

/// Options controlling literal inference.
#[derive(Debug, Clone)]
pub struct LiteralOptions {
    /// Cell texts treated as a missing value (mapped to `null`).
    /// Defaults to `#N/A`, `N/A`, `NA`, `NULL`, `null`, `-`, and the
    /// empty string.
    pub missing_values: Vec<String>,
    /// When `true` (default), surrounding ASCII whitespace is trimmed
    /// before interpreting the literal.
    pub trim: bool,
}

impl Default for LiteralOptions {
    fn default() -> Self {
        LiteralOptions {
            missing_values: ["#N/A", "N/A", "NA", "NULL", "null", "-", ""]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            trim: true,
        }
    }
}

/// A calendar date (proleptic Gregorian), produced by [`parse_date`].
///
/// The runtime exposes dates as this plain triple; no time-of-day or
/// timezone handling is needed to reproduce the paper's behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Date {
    /// Year (e.g. 2012).
    pub year: i32,
    /// Month, 1–12.
    pub month: u32,
    /// Day of month, 1–31 (validated against the month).
    pub day: u32,
}

impl Date {
    /// Creates a date, validating month and day ranges (including leap
    /// years for February).
    pub fn new(year: i32, month: u32, day: u32) -> Option<Date> {
        if !(1..=12).contains(&month) {
            return None;
        }
        let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
        let max_day = match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 if leap => 29,
            2 => 28,
            _ => unreachable!("month validated above"),
        };
        if !(1..=max_day).contains(&day) {
            return None;
        }
        Some(Date { year, month, day })
    }
}

impl std::fmt::Display for Date {
    /// Formats as ISO-8601 `YYYY-MM-DD`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

const MONTH_NAMES: &[(&str, u32)] = &[
    ("january", 1),
    ("february", 2),
    ("march", 3),
    ("april", 4),
    ("may", 5),
    ("june", 6),
    ("july", 7),
    ("august", 8),
    ("september", 9),
    ("october", 10),
    ("november", 11),
    ("december", 12),
    ("jan", 1),
    ("feb", 2),
    ("mar", 3),
    ("apr", 4),
    ("jun", 6),
    ("jul", 7),
    ("aug", 8),
    ("sep", 9),
    ("sept", 9),
    ("oct", 10),
    ("nov", 11),
    ("dec", 12),
];

fn month_by_name(s: &str) -> Option<u32> {
    let lower = s.to_ascii_lowercase();
    let lower = lower.trim_end_matches('.');
    MONTH_NAMES
        .iter()
        .find(|(name, _)| *name == lower)
        .map(|&(_, m)| m)
}

/// Attempts to read the text as a calendar date.
///
/// Recognized formats (the paper: "we support many date formats and
/// 'May 3' would be parsed as date"):
///
/// * ISO: `2012-05-01`, `2012/05/01`, optionally followed by a time part
///   (`2012-05-01T10:30:00`, `2012-05-01 10:30`), which is ignored.
/// * US-style: `5/1/2012`, `05/01/2012` (month first).
/// * Month names: `May 3`, `May 3, 2012`, `3 May`, `3 May 2012`
///   (a missing year defaults to 2000, only the date-ness matters for
///   shape inference).
///
/// ```
/// use tfd_csv::parse_date;
/// assert!(parse_date("2012-05-01").is_some());
/// assert!(parse_date("May 3").is_some());
/// assert!(parse_date("3 kveten").is_none()); // the paper's Czech date
/// ```
pub fn parse_date(text: &str) -> Option<Date> {
    let text = text.trim();
    if text.is_empty() {
        return None;
    }

    // Split a trailing time part off ISO-like datetimes.
    let date_part = if let Some((d, _time)) = text.split_once('T') {
        d
    } else {
        // `2012-05-01 10:30` — take the first token if the rest looks like
        // a time (contains ':').
        match text.split_once(' ') {
            Some((d, rest)) if rest.contains(':') => d,
            _ => text,
        }
    };

    // Numeric formats with - or / separators.
    for sep in ['-', '/'] {
        let parts: Vec<&str> = date_part.split(sep).collect();
        if parts.len() == 3
            && parts
                .iter()
                .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()))
        {
            let nums: Vec<i64> = parts.iter().map(|p| p.parse().unwrap_or(-1)).collect();
            if parts[0].len() == 4 {
                // YYYY-MM-DD
                return Date::new(nums[0] as i32, nums[1] as u32, nums[2] as u32);
            }
            if parts[2].len() == 4 {
                // MM/DD/YYYY (US order)
                return Date::new(nums[2] as i32, nums[0] as u32, nums[1] as u32);
            }
            return None;
        }
    }

    // Month-name formats: tokenize on whitespace and commas.
    let tokens: Vec<&str> = text
        .split(|c: char| c.is_whitespace() || c == ',')
        .filter(|t| !t.is_empty())
        .collect();
    match tokens.as_slice() {
        // May 3 | May 3 2012 | May 3, 2012
        [m, d] if month_by_name(m).is_some() => Date::new(2000, month_by_name(m)?, d.parse().ok()?),
        [m, d, y] if month_by_name(m).is_some() => {
            Date::new(y.parse().ok()?, month_by_name(m)?, d.parse().ok()?)
        }
        // 3 May | 3 May 2012
        [d, m] if month_by_name(m).is_some() => Date::new(2000, month_by_name(m)?, d.parse().ok()?),
        [d, m, y] if month_by_name(m).is_some() => {
            Date::new(y.parse().ok()?, month_by_name(m)?, d.parse().ok()?)
        }
        _ => None,
    }
}

/// Returns `true` when the (already trimmed) text is an integer literal:
/// an optional sign followed by ASCII digits, fitting `i64`.
fn parse_int(text: &str) -> Option<i64> {
    let rest = text.strip_prefix(['-', '+']).unwrap_or(text);
    if rest.is_empty() || !rest.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    text.parse().ok()
}

/// Returns the float value when the text is a decimal/exponent literal.
/// Rejects forms Rust accepts but data files don't use (`inf`, `nan`,
/// hex). Requires at least one digit.
fn parse_float(text: &str) -> Option<f64> {
    let rest = text.strip_prefix(['-', '+']).unwrap_or(text);
    if rest.is_empty() {
        return None;
    }
    let mut saw_digit = false;
    for c in rest.chars() {
        match c {
            '0'..='9' => saw_digit = true,
            '.' | 'e' | 'E' | '+' | '-' => {}
            _ => return None,
        }
    }
    if !saw_digit {
        return None;
    }
    text.parse().ok()
}

/// Classifies bare text as a primitive value when it reads as one:
/// `"42"` → `Int`, `"35.14229"` → `Float`, `"true"` → `Bool`; anything
/// else (including empty text) is `None`.
///
/// This is the content-based primitive inference the JSON provider
/// applies to *string literals* (§2.3: the World Bank service encodes
/// numbers as strings, yet the provided type says `Value : option float`
/// and `Date : int`).
///
/// ```
/// use tfd_csv::literal::infer_primitive;
/// use tfd_value::Value;
/// assert_eq!(infer_primitive("2012"), Some(Value::Int(2012)));
/// assert_eq!(infer_primitive("35.14229"), Some(Value::Float(35.14229)));
/// assert_eq!(infer_primitive("TRUE"), Some(Value::Bool(true)));
/// assert_eq!(infer_primitive("GC.DOD.TOTL.GD.ZS"), None);
/// ```
pub fn infer_primitive(text: &str) -> Option<Value> {
    let t = text.trim();
    if t.is_empty() {
        return None;
    }
    if t.eq_ignore_ascii_case("true") {
        return Some(Value::Bool(true));
    }
    if t.eq_ignore_ascii_case("false") {
        return Some(Value::Bool(false));
    }
    if let Some(i) = parse_int(t) {
        return Some(Value::Int(i));
    }
    parse_float(t).map(Value::Float)
}

/// Interprets one untyped literal as a typed [`Value`].
///
/// Order of attempts: missing-value markers, booleans, integers, floats;
/// anything else stays a string (dates stay strings too — date-ness is a
/// *shape* property detected during inference, the value keeps its text).
///
/// ```
/// use tfd_csv::{parse_literal, LiteralOptions};
/// use tfd_value::Value;
/// let opts = LiteralOptions::default();
/// assert_eq!(parse_literal("41", &opts), Value::Int(41));
/// assert_eq!(parse_literal("36.3", &opts), Value::Float(36.3));
/// assert_eq!(parse_literal("#N/A", &opts), Value::Null);
/// assert_eq!(parse_literal("true", &opts), Value::Bool(true));
/// assert_eq!(parse_literal("2012-05-01", &opts), Value::str("2012-05-01"));
/// ```
pub fn parse_literal(text: &str, options: &LiteralOptions) -> Value {
    let t = if options.trim { text.trim() } else { text };
    if options.missing_values.iter().any(|m| m == t) {
        return Value::Null;
    }
    // Allocation-free case-insensitive boolean check: this runs once per
    // CSV cell / XML attribute, so a `to_ascii_lowercase` String here
    // dominated whole-file parse profiles.
    if t.eq_ignore_ascii_case("true") {
        return Value::Bool(true);
    }
    if t.eq_ignore_ascii_case("false") {
        return Value::Bool(false);
    }
    if let Some(i) = parse_int(t) {
        return Value::Int(i);
    }
    if let Some(f) = parse_float(t) {
        return Value::Float(f);
    }
    Value::Str(t.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> Value {
        parse_literal(s, &LiteralOptions::default())
    }

    #[test]
    fn integers() {
        assert_eq!(lit("0"), Value::Int(0));
        assert_eq!(lit("41"), Value::Int(41));
        assert_eq!(lit("-7"), Value::Int(-7));
        assert_eq!(lit("+3"), Value::Int(3));
    }

    #[test]
    fn floats() {
        assert_eq!(lit("36.3"), Value::Float(36.3));
        assert_eq!(lit("-0.5"), Value::Float(-0.5));
        assert_eq!(lit("1e3"), Value::Float(1000.0));
        assert_eq!(lit("2.5E-1"), Value::Float(0.25));
    }

    #[test]
    fn booleans_any_case() {
        assert_eq!(lit("true"), Value::Bool(true));
        assert_eq!(lit("TRUE"), Value::Bool(true));
        assert_eq!(lit("False"), Value::Bool(false));
    }

    #[test]
    fn missing_markers_become_null() {
        assert_eq!(lit("#N/A"), Value::Null);
        assert_eq!(lit("NA"), Value::Null);
        assert_eq!(lit(""), Value::Null);
        assert_eq!(lit("  "), Value::Null); // trimmed to empty
        assert_eq!(lit("-"), Value::Null);
    }

    #[test]
    fn custom_missing_markers() {
        let opts = LiteralOptions {
            missing_values: vec!["?".into()],
            ..LiteralOptions::default()
        };
        assert_eq!(parse_literal("?", &opts), Value::Null);
        // The defaults no longer apply:
        assert_eq!(parse_literal("#N/A", &opts), Value::str("#N/A"));
    }

    #[test]
    fn trimming_can_be_disabled() {
        let opts = LiteralOptions {
            trim: false,
            ..LiteralOptions::default()
        };
        assert_eq!(parse_literal(" 1", &opts), Value::str(" 1"));
    }

    #[test]
    fn strings_pass_through() {
        assert_eq!(lit("hello"), Value::str("hello"));
        assert_eq!(lit("3 kveten"), Value::str("3 kveten"));
        assert_eq!(lit("1.2.3"), Value::str("1.2.3"));
        assert_eq!(lit("inf"), Value::str("inf"));
        assert_eq!(lit("nan"), Value::str("nan"));
    }

    #[test]
    fn iso_dates() {
        assert_eq!(parse_date("2012-05-01"), Date::new(2012, 5, 1));
        assert_eq!(parse_date("2012/05/01"), Date::new(2012, 5, 1));
        assert_eq!(parse_date("2012-05-01T10:30:00"), Date::new(2012, 5, 1));
        assert_eq!(parse_date("2012-05-01 10:30"), Date::new(2012, 5, 1));
    }

    #[test]
    fn us_dates() {
        assert_eq!(parse_date("5/1/2012"), Date::new(2012, 5, 1));
        assert_eq!(parse_date("05/01/2012"), Date::new(2012, 5, 1));
    }

    #[test]
    fn month_name_dates() {
        assert_eq!(parse_date("May 3"), Date::new(2000, 5, 3));
        assert_eq!(parse_date("May 3, 2012"), Date::new(2012, 5, 3));
        assert_eq!(parse_date("3 May 2012"), Date::new(2012, 5, 3));
        assert_eq!(parse_date("3 May"), Date::new(2000, 5, 3));
        assert_eq!(parse_date("sept 9 1999"), Date::new(1999, 9, 9));
    }

    #[test]
    fn non_dates_rejected() {
        assert_eq!(parse_date("3 kveten"), None);
        assert_eq!(parse_date("hello"), None);
        assert_eq!(parse_date("2012-13-01"), None); // bad month
        assert_eq!(parse_date("2012-02-30"), None); // bad day
        assert_eq!(parse_date("1/2/3"), None); // no 4-digit year
        assert_eq!(parse_date(""), None);
    }

    #[test]
    fn leap_years() {
        assert!(parse_date("2012-02-29").is_some());
        assert_eq!(parse_date("2011-02-29"), None);
        assert!(parse_date("2000-02-29").is_some()); // divisible by 400
        assert_eq!(parse_date("1900-02-29"), None); // divisible by 100 only
    }

    #[test]
    fn date_display_is_iso() {
        assert_eq!(Date::new(2012, 5, 1).unwrap().to_string(), "2012-05-01");
    }

    #[test]
    fn date_ordering() {
        assert!(Date::new(2012, 5, 1).unwrap() < Date::new(2012, 5, 2).unwrap());
        assert!(Date::new(2011, 12, 31).unwrap() < Date::new(2012, 1, 1).unwrap());
    }
}
