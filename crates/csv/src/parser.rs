//! RFC 4180 CSV parsing.
//!
//! Supports quoted fields (with `""` escapes, embedded delimiters and
//! newlines), CRLF and LF line endings, configurable delimiters, and
//! optional headerless mode (columns are then named `Column1`, `Column2`,
//! … as F# Data does).

use crate::CsvFile;
use std::fmt;

/// CSV parser configuration.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter; defaults to `,`. Use `;` or `\t` for common
    /// regional/TSV variants.
    pub delimiter: char,
    /// When `true` (default) the first row provides column names;
    /// otherwise columns are named `Column1`, `Column2`, ….
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions { delimiter: ',', has_header: true }
    }
}

/// Errors produced by the CSV parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input contained no rows at all (and a header was required).
    Empty,
    /// A quoted field was never closed; the payload is the 1-based line
    /// where the field started.
    UnterminatedQuote(usize),
    /// A closing quote was followed by a stray character; payload is the
    /// 1-based line and the offending character.
    CharAfterQuote(usize, char),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Empty => write!(f, "input contains no rows"),
            CsvError::UnterminatedQuote(line) => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::CharAfterQuote(line, c) => {
                write!(f, "unexpected character {c:?} after closing quote on line {line}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text with default [`CsvOptions`] (comma-delimited, first
/// row is the header).
///
/// # Errors
///
/// Returns [`CsvError`] for empty input or malformed quoting.
///
/// ```
/// let f = tfd_csv::parse("a,b\n1,\"x,y\"\n")?;
/// assert_eq!(f.rows()[0], vec!["1".to_owned(), "x,y".to_owned()]);
/// # Ok::<(), tfd_csv::CsvError>(())
/// ```
pub fn parse(input: &str) -> Result<CsvFile, CsvError> {
    parse_with(input, &CsvOptions::default())
}

/// Parses CSV text with explicit options.
///
/// # Errors
///
/// Returns [`CsvError`] for empty input (in header mode) or malformed
/// quoting.
pub fn parse_with(input: &str, options: &CsvOptions) -> Result<CsvFile, CsvError> {
    let mut records = split_records(input, options.delimiter)?;
    if options.has_header {
        if records.is_empty() {
            return Err(CsvError::Empty);
        }
        // Header names are trimmed: the paper's air-quality sample writes
        // "Ozone, Temp, ..." yet the provided type has fields Ozone/Temp.
        let headers = records
            .remove(0)
            .into_iter()
            .map(|h| h.trim().to_owned())
            .collect();
        Ok(CsvFile::new(headers, records))
    } else {
        let width = records.iter().map(Vec::len).max().unwrap_or(0);
        let headers = (1..=width).map(|i| format!("Column{i}")).collect();
        Ok(CsvFile::new(headers, records))
    }
}

/// State machine over characters; returns one `Vec<String>` per record.
fn split_records(input: &str, delimiter: char) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    // `started` tracks whether the current record has any content, so a
    // trailing newline does not produce a phantom empty record.
    let mut started = false;
    let mut line = 1usize;

    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                started = true;
                let quote_line = line;
                // Quoted field: consume until the closing quote.
                loop {
                    match chars.next() {
                        None => return Err(CsvError::UnterminatedQuote(quote_line)),
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                field.push('"');
                            } else {
                                break;
                            }
                        }
                        Some('\n') => {
                            line += 1;
                            field.push('\n');
                        }
                        Some(c) => field.push(c),
                    }
                }
                // After the closing quote only a delimiter or line end may follow.
                match chars.peek() {
                    None => {}
                    Some(&c2) if c2 == delimiter || c2 == '\n' || c2 == '\r' => {}
                    Some(&c2) => return Err(CsvError::CharAfterQuote(line, c2)),
                }
            }
            '\r' => {
                // Part of CRLF; the '\n' branch finishes the record. A bare
                // CR is treated as a record separator too.
                if chars.peek() != Some(&'\n') {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    started = false;
                    line += 1;
                }
            }
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                started = false;
                line += 1;
            }
            c if c == delimiter => {
                started = true;
                record.push(std::mem::take(&mut field));
            }
            c => {
                started = true;
                field.push(c);
            }
        }
    }
    if started || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(input: &str) -> Vec<Vec<String>> {
        parse(input).unwrap().rows().to_vec()
    }

    #[test]
    fn simple_file() {
        let f = parse("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(f.headers(), &["a", "b"]);
        assert_eq!(f.rows(), &[vec!["1".to_owned(), "2".into()], vec!["3".into(), "4".into()]]);
    }

    #[test]
    fn no_trailing_newline() {
        assert_eq!(rows("a\n1"), vec![vec!["1".to_owned()]]);
    }

    #[test]
    fn trailing_newline_adds_no_phantom_row() {
        assert_eq!(rows("a\n1\n"), vec![vec!["1".to_owned()]]);
    }

    #[test]
    fn crlf_line_endings() {
        let f = parse("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(f.rows(), &[vec!["1".to_owned(), "2".into()]]);
    }

    #[test]
    fn bare_cr_separates_records() {
        assert_eq!(rows("a\r1\r2"), vec![vec!["1".to_owned()], vec!["2".into()]]);
    }

    #[test]
    fn quoted_fields_with_delimiters() {
        assert_eq!(rows("a\n\"x,y\""), vec![vec!["x,y".to_owned()]]);
    }

    #[test]
    fn quoted_fields_with_newlines() {
        assert_eq!(rows("a\n\"x\ny\""), vec![vec!["x\ny".to_owned()]]);
    }

    #[test]
    fn escaped_quotes() {
        assert_eq!(rows("a\n\"he said \"\"hi\"\"\""), vec![vec!["he said \"hi\"".to_owned()]]);
    }

    #[test]
    fn empty_fields() {
        assert_eq!(rows("a,b,c\n1,,3"), vec![vec!["1".to_owned(), "".into(), "3".into()]]);
        assert_eq!(rows("a,b\n,"), vec![vec!["".to_owned(), "".into()]]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert_eq!(parse("a\n\"oops"), Err(CsvError::UnterminatedQuote(2)));
    }

    #[test]
    fn char_after_quote_is_error() {
        assert!(matches!(parse("a\n\"x\"y"), Err(CsvError::CharAfterQuote(2, 'y'))));
    }

    #[test]
    fn empty_input_is_error_with_header() {
        assert_eq!(parse(""), Err(CsvError::Empty));
    }

    #[test]
    fn headerless_mode_names_columns() {
        let opts = CsvOptions { has_header: false, ..CsvOptions::default() };
        let f = parse_with("1,2\n3,4\n", &opts).unwrap();
        assert_eq!(f.headers(), &["Column1", "Column2"]);
        assert_eq!(f.row_count(), 2);
    }

    #[test]
    fn headerless_empty_input_is_ok() {
        let opts = CsvOptions { has_header: false, ..CsvOptions::default() };
        let f = parse_with("", &opts).unwrap();
        assert_eq!(f.row_count(), 0);
    }

    #[test]
    fn semicolon_delimiter() {
        let opts = CsvOptions { delimiter: ';', ..CsvOptions::default() };
        let f = parse_with("a;b\n1;2\n", &opts).unwrap();
        assert_eq!(f.rows(), &[vec!["1".to_owned(), "2".into()]]);
    }

    #[test]
    fn tab_delimiter() {
        let opts = CsvOptions { delimiter: '\t', ..CsvOptions::default() };
        let f = parse_with("a\tb\n1\t2\n", &opts).unwrap();
        assert_eq!(f.rows(), &[vec!["1".to_owned(), "2".into()]]);
    }

    #[test]
    fn paper_airquality_sample() {
        // The §6.2 example file.
        let input = "Ozone, Temp, Date, Autofilled\n\
                     41, 67, 2012-05-01, 0\n\
                     36.3, 72, 2012-05-02, 1\n\
                     12.1, 74, 3 kveten, 0\n\
                     17.5, #N/A, 2012-05-04, 0\n";
        let f = parse(input).unwrap();
        assert_eq!(f.headers(), &["Ozone", "Temp", "Date", "Autofilled"]);
        assert_eq!(f.row_count(), 4);
        // Cells keep their raw spacing; literal inference trims.
        let v = f.to_value();
        let rows = v.elements().unwrap();
        use tfd_value::Value;
        assert_eq!(rows[0].field("Ozone"), Some(&Value::Int(41)));
        assert_eq!(rows[1].field("Ozone"), Some(&Value::Float(36.3)));
        assert_eq!(rows[3].field("Temp"), Some(&Value::Null));
        assert_eq!(rows[2].field("Date"), Some(&Value::str("3 kveten")));
        assert_eq!(rows[0].field("Autofilled"), Some(&Value::Int(0)));
    }
}
