//! RFC 4180 CSV parsing — single-pass, byte-level.
//!
//! Supports quoted fields (with `""` escapes, embedded delimiters and
//! newlines), CRLF, LF and bare-CR line endings, configurable delimiters,
//! and optional headerless mode (columns are then named `Column1`,
//! `Column2`, … as F# Data does).
//!
//! Like the byte-level JSON parser (`tfd_json::parser`), this is hot-path
//! code: a type provider pushes every sample file through here before
//! inference runs. The splitter therefore works directly on the input
//! bytes:
//!
//! * unquoted fields and quoted fields without `""` escapes are *borrowed*
//!   slices of the input (`Cow::Borrowed`) — one bulk copy materializes
//!   the owned row cell, instead of a per-character `String::push` loop;
//! * only fields containing `""` escapes build an owned buffer (seeded
//!   with the scanned escape-free prefix);
//! * the record/field structure is discovered in the same single pass —
//!   there is no separate tokenize step and no lookahead clone.
//!
//! Two RFC 4180 deviations of the previous char-level implementation are
//! fixed here (the old behavior survives unchanged in
//! [`crate::reference`]):
//!
//! 1. a quote is only special at **field start** — `ab"c,d"e` parses as
//!    the two literal fields `ab"c` and `d"e` instead of swallowing the
//!    delimiter;
//! 2. a bare `\r` inside a quoted field counts as a line break, so error
//!    positions are right on classic-Mac line endings.

use crate::literal::{parse_literal, LiteralOptions};
use crate::CsvFile;
use std::borrow::Cow;
use std::fmt;
use tfd_value::{body_name, Interner, Name, Value};

/// CSV parser configuration.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter; defaults to `,`. Use `;` or `\t` for common
    /// regional/TSV variants.
    pub delimiter: char,
    /// When `true` (default) the first row provides column names;
    /// otherwise columns are named `Column1`, `Column2`, ….
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
        }
    }
}

/// Errors produced by the CSV parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input contained no rows at all (and a header was required).
    Empty,
    /// A quoted field was never closed; the payload is the 1-based line
    /// where the field started.
    UnterminatedQuote(usize),
    /// A closing quote was followed by a stray character; payload is the
    /// 1-based line and the offending character.
    CharAfterQuote(usize, char),
    /// The byte stream is not valid UTF-8; the payload is the 1-based
    /// line where the invalid sequence starts. Only the chunk-fed
    /// [`Streamer`](crate::stream::Streamer) reports this: the one-shot
    /// entry points take `&str` and cannot observe it.
    InvalidUtf8(usize),
    /// A single record exceeded the streamer's byte cap; the payload is
    /// the configured limit and the 1-based line where the record
    /// starts. Only the chunk-fed [`Streamer`](crate::stream::Streamer)
    /// and the engine's recovery drivers report this — the one-shot
    /// entry points already hold the whole input.
    RecordTooLarge(usize, usize),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Empty => write!(f, "input contains no rows"),
            CsvError::UnterminatedQuote(line) => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::CharAfterQuote(line, c) => {
                write!(
                    f,
                    "unexpected character {c:?} after closing quote on line {line}"
                )
            }
            CsvError::InvalidUtf8(line) => {
                write!(f, "input is not valid UTF-8 on line {line}")
            }
            CsvError::RecordTooLarge(limit, line) => {
                write!(
                    f,
                    "record starting on line {line} exceeds size limit of {limit} bytes"
                )
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text with default [`CsvOptions`] (comma-delimited, first
/// row is the header).
///
/// # Errors
///
/// Returns [`CsvError`] for empty input or malformed quoting.
///
/// ```
/// let f = tfd_csv::parse("a,b\n1,\"x,y\"\n")?;
/// assert_eq!(f.rows()[0], vec!["1".to_owned(), "x,y".to_owned()]);
/// # Ok::<(), tfd_csv::CsvError>(())
/// ```
pub fn parse(input: &str) -> Result<CsvFile, CsvError> {
    parse_with(input, &CsvOptions::default())
}

/// Parses CSV text with explicit options.
///
/// # Errors
///
/// Returns [`CsvError`] for empty input (in header mode) or malformed
/// quoting.
pub fn parse_with(input: &str, options: &CsvOptions) -> Result<CsvFile, CsvError> {
    let mut splitter = RecordSplitter::new(input, options.delimiter);
    let mut fields: Vec<Cow<'_, str>> = Vec::new();
    let mut records: Vec<Vec<String>> = Vec::new();
    if options.has_header {
        if !splitter.next_record(&mut fields)? {
            return Err(CsvError::Empty);
        }
        // Header names are trimmed: the paper's air-quality sample writes
        // "Ozone, Temp, ..." yet the provided type has fields Ozone/Temp.
        let headers = fields.iter().map(|h| h.trim().to_owned()).collect();
        while splitter.next_record(&mut fields)? {
            records.push(fields.drain(..).map(Cow::into_owned).collect());
        }
        Ok(CsvFile::new(headers, records))
    } else {
        while splitter.next_record(&mut fields)? {
            records.push(fields.drain(..).map(Cow::into_owned).collect());
        }
        let width = records.iter().map(Vec::len).max().unwrap_or(0);
        let headers = (1..=width).map(|i| format!("Column{i}")).collect();
        Ok(CsvFile::new(headers, records))
    }
}

/// Parses CSV text straight into the universal data [`Value`] of §2.3
/// ("We treat CSV files as lists of records"), skipping the [`CsvFile`]
/// intermediate entirely — the parse→infer hot path, mirroring
/// `tfd_json::parse_value`.
///
/// One pass over the bytes: column names are interned once per file,
/// each cell feeds [`parse_literal`] directly from its (usually
/// borrowed) slice, so cells holding numbers, booleans, dates or `#N/A`
/// allocate nothing at all.
///
/// # Errors
///
/// As [`parse`].
///
/// ```
/// use tfd_value::Value;
/// let v = tfd_csv::parse_value("a,b\n1,x\n")?;
/// assert_eq!(v.elements().unwrap()[0].field("a"), Some(&Value::Int(1)));
/// # Ok::<(), tfd_csv::CsvError>(())
/// ```
pub fn parse_value(input: &str) -> Result<Value, CsvError> {
    parse_value_with(input, &CsvOptions::default(), &LiteralOptions::default())
}

/// [`parse_value`] under explicit CSV and literal-inference options.
///
/// Produces exactly the same value as
/// `parse_with(input, options)?.to_value_with(literals)` (the round-trip
/// suite asserts this), without materializing row `String`s.
///
/// # Errors
///
/// As [`parse_with`].
pub fn parse_value_with(
    input: &str,
    options: &CsvOptions,
    literals: &LiteralOptions,
) -> Result<Value, CsvError> {
    parse_value_in(input, options, literals, Interner::global())
}

/// [`parse_value_with`] interning column names into a caller-supplied
/// arena — the corpus-scoped hot path. Names in the returned value
/// borrow from `interner`'s storage; [`Value::reintern`] whatever must
/// outlive it.
///
/// # Errors
///
/// As [`parse_value_with`].
pub fn parse_value_in(
    input: &str,
    options: &CsvOptions,
    literals: &LiteralOptions,
    interner: &Interner,
) -> Result<Value, CsvError> {
    let mut splitter = RecordSplitter::new(input, options.delimiter);
    let mut fields: Vec<Cow<'_, str>> = Vec::new();
    let row_name = body_name();
    if options.has_header {
        if !splitter.next_record(&mut fields)? {
            return Err(CsvError::Empty);
        }
        let headers: Vec<Name> = fields.iter().map(|h| interner.intern(h.trim())).collect();
        let mut rows = Vec::new();
        while splitter.next_record(&mut fields)? {
            rows.push(Value::record(
                row_name,
                headers.iter().enumerate().map(|(i, &h)| {
                    let cell = fields.get(i).map(Cow::as_ref).unwrap_or("");
                    (h, parse_literal(cell, literals))
                }),
            ));
        }
        Ok(Value::List(rows))
    } else {
        // Headerless mode needs the max width before columns can be
        // named; parse cells eagerly, name and pad afterwards.
        let mut raw_rows: Vec<Vec<Value>> = Vec::new();
        let mut width = 0usize;
        while splitter.next_record(&mut fields)? {
            width = width.max(fields.len());
            raw_rows.push(fields.iter().map(|c| parse_literal(c, literals)).collect());
        }
        let headers: Vec<Name> = (1..=width)
            .map(|i| interner.intern(format!("Column{i}")))
            .collect();
        let missing = parse_literal("", literals);
        Ok(Value::List(
            raw_rows
                .into_iter()
                .map(|mut row| {
                    row.resize(width, missing.clone());
                    Value::record(row_name, headers.iter().copied().zip(row))
                })
                .collect(),
        ))
    }
}

/// Streaming byte-level record splitter: one pass over the input,
/// borrowed cells wherever the source text needs no unescaping, and a
/// caller-owned field buffer reused across records.
///
/// Slicing at delimiter/quote/CR/LF positions is UTF-8-safe: ASCII bytes
/// only occur as standalone characters, and a multi-byte delimiter is
/// matched from its lead byte, which likewise only occurs at a character
/// boundary.
pub(crate) struct RecordSplitter<'a> {
    input: &'a str,
    bytes: &'a [u8],
    delim_buf: [u8; 4],
    delim_len: usize,
    pos: usize,
    line: usize,
}

impl<'a> RecordSplitter<'a> {
    pub(crate) fn new(input: &'a str, delimiter: char) -> RecordSplitter<'a> {
        let mut delim_buf = [0u8; 4];
        let delim_len = delimiter.encode_utf8(&mut delim_buf).len();
        RecordSplitter {
            input,
            bytes: input.as_bytes(),
            delim_buf,
            delim_len,
            pos: 0,
            line: 1,
        }
    }

    /// Clears `fields` and reads the next record into it. `Ok(false)`
    /// signals end of input (with `fields` left empty).
    pub(crate) fn next_record(&mut self, fields: &mut Vec<Cow<'a, str>>) -> Result<bool, CsvError> {
        fields.clear();
        self.next_record_each(|f| fields.push(f))
    }

    /// Byte offset of the next unread record (the chunk-fed streamer
    /// uses it to know how much a speculative record parse consumed).
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Reads the next record, handing each field to `push` as it
    /// completes (no intermediate collection). `Ok(false)` signals end
    /// of input.
    pub(crate) fn next_record_each(
        &mut self,
        mut push: impl FnMut(Cow<'a, str>),
    ) -> Result<bool, CsvError> {
        if self.pos >= self.bytes.len() {
            return Ok(false);
        }
        let delim: [u8; 4] = self.delim_buf;
        let delim = &delim[..self.delim_len];
        let d0 = delim[0];
        loop {
            // --- One field, starting at `self.pos`. ---
            let field: Cow<'a, str> = if self.bytes[self.pos] == b'"' {
                self.quoted_field(delim)?
            } else {
                // Unquoted fast path: SWAR-scan to the next delimiter
                // byte or line ending instead of stepping byte by byte.
                // Mid-field quotes are literal content (RFC 4180 fix 1),
                // so the scan need not stop at them.
                let start = self.pos;
                loop {
                    match crate::scan::find_any3(&self.bytes[self.pos..], d0, b'\n', b'\r') {
                        None => {
                            self.pos = self.bytes.len();
                            break;
                        }
                        Some(off) => {
                            self.pos += off;
                            let b = self.bytes[self.pos];
                            if b != d0 || self.bytes[self.pos..].starts_with(delim) {
                                break;
                            }
                            // A delimiter lead byte that is not a full
                            // (multi-byte) delimiter: ordinary content.
                            self.pos += 1;
                        }
                    }
                }
                Cow::Borrowed(&self.input[start..self.pos])
            };
            push(field);

            // --- Terminator: delimiter continues the record, a line
            // ending or EOF finishes it. ---
            match self.bytes.get(self.pos) {
                Some(&b) if b == d0 && self.bytes[self.pos..].starts_with(delim) => {
                    self.pos += delim.len();
                    // EOF right after a delimiter means one last empty
                    // field ends both the record and the input.
                    if self.pos == self.bytes.len() {
                        push(Cow::Borrowed(""));
                        return Ok(true);
                    }
                }
                Some(b'\n') => {
                    self.pos += 1;
                    self.line += 1;
                    return Ok(true);
                }
                Some(b'\r') => {
                    self.pos += if self.bytes.get(self.pos + 1) == Some(&b'\n') {
                        2
                    } else {
                        1
                    };
                    self.line += 1;
                    return Ok(true);
                }
                None => return Ok(true),
                Some(_) => unreachable!("field scan stops only at delimiter, CR, LF or EOF"),
            }
        }
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    /// Parses a `"`-opened field. Escape-free contents — the common case
    /// — are returned as a borrowed slice; a `""` escape switches to an
    /// owned buffer seeded with the prefix scanned so far.
    fn quoted_field(&mut self, delim: &[u8]) -> Result<Cow<'a, str>, CsvError> {
        let quote_line = self.line;
        self.pos += 1; // opening '"'
        let start = self.pos;
        let mut owned: Option<String> = None;
        let mut run_start = start;
        loop {
            // Bulk-skip ordinary quoted content: only quotes and line
            // endings (which the error positions must count) matter.
            if let Some(off) = crate::scan::find_any3(&self.bytes[self.pos..], b'"', b'\n', b'\r') {
                self.pos += off;
            } else {
                self.pos = self.bytes.len();
            }
            match self.bytes.get(self.pos) {
                None => return Err(CsvError::UnterminatedQuote(quote_line)),
                Some(b'"') => {
                    if self.bytes.get(self.pos + 1) == Some(&b'"') {
                        // Escaped quote: flush the run plus one '"', then
                        // continue after the pair.
                        let out = owned
                            .get_or_insert_with(|| String::with_capacity(self.pos - start + 16));
                        out.push_str(&self.input[run_start..self.pos]);
                        out.push('"');
                        self.pos += 2;
                        run_start = self.pos;
                    } else {
                        let content = match owned {
                            Some(mut out) => {
                                out.push_str(&self.input[run_start..self.pos]);
                                Cow::Owned(out)
                            }
                            None => Cow::Borrowed(&self.input[start..self.pos]),
                        };
                        self.pos += 1; // closing '"'
                                       // After the closing quote only a delimiter, a line
                                       // ending or EOF may follow.
                        match self.bytes.get(self.pos) {
                            None | Some(b'\n' | b'\r') => {}
                            Some(_) if self.bytes[self.pos..].starts_with(delim) => {}
                            Some(_) => {
                                let c = self.input[self.pos..].chars().next().expect("in-bounds");
                                return Err(CsvError::CharAfterQuote(self.line, c));
                            }
                        }
                        return Ok(content);
                    }
                }
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'\r') => {
                    // A bare CR is a line break too (RFC 4180 fix 2); CRLF
                    // counts once, via the '\n' arm.
                    if self.bytes.get(self.pos + 1) != Some(&b'\n') {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
                Some(_) => unreachable!("scan stops only at quote, CR, LF or EOF"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(input: &str) -> Vec<Vec<String>> {
        parse(input).unwrap().rows().to_vec()
    }

    #[test]
    fn simple_file() {
        let f = parse("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(f.headers(), &["a", "b"]);
        assert_eq!(
            f.rows(),
            &[
                vec!["1".to_owned(), "2".into()],
                vec!["3".into(), "4".into()]
            ]
        );
    }

    #[test]
    fn no_trailing_newline() {
        assert_eq!(rows("a\n1"), vec![vec!["1".to_owned()]]);
    }

    #[test]
    fn trailing_newline_adds_no_phantom_row() {
        assert_eq!(rows("a\n1\n"), vec![vec!["1".to_owned()]]);
    }

    #[test]
    fn crlf_line_endings() {
        let f = parse("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(f.rows(), &[vec!["1".to_owned(), "2".into()]]);
    }

    #[test]
    fn bare_cr_separates_records() {
        assert_eq!(
            rows("a\r1\r2"),
            vec![vec!["1".to_owned()], vec!["2".into()]]
        );
    }

    #[test]
    fn quoted_fields_with_delimiters() {
        assert_eq!(rows("a\n\"x,y\""), vec![vec!["x,y".to_owned()]]);
    }

    #[test]
    fn quoted_fields_with_newlines() {
        assert_eq!(rows("a\n\"x\ny\""), vec![vec!["x\ny".to_owned()]]);
    }

    #[test]
    fn escaped_quotes() {
        assert_eq!(
            rows("a\n\"he said \"\"hi\"\"\""),
            vec![vec!["he said \"hi\"".to_owned()]]
        );
    }

    #[test]
    fn empty_fields() {
        assert_eq!(
            rows("a,b,c\n1,,3"),
            vec![vec!["1".to_owned(), "".into(), "3".into()]]
        );
        assert_eq!(rows("a,b\n,"), vec![vec!["".to_owned(), "".into()]]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert_eq!(parse("a\n\"oops"), Err(CsvError::UnterminatedQuote(2)));
    }

    #[test]
    fn char_after_quote_is_error() {
        assert!(matches!(
            parse("a\n\"x\"y"),
            Err(CsvError::CharAfterQuote(2, 'y'))
        ));
    }

    #[test]
    fn empty_input_is_error_with_header() {
        assert_eq!(parse(""), Err(CsvError::Empty));
    }

    #[test]
    fn headerless_mode_names_columns() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let f = parse_with("1,2\n3,4\n", &opts).unwrap();
        assert_eq!(f.headers(), &["Column1", "Column2"]);
        assert_eq!(f.row_count(), 2);
    }

    #[test]
    fn headerless_empty_input_is_ok() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let f = parse_with("", &opts).unwrap();
        assert_eq!(f.row_count(), 0);
    }

    #[test]
    fn semicolon_delimiter() {
        let opts = CsvOptions {
            delimiter: ';',
            ..CsvOptions::default()
        };
        let f = parse_with("a;b\n1;2\n", &opts).unwrap();
        assert_eq!(f.rows(), &[vec!["1".to_owned(), "2".into()]]);
    }

    #[test]
    fn tab_delimiter() {
        let opts = CsvOptions {
            delimiter: '\t',
            ..CsvOptions::default()
        };
        let f = parse_with("a\tb\n1\t2\n", &opts).unwrap();
        assert_eq!(f.rows(), &[vec!["1".to_owned(), "2".into()]]);
    }

    #[test]
    fn multibyte_delimiter() {
        let opts = CsvOptions {
            delimiter: '§',
            ..CsvOptions::default()
        };
        let f = parse_with("a§b\n1§\"x§y\"\n", &opts).unwrap();
        assert_eq!(f.headers(), &["a", "b"]);
        assert_eq!(f.rows(), &[vec!["1".to_owned(), "x§y".into()]]);
    }

    // --- Regression tests for the two RFC 4180 fixes. Both inputs are
    // mis-parsed by the retained char-level `crate::reference` parser
    // (see the `bug_*` tests there). ---

    /// Fix 1: a quote appearing mid-field is literal content; only a
    /// quote at field start opens a quoted field.
    #[test]
    fn midfield_quote_is_literal() {
        assert_eq!(
            rows("h1,h2\nab\"c,d\"e"),
            vec![vec!["ab\"c".to_owned(), "d\"e".into()]]
        );
        // The reference parser swallows the delimiter (EOF variant) or
        // rejects the row outright:
        assert_eq!(
            crate::reference::parse("h1,h2\nab\"c,d\"").unwrap().rows(),
            &[vec!["abc,d".to_owned()]]
        );
        assert_eq!(
            crate::reference::parse("h1,h2\nab\"c,d\"e"),
            Err(CsvError::CharAfterQuote(2, 'e'))
        );
    }

    /// Fix 1 corollary: a field that merely *ends* with content after a
    /// leading non-quote keeps its quotes verbatim.
    #[test]
    fn trailing_and_inner_quotes_stay_literal() {
        assert_eq!(rows("h\na\"b\"\n"), vec![vec!["a\"b\"".to_owned()]]);
        assert_eq!(rows("h\nab\"\n"), vec![vec!["ab\"".to_owned()]]);
        assert_eq!(rows("h\n x\"y\n"), vec![vec![" x\"y".to_owned()]]);
    }

    /// Fix 2: a bare `\r` inside a quoted field advances the line
    /// counter, so errors after it report the right line.
    #[test]
    fn bare_cr_in_quoted_field_counts_lines() {
        // `x` sits on physical line 3: after `h\n` and the quoted `\r`.
        assert_eq!(parse("h\n\"a\rb\"x"), Err(CsvError::CharAfterQuote(3, 'x')));
        // The reference parser reports line 2 for the same input:
        assert_eq!(
            crate::reference::parse("h\n\"a\rb\"x"),
            Err(CsvError::CharAfterQuote(2, 'x'))
        );
        // A CRLF inside quotes still counts once:
        assert_eq!(
            parse("h\n\"a\r\nb\"x"),
            Err(CsvError::CharAfterQuote(3, 'x'))
        );
        // And a later unterminated quote reports its true start line.
        assert_eq!(
            parse("h\n\"a\rb\",ok\n\"oops"),
            Err(CsvError::UnterminatedQuote(4))
        );
    }

    /// Quoted-field content keeps its line endings verbatim.
    #[test]
    fn quoted_line_endings_preserved_verbatim() {
        assert_eq!(rows("a\n\"x\r\ny\""), vec![vec!["x\r\ny".to_owned()]]);
        assert_eq!(rows("a\n\"x\ry\""), vec![vec!["x\ry".to_owned()]]);
    }

    #[test]
    fn quoted_field_at_eof() {
        assert_eq!(rows("a\n\"x\""), vec![vec!["x".to_owned()]]);
        assert_eq!(rows("a,b\n1,\"x\""), vec![vec!["1".to_owned(), "x".into()]]);
        assert_eq!(rows("a\n\"\""), vec![vec!["".to_owned()]]);
    }

    #[test]
    fn empty_line_yields_single_empty_cell_record() {
        // Matches the char-level reference: an empty line is a record
        // with one empty field, not nothing.
        assert_eq!(rows("a\n\n1"), vec![vec!["".to_owned()], vec!["1".into()]]);
    }

    #[test]
    fn utf8_in_cells_and_headers() {
        let f = parse("sloupec,météo\nžluťoučký,🌧\n").unwrap();
        assert_eq!(f.headers(), &["sloupec", "météo"]);
        assert_eq!(f.rows(), &[vec!["žluťoučký".to_owned(), "🌧".into()]]);
    }

    #[test]
    fn parse_value_agrees_with_parse_to_value() {
        let docs = [
            "a,b\n1,x\n2,y\n",
            "a,b\n1\n2,y,z\n",                      // ragged rows
            "a\n\"x,y\"\n\"he said \"\"hi\"\"\"\n", // quoting
            "Ozone, Temp\n41, 67\n17.5, #N/A\n",    // trimmed headers, nulls
            "a,b\r\n1,2\r\n",
            "a\n",
        ];
        for doc in docs {
            assert_eq!(
                parse_value(doc).unwrap(),
                parse(doc).unwrap().to_value(),
                "mismatch on {doc:?}"
            );
        }
    }

    #[test]
    fn parse_value_headerless_agrees_with_parse_to_value() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let lits = LiteralOptions::default();
        for doc in ["1,2\n3,4,5\n", "", "x\n"] {
            assert_eq!(
                parse_value_with(doc, &opts, &lits).unwrap(),
                parse_with(doc, &opts).unwrap().to_value_with(&lits),
                "mismatch on {doc:?}"
            );
        }
    }

    #[test]
    fn parse_value_propagates_errors() {
        assert_eq!(parse_value(""), Err(CsvError::Empty));
        assert_eq!(
            parse_value("a\n\"oops"),
            Err(CsvError::UnterminatedQuote(2))
        );
    }

    #[test]
    fn paper_airquality_sample() {
        // The §6.2 example file.
        let input = "Ozone, Temp, Date, Autofilled\n\
                     41, 67, 2012-05-01, 0\n\
                     36.3, 72, 2012-05-02, 1\n\
                     12.1, 74, 3 kveten, 0\n\
                     17.5, #N/A, 2012-05-04, 0\n";
        let f = parse(input).unwrap();
        assert_eq!(f.headers(), &["Ozone", "Temp", "Date", "Autofilled"]);
        assert_eq!(f.row_count(), 4);
        // Cells keep their raw spacing; literal inference trims.
        let v = f.to_value();
        let rows = v.elements().unwrap();
        use tfd_value::Value;
        assert_eq!(rows[0].field("Ozone"), Some(&Value::Int(41)));
        assert_eq!(rows[1].field("Ozone"), Some(&Value::Float(36.3)));
        assert_eq!(rows[3].field("Temp"), Some(&Value::Null));
        assert_eq!(rows[2].field("Date"), Some(&Value::str("3 kveten")));
        assert_eq!(rows[0].field("Autofilled"), Some(&Value::Int(0)));
    }
}
