//! # tfd-csv — CSV front-end
//!
//! An RFC 4180 CSV parser plus the primitive-literal inference that §6.2
//! of the paper describes:
//!
//! > "One difference between JSON and CSV is that in CSV, the literals
//! > have no data types and so we also need to infer the shape of
//! > primitive values. […] The value `#N/A` is commonly used to represent
//! > missing values in CSV and is treated as null."
//!
//! A CSV file maps onto the universal data value as a collection of
//! unnamed records, one per row, with a field per column (§2.3: "We treat
//! CSV files as lists of records").
//!
//! The [`literal`] module — also used by the XML front-end — turns the
//! untyped cell text into typed [`Value`]s (`"42"` → `Int`, `"true"` →
//! `Bool`, `"#N/A"` → `Null`, …) and provides the date detection that
//! makes `2012-05-01` a date but the mixed-format column of the paper's
//! example a `string`.
//!
//! [`parse`] runs the single-pass byte-level splitter; the previous
//! char-level state machine is retained as [`mod@reference`] (bugs and all)
//! so benchmarks and regression tests can compare against it.
//!
//! # Example
//!
//! ```
//! let file = tfd_csv::parse("a,b\n1,x\n2,y\n")?;
//! assert_eq!(file.headers(), &["a", "b"]);
//! let value = file.to_value();
//! assert_eq!(value.elements().unwrap().len(), 2);
//! # Ok::<(), tfd_csv::CsvError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod literal;
mod parser;
pub mod reference;
pub mod scan;
pub mod stream;

pub use literal::{parse_date, parse_literal, Date, LiteralOptions};
pub use parser::{
    parse, parse_value, parse_value_in, parse_value_with, parse_with, CsvError, CsvOptions,
};
pub use stream::{BoundaryScanner, Streamer};

use tfd_value::{body_name, Name, Value};

/// A parsed CSV file: a header row and data rows of raw cell text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvFile {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvFile {
    /// Creates a CSV file from headers and rows.
    ///
    /// Rows shorter than the header are padded with empty cells when
    /// converted to values; longer rows keep only the headed columns.
    pub fn new(headers: Vec<String>, rows: Vec<Vec<String>>) -> CsvFile {
        CsvFile { headers, rows }
    }

    /// The column names.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows (raw, undecoded cell text).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Converts the file to the universal data value with default
    /// [`LiteralOptions`]: a collection of `•`-named records, one per
    /// row, with each cell passed through [`parse_literal`].
    pub fn to_value(&self) -> Value {
        self.to_value_with(&LiteralOptions::default())
    }

    /// Converts the file to the universal data value with explicit
    /// literal-inference options.
    ///
    /// Column names are interned once for the whole file, so each of the
    /// (possibly millions of) rows copies `Name` symbols instead of
    /// allocating one `String` per cell.
    pub fn to_value_with(&self, options: &LiteralOptions) -> Value {
        let row_name = body_name();
        let columns: Vec<Name> = self.headers.iter().map(Name::from).collect();
        Value::List(
            self.rows
                .iter()
                .map(|row| {
                    Value::record(
                        row_name,
                        columns.iter().enumerate().map(|(i, &h)| {
                            let cell = row.get(i).map(String::as_str).unwrap_or("");
                            (h, parse_literal(cell, options))
                        }),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfd_value::BODY_NAME;

    #[test]
    fn to_value_builds_row_records() {
        let f = CsvFile::new(
            vec!["a".into(), "b".into()],
            vec![vec!["1".into(), "x".into()]],
        );
        let v = f.to_value();
        let rows = v.elements().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].record_name(), Some(BODY_NAME));
        assert_eq!(rows[0].field("a"), Some(&Value::Int(1)));
        assert_eq!(rows[0].field("b"), Some(&Value::str("x")));
    }

    #[test]
    fn short_rows_pad_with_missing() {
        let f = CsvFile::new(vec!["a".into(), "b".into()], vec![vec!["1".into()]]);
        let v = f.to_value();
        assert_eq!(v.elements().unwrap()[0].field("b"), Some(&Value::Null));
    }

    #[test]
    fn long_rows_drop_unheaded_cells() {
        let f = CsvFile::new(vec!["a".into()], vec![vec!["1".into(), "spill".into()]]);
        let v = f.to_value();
        assert_eq!(v.elements().unwrap()[0].fields().unwrap().len(), 1);
    }
}
