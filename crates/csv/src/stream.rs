//! Chunk-fed, incremental CSV parsing — the streaming front-end.
//!
//! [`Streamer`] accepts arbitrary `feed(&[u8])` slices — the corpus may
//! be split at **any** byte boundary, including inside a CRLF pair, a
//! `""` escape, a quoted field or a multi-byte delimiter/cell character
//! — and emits one row [`Value`] per completed record. In header mode
//! the first record is interned as the column names (once, exactly as
//! the one-shot [`parse_value_with`](crate::parse_value_with) does) and
//! every following record becomes a `•`-named row record. Peak memory is
//! one record plus the header names, independent of corpus size.
//!
//! The design mirrors `tfd_json::stream`:
//!
//! 1. a **resumable boundary scanner** — an explicit state machine with
//!    one state per quoting situation (`CMode`), a partial-match
//!    counter for multi-byte delimiters and a pending-LF state for CRLF
//!    pairs split across chunks — finds record boundaries (line endings
//!    outside quoted fields) wherever the chunks fall;
//! 2. each completed record is split by the one-shot byte-level
//!    `RecordSplitter` (borrowed from the chunk when
//!    the record does not cross a boundary) and fed cell-by-cell into
//!    the shared literal inference, so streaming rows are
//!    **byte-identical** to the one-shot rows by construction.
//!
//! Error line numbers are translated from record-local to stream-global,
//! so malformed quoting reports exactly the line the one-shot parser
//! would, regardless of chunking.
//!
//! One documented divergence remains in headerless mode: the one-shot
//! parser pads short rows with nulls up to the *corpus-global* maximum
//! width `W` — which requires the whole corpus — while the streamer
//! emits each row at its own width. Column **names**, however, are
//! interned exactly once per streamer (a single `Column1..ColumnN`
//! table grown on demand, shared by the speculative and resumable
//! paths), so every row's `ColumnK` is the same `Name` symbol the
//! one-shot parser uses and the inferred shapes agree *structurally*: a
//! missing field and an explicit null both make the field nullable.
//! `tests/streaming_agreement.rs` pins this with a headerless
//! differential regression.

use crate::literal::{parse_literal, LiteralOptions};
use crate::parser::{CsvError, CsvOptions, RecordSplitter};
use std::borrow::Cow;
use tfd_value::{body_name, Field, Interner, Name, Value};

/// Scanner state between two consumed bytes. Every variant is resumable:
/// a chunk may end (and the next begin) in any of them. The `u8` on
/// `Start`/`Unquoted`/`AfterQuote` counts delimiter bytes matched so far
/// (multi-byte delimiters can straddle chunks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CMode {
    /// After a record-ending line break (or at stream start): the next
    /// byte, whatever it is, opens a record.
    Between,
    /// A record just ended at a `\r`; a following `\n` belongs to that
    /// same (CRLF) line ending.
    PendingLf,
    /// At the start of a field — the one place a quote is special.
    Start(u8),
    /// Inside unquoted field content (quotes here are literal).
    Unquoted(u8),
    /// Inside a quoted field (line endings here are content).
    Quoted,
    /// Inside a quoted field, immediately after a `"`: either the first
    /// half of a `""` escape or the field's closing quote.
    QuoteQuote,
    /// After a closing quote: only a delimiter or line ending may
    /// follow; anything else is the one-shot `CharAfterQuote` error,
    /// reproduced when the record is parsed.
    AfterQuote(u8),
}

/// A scan-only record-boundary finder: the [`Streamer`]'s resumable
/// quoting state machine (`CMode`) without the cell splitting — it
/// never materializes a row, only reports where records end (line
/// endings outside quoted fields).
///
/// This is what the parallel driver (`tfd_core::engine`) uses to cut a
/// corpus into shards that never split a row. A boundary after a bare
/// `\r` is deliberately *deferred* until the next byte proves it is not
/// the first half of a CRLF pair — so a reported offset is always a
/// position where a fresh parser sees exactly the remaining record
/// sequence. The header row counts as a record here; the driver handles
/// it via the format prologue.
///
/// ```
/// let mut s = tfd_csv::stream::BoundaryScanner::new();
/// let mut cuts = Vec::new();
/// s.feed(b"a,b\n1,\"x\ny\"\r\n2,z", &mut |off| cuts.push(off));
/// assert_eq!(cuts, vec![4, 13]); // after the header, after the CRLF
/// assert!(s.in_record()); // "2,z" awaits its line ending
/// ```
#[derive(Debug, Clone)]
pub struct BoundaryScanner {
    mode: CMode,
    delim: [u8; 4],
    dlen: u8,
}

impl Default for BoundaryScanner {
    fn default() -> Self {
        BoundaryScanner::new()
    }
}

impl BoundaryScanner {
    /// A scanner for comma-delimited input, positioned between records.
    pub fn new() -> BoundaryScanner {
        BoundaryScanner::with_options(&CsvOptions::default())
    }

    /// A scanner honouring the given delimiter.
    pub fn with_options(options: &CsvOptions) -> BoundaryScanner {
        let mut delim = [0u8; 4];
        let dlen = options.delimiter.encode_utf8(&mut delim).len() as u8;
        BoundaryScanner {
            mode: CMode::Between,
            delim,
            dlen,
        }
    }

    /// Feeds one chunk; `boundary` receives the chunk-relative offset
    /// just past each record completed within it — after the LF of a
    /// CRLF pair, after a lone LF, or *before* the byte following a bare
    /// CR (state carries across calls, so chunks may split records, `""`
    /// escapes and CRLF pairs anywhere).
    pub fn feed(&mut self, chunk: &[u8], boundary: &mut impl FnMut(usize)) {
        let d0 = self.delim[0];
        let dlen = self.dlen;
        let n = chunk.len();
        let mut i = 0usize;
        while i < n {
            match self.mode {
                CMode::Between => {
                    // The next byte, whatever it is, opens a record.
                    self.mode = CMode::Start(0);
                }
                CMode::PendingLf => {
                    self.mode = CMode::Between;
                    if chunk[i] == b'\n' {
                        i += 1;
                    }
                    // The record that ended at the `\r` is only now
                    // known to be safely cuttable.
                    boundary(i);
                }
                CMode::Start(m) | CMode::Unquoted(m) | CMode::AfterQuote(m) if m > 0 => {
                    if chunk[i] == self.delim[m as usize] {
                        i += 1;
                        self.mode = if m + 1 == dlen {
                            CMode::Start(0) // delimiter complete: next field
                        } else {
                            match self.mode {
                                CMode::Start(_) => CMode::Start(m + 1),
                                CMode::Unquoted(_) => CMode::Unquoted(m + 1),
                                _ => CMode::AfterQuote(m + 1),
                            }
                        };
                    } else {
                        // Failed partial match: the matched prefix was
                        // ordinary content; re-examine the byte.
                        self.mode = CMode::Unquoted(0);
                    }
                }
                CMode::Start(_) => {
                    let b = chunk[i];
                    match b {
                        b'"' => {
                            i += 1;
                            self.mode = CMode::Quoted;
                        }
                        b'\n' | b'\r' => self.end_record(&mut i, b, boundary),
                        _ if b == d0 => {
                            i += 1;
                            self.mode = if dlen == 1 {
                                CMode::Start(0)
                            } else {
                                CMode::Start(1)
                            };
                        }
                        _ => {
                            i += 1;
                            self.mode = CMode::Unquoted(0);
                        }
                    }
                }
                // Hot loop: unquoted content runs to the next delimiter
                // or line ending, SWAR-scanned (`tfd_value::scan`).
                CMode::Unquoted(_) => {
                    match tfd_value::scan::find_any3(&chunk[i..], d0, b'\n', b'\r') {
                        None => i = n, // the whole remaining chunk is content
                        Some(off) => {
                            i += off;
                            let b = chunk[i];
                            match b {
                                b'\n' | b'\r' => self.end_record(&mut i, b, boundary),
                                _ => {
                                    // d0: a (possibly partial) delimiter.
                                    i += 1;
                                    self.mode = if dlen == 1 {
                                        CMode::Start(0)
                                    } else {
                                        CMode::Unquoted(1)
                                    };
                                }
                            }
                        }
                    }
                }
                // Hot loop: quoted content runs to the next quote.
                CMode::Quoted => match tfd_value::scan::find_byte(&chunk[i..], b'"') {
                    None => i = n,
                    Some(off) => {
                        i += off + 1;
                        self.mode = CMode::QuoteQuote;
                    }
                },
                CMode::QuoteQuote => {
                    if chunk[i] == b'"' {
                        // `""` escape: still inside the quoted field.
                        i += 1;
                        self.mode = CMode::Quoted;
                    } else {
                        // The previous quote closed the field.
                        self.mode = CMode::AfterQuote(0);
                    }
                }
                CMode::AfterQuote(_) => {
                    let b = chunk[i];
                    match b {
                        b'\n' | b'\r' => self.end_record(&mut i, b, boundary),
                        _ if b == d0 => {
                            i += 1;
                            self.mode = if dlen == 1 {
                                CMode::Start(0)
                            } else {
                                CMode::AfterQuote(1)
                            };
                        }
                        _ => {
                            // Stray byte after a closing quote: the
                            // record parse reproduces the one-shot
                            // `CharAfterQuote` error.
                            i += 1;
                            self.mode = CMode::Unquoted(0);
                        }
                    }
                }
            }
        }
    }

    /// Consumes the line-ending byte `b` at `chunk[*i]`. A LF ends the
    /// record immediately; a CR defers the boundary until the next byte
    /// (it may be the first half of a CRLF).
    fn end_record(&mut self, i: &mut usize, b: u8, boundary: &mut impl FnMut(usize)) {
        *i += 1;
        if b == b'\r' {
            self.mode = CMode::PendingLf;
        } else {
            self.mode = CMode::Between;
            boundary(*i);
        }
    }

    /// True when the last fed byte was inside a record — including the
    /// half-open state after a bare `\r`, whose boundary is still
    /// deferred (the stream ending there is a complete record; the
    /// engine's tail handling covers it).
    pub fn in_record(&self) -> bool {
        !matches!(self.mode, CMode::Between)
    }
}

/// Default cap on one record's carry-over bytes (16 MiB): large enough
/// for any schema-shaped row, small enough that an unclosed quote
/// cannot buffer a multi-gigabyte stream.
pub const DEFAULT_MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;

/// A chunk-fed incremental CSV parser.
///
/// Feed arbitrary byte slices; each completed row is handed to the sink
/// as a `•`-named record (never the header row, which is interned as the
/// column names). Call [`finish`](Streamer::finish) after the last
/// chunk.
///
/// ```
/// use tfd_value::Value;
/// let mut s = tfd_csv::stream::Streamer::new();
/// let mut rows = Vec::new();
/// s.feed(b"a,b\n1,\"x", &mut |v| rows.push(v))?;   // split inside quotes
/// s.feed(b",y\"\r", &mut |v| rows.push(v))?;       // split inside CRLF
/// s.feed(b"\n2,z\n", &mut |v| rows.push(v))?;
/// s.finish(&mut |v| rows.push(v))?;
/// assert_eq!(rows.len(), 2);
/// assert_eq!(rows[0].field("b"), Some(&Value::str("x,y")));
/// # Ok::<(), tfd_csv::CsvError>(())
/// ```
pub struct Streamer {
    delimiter: char,
    has_header: bool,
    /// Cap on one record's carry-over bytes: a row still open after
    /// buffering this much fails with [`CsvError::RecordTooLarge`]
    /// instead of buffering the rest of the stream.
    max_record_bytes: usize,
    literals: LiteralOptions,
    /// Column names, interned from the first record in header mode.
    headers: Option<Vec<Name>>,
    /// Cache of `Column1..ColumnN` names for headerless mode.
    columns: Vec<Name>,
    /// Arena column names intern into (a shared handle — cloning an
    /// [`Interner`] shares the arena).
    interner: Interner,
    row_name: Name,
    mode: CMode,
    delim: [u8; 4],
    dlen: u8,
    /// Carry-over bytes of a record that spans chunk boundaries.
    buf: Vec<u8>,
    /// 1-based line of the next byte (same counting rules as the
    /// one-shot splitter: LF, CRLF and bare CR each advance once).
    line: usize,
    prev_cr: bool,
    /// Line on which the current record starts.
    start_line: usize,
    failed: Option<CsvError>,
}

impl Default for Streamer {
    fn default() -> Self {
        Streamer::new()
    }
}

impl Streamer {
    /// A streamer with default [`CsvOptions`] and [`LiteralOptions`]
    /// (comma-delimited, first record is the header).
    pub fn new() -> Streamer {
        Streamer::with_options(&CsvOptions::default(), &LiteralOptions::default())
    }

    /// A streamer with explicit CSV and literal-inference options.
    pub fn with_options(options: &CsvOptions, literals: &LiteralOptions) -> Streamer {
        Streamer::with_options_in(options, literals, Interner::global().clone())
    }

    /// A streamer interning column names into a caller-supplied arena —
    /// the corpus-scoped streaming path. The handle is cloned per
    /// streamer; all clones share one arena, so parallel shard workers
    /// can stream into a single corpus arena.
    pub fn with_options_in(
        options: &CsvOptions,
        literals: &LiteralOptions,
        interner: Interner,
    ) -> Streamer {
        let mut delim = [0u8; 4];
        let dlen = options.delimiter.encode_utf8(&mut delim).len() as u8;
        Streamer {
            delimiter: options.delimiter,
            has_header: options.has_header,
            max_record_bytes: DEFAULT_MAX_RECORD_BYTES,
            literals: literals.clone(),
            headers: None,
            columns: Vec::new(),
            interner,
            row_name: body_name(),
            mode: CMode::Between,
            delim,
            dlen,
            buf: Vec::new(),
            line: 1,
            prev_cr: false,
            start_line: 1,
            failed: None,
        }
    }

    /// The header names captured so far (`None` until the header record
    /// completes, or forever in headerless mode).
    pub fn headers(&self) -> Option<&[Name]> {
        self.headers.as_deref()
    }

    /// Pre-seeds the captured header names, as if the header record had
    /// already streamed past. The parallel driver uses this to hand
    /// every shard worker the header that shard 0's byte range carries —
    /// a seeded streamer treats its very first record as a data row.
    pub fn seed_headers(&mut self, headers: Vec<Name>) {
        self.headers = Some(headers);
    }

    /// Caps one record's carry-over bytes (default
    /// [`DEFAULT_MAX_RECORD_BYTES`]): a row still open after buffering
    /// `limit` bytes fails with [`CsvError::RecordTooLarge`] carrying
    /// the row's start line, so an unclosed quote cannot buffer the
    /// whole stream.
    pub fn set_max_record_bytes(&mut self, limit: usize) {
        self.max_record_bytes = limit;
    }

    /// Feeds one chunk; every row completed within it is passed to
    /// `sink` in input order.
    ///
    /// # Errors
    ///
    /// The first malformed record poisons the streamer: the error is
    /// returned now and again from any later call.
    pub fn feed(&mut self, chunk: &[u8], sink: &mut impl FnMut(Value)) -> Result<(), CsvError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        let r = self.feed_inner(chunk, sink);
        if let Err(e) = &r {
            self.failed = Some(e.clone());
        }
        r
    }

    /// Signals end of input: a pending final record (no trailing
    /// newline) is parsed and emitted.
    ///
    /// # Errors
    ///
    /// As [`feed`](Streamer::feed); additionally [`CsvError::Empty`]
    /// when a header was required but the input held no records at all.
    pub fn finish(&mut self, sink: &mut impl FnMut(Value)) -> Result<(), CsvError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        let r = self.finish_inner(sink);
        if let Err(e) = &r {
            self.failed = Some(e.clone());
        }
        r
    }

    fn finish_inner(&mut self, sink: &mut impl FnMut(Value)) -> Result<(), CsvError> {
        match self.mode {
            CMode::Between | CMode::PendingLf => {}
            _ => {
                let buf = std::mem::take(&mut self.buf);
                let r = self.emit_record(&buf, sink);
                self.buf = buf;
                self.buf.clear();
                self.mode = CMode::Between;
                r?;
            }
        }
        if self.has_header && self.headers.is_none() {
            return Err(CsvError::Empty);
        }
        Ok(())
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    fn feed_inner(&mut self, chunk: &[u8], sink: &mut impl FnMut(Value)) -> Result<(), CsvError> {
        let d0 = self.delim[0];
        let dlen = self.dlen;
        let n = chunk.len();
        // The chunk's valid-UTF-8 prefix, validated once: records that
        // start inside it can be split straight off the chunk when their
        // line ending falls before the chunk end — no boundary pre-scan.
        let text: &str = match std::str::from_utf8(chunk) {
            Ok(t) => t,
            Err(e) => std::str::from_utf8(&chunk[..e.valid_up_to()]).expect("validated prefix"),
        };
        // Index in `chunk` where the unbuffered part of the current
        // record starts (0 while a record carried over in `buf` is open).
        let mut rec_start = 0usize;
        let mut i = 0usize;
        while i < n {
            match self.mode {
                CMode::Between => {
                    self.start_line = self.line;
                    rec_start = i;
                    debug_assert!(self.buf.is_empty());
                    // Fast path: split the row straight off the chunk.
                    // Indefinite outcomes (the row may continue past the
                    // chunk end) and errors are discarded; the resumable
                    // scanner below re-derives them from the exact
                    // record slice.
                    if i < text.len() {
                        if let Some(consumed) = self.speculative_row(&text[i..], sink) {
                            if consumed > self.max_record_bytes {
                                return Err(self.too_large());
                            }
                            self.advance_over(&chunk[i..i + consumed]);
                            i += consumed;
                            continue;
                        }
                    }
                    self.mode = CMode::Start(0);
                    // Re-examine the byte as the first of the record.
                }
                CMode::PendingLf => {
                    self.mode = CMode::Between;
                    if chunk[i] == b'\n' {
                        self.advance(b'\n');
                        i += 1;
                    }
                    // Otherwise re-examine the byte in `Between`.
                }
                CMode::Start(m) | CMode::Unquoted(m) | CMode::AfterQuote(m) if m > 0 => {
                    if chunk[i] == self.delim[m as usize] {
                        i += 1;
                        self.mode = if m + 1 == dlen {
                            CMode::Start(0) // delimiter complete: next field
                        } else {
                            match self.mode {
                                CMode::Start(_) => CMode::Start(m + 1),
                                CMode::Unquoted(_) => CMode::Unquoted(m + 1),
                                _ => CMode::AfterQuote(m + 1),
                            }
                        };
                    } else {
                        // Failed partial match: the matched prefix was
                        // ordinary content; re-examine the byte.
                        self.mode = CMode::Unquoted(0);
                    }
                }
                CMode::Start(_) => {
                    let b = chunk[i];
                    match b {
                        b'"' => {
                            i += 1;
                            self.mode = CMode::Quoted;
                        }
                        b'\n' | b'\r' => self.end_record(chunk, rec_start, &mut i, b, sink)?,
                        _ if b == d0 => {
                            i += 1;
                            self.mode = if dlen == 1 {
                                CMode::Start(0)
                            } else {
                                CMode::Start(1)
                            };
                        }
                        _ => {
                            i += 1;
                            self.mode = CMode::Unquoted(0);
                        }
                    }
                }
                // Hot loop: unquoted content runs to the next delimiter
                // or line ending, SWAR-scanned eight bytes at a time
                // (`crate::scan`); mid-field quotes are literal. Line
                // accounting is settled in bulk when the record ends.
                // (`m > 0` was handled above, so `m == 0` here.)
                CMode::Unquoted(_) => match crate::scan::find_any3(&chunk[i..], d0, b'\n', b'\r') {
                    None => i = n, // the whole remaining chunk is content
                    Some(off) => {
                        i += off;
                        let b = chunk[i];
                        match b {
                            b'\n' | b'\r' => {
                                self.end_record(chunk, rec_start, &mut i, b, sink)?;
                            }
                            _ => {
                                // d0: a (possibly partial) delimiter.
                                i += 1;
                                self.mode = if dlen == 1 {
                                    CMode::Start(0)
                                } else {
                                    CMode::Unquoted(1)
                                };
                            }
                        }
                    }
                },
                // Hot loop: quoted content runs to the next quote (line
                // endings within are content) — a single-needle SWAR scan.
                CMode::Quoted => match crate::scan::find_byte(&chunk[i..], b'"') {
                    None => i = n,
                    Some(off) => {
                        i += off + 1;
                        self.mode = CMode::QuoteQuote;
                    }
                },
                CMode::QuoteQuote => {
                    if chunk[i] == b'"' {
                        // `""` escape: still inside the quoted field.
                        i += 1;
                        self.mode = CMode::Quoted;
                    } else {
                        // The previous quote closed the field; re-examine
                        // the byte as whatever follows it.
                        self.mode = CMode::AfterQuote(0);
                    }
                }
                CMode::AfterQuote(_) => {
                    let b = chunk[i];
                    match b {
                        b'\n' | b'\r' => self.end_record(chunk, rec_start, &mut i, b, sink)?,
                        _ if b == d0 => {
                            i += 1;
                            self.mode = if dlen == 1 {
                                CMode::Start(0)
                            } else {
                                CMode::AfterQuote(1)
                            };
                        }
                        _ => {
                            // Stray byte after a closing quote: scan on
                            // as content; the record parse reproduces
                            // the one-shot `CharAfterQuote` error.
                            i += 1;
                            self.mode = CMode::Unquoted(0);
                        }
                    }
                }
            }
        }
        match self.mode {
            CMode::Between | CMode::PendingLf => {}
            _ => {
                self.buf.extend_from_slice(&chunk[rec_start..]);
                if self.buf.len() > self.max_record_bytes {
                    return Err(self.too_large());
                }
            }
        }
        Ok(())
    }

    /// The [`CsvError::RecordTooLarge`] error for the current record,
    /// at its start line (deterministic under any chunking).
    fn too_large(&self) -> CsvError {
        CsvError::RecordTooLarge(self.max_record_bytes, self.start_line)
    }

    /// Attempts to split one row straight from the chunk front (`rest`
    /// is the chunk's remaining valid-UTF-8 text). Returns the consumed
    /// byte length — line ending included — when the row definitively
    /// ended inside the chunk, after emitting the row (or capturing the
    /// header). Returns `None` when the outcome is not definitive: the
    /// row reached the chunk end (it may continue in the next chunk) or
    /// failed to split (the error may be an artifact of truncation) —
    /// the resumable scanner re-derives both from the exact record
    /// bytes.
    fn speculative_row(&mut self, rest: &str, sink: &mut impl FnMut(Value)) -> Option<usize> {
        let mut sp = RecordSplitter::new(rest, self.delimiter);
        let lits = &self.literals;
        let row_name = self.row_name;
        match &self.headers {
            Some(headers) => {
                let mut fields: Vec<Field> = Vec::with_capacity(headers.len());
                let mut idx = 0usize;
                let ok = sp.next_record_each(|cell| {
                    if let Some(&h) = headers.get(idx) {
                        fields.push(Field {
                            name: h,
                            value: parse_literal(&cell, lits),
                        });
                    }
                    idx += 1;
                });
                if !matches!(ok, Ok(true)) || sp.pos() >= rest.len() {
                    return None;
                }
                // Short rows pad with empty cells, as the one-shot path
                // does.
                for &h in &headers[idx.min(headers.len())..] {
                    fields.push(Field {
                        name: h,
                        value: parse_literal("", lits),
                    });
                }
                sink(Value::Record {
                    name: row_name,
                    fields,
                });
                Some(sp.pos())
            }
            None if self.has_header => {
                let interner = &self.interner;
                let mut names: Vec<Name> = Vec::new();
                let ok = sp.next_record_each(|cell| names.push(interner.intern(cell.trim())));
                if !matches!(ok, Ok(true)) || sp.pos() >= rest.len() {
                    return None;
                }
                self.headers = Some(names);
                Some(sp.pos())
            }
            None => {
                let columns = &mut self.columns;
                let interner = &self.interner;
                let mut fields: Vec<Field> = Vec::new();
                let mut idx = 0usize;
                let ok = sp.next_record_each(|cell| {
                    let name = column(columns, idx, interner);
                    fields.push(Field {
                        name,
                        value: parse_literal(&cell, lits),
                    });
                    idx += 1;
                });
                if !matches!(ok, Ok(true)) || sp.pos() >= rest.len() {
                    return None;
                }
                sink(Value::Record {
                    name: row_name,
                    fields,
                });
                Some(sp.pos())
            }
        }
    }

    /// Ends the record *before* the line-ending byte `b` at `chunk[*i]`,
    /// consumes that byte and emits the row.
    fn end_record(
        &mut self,
        chunk: &[u8],
        rec_start: usize,
        i: &mut usize,
        b: u8,
        sink: &mut impl FnMut(Value),
    ) -> Result<(), CsvError> {
        let end = *i;
        // The size cap applies to every record, even one arriving whole
        // in a single feed (the buf-growth check only sees carry-over).
        if self.buf.len() + (end - rec_start) > self.max_record_bytes {
            return Err(self.too_large());
        }
        *i += 1;
        self.mode = if b == b'\r' {
            CMode::PendingLf
        } else {
            CMode::Between
        };
        let r = if self.buf.is_empty() {
            let r = self.emit_record(&chunk[rec_start..end], sink);
            self.advance_over(&chunk[rec_start..end]);
            r
        } else {
            let mut buf = std::mem::take(&mut self.buf);
            buf.extend_from_slice(&chunk[rec_start..end]);
            let r = self.emit_record(&buf, sink);
            self.advance_over(&buf);
            buf.clear();
            self.buf = buf; // keep the allocation for the next carry-over
            r
        };
        self.advance(b); // the line ending itself
        r
    }

    /// Splits one complete record (line endings already stripped), turns
    /// it into a row value — or the header — and emits it. Error lines
    /// are translated from record-local to stream-global.
    fn emit_record(&mut self, bytes: &[u8], sink: &mut impl FnMut(Value)) -> Result<(), CsvError> {
        let start_line = self.start_line;
        let text = std::str::from_utf8(bytes).map_err(|e| {
            CsvError::InvalidUtf8(start_line + count_csv_lines(&bytes[..e.valid_up_to()]))
        })?;
        let mut splitter = RecordSplitter::new(text, self.delimiter);
        let mut fields: Vec<Cow<'_, str>> = Vec::new();
        let got = splitter.next_record(&mut fields).map_err(|e| match e {
            CsvError::UnterminatedQuote(l) => CsvError::UnterminatedQuote(start_line + l - 1),
            CsvError::CharAfterQuote(l, c) => CsvError::CharAfterQuote(start_line + l - 1, c),
            other => other,
        })?;
        if !got {
            // An empty record slice is an empty line: a record holding
            // one empty field, exactly as the one-shot splitter yields.
            fields.push(Cow::Borrowed(""));
        }
        if self.has_header && self.headers.is_none() {
            // Header names are trimmed, matching the one-shot path.
            self.headers = Some(
                fields
                    .iter()
                    .map(|h| self.interner.intern(h.trim()))
                    .collect(),
            );
            return Ok(());
        }
        let row = match &self.headers {
            Some(headers) => Value::record(
                self.row_name,
                headers.iter().enumerate().map(|(i, &h)| {
                    let cell = fields.get(i).map(Cow::as_ref).unwrap_or("");
                    (h, parse_literal(cell, &self.literals))
                }),
            ),
            None => {
                // Headerless: name this row's columns by its own width
                // (see the module docs for the padding divergence note).
                if !fields.is_empty() {
                    column(&mut self.columns, fields.len() - 1, &self.interner);
                }
                Value::record(
                    self.row_name,
                    fields
                        .iter()
                        .enumerate()
                        .map(|(i, c)| (self.columns[i], parse_literal(c, &self.literals))),
                )
            }
        };
        sink(row);
        Ok(())
    }

    /// Advances the line accounting over one consumed line-ending byte:
    /// LF, CRLF and bare CR each count once, matching the one-shot
    /// splitter.
    fn advance(&mut self, b: u8) {
        if b == b'\r' || (b == b'\n' && !self.prev_cr) {
            self.line += 1;
        }
        self.prev_cr = b == b'\r';
    }

    /// Settles the line accounting over a completed record's bytes in
    /// one bulk pass (only quoted fields can contain line endings; the
    /// hot scanner loops never count lines).
    fn advance_over(&mut self, bytes: &[u8]) {
        self.line += count_csv_lines(bytes);
        if let Some(&last) = bytes.last() {
            self.prev_cr = last == b'\r';
        }
    }
}

/// The interned `Column{idx+1}` name, growing the streamer's
/// once-per-corpus cache on demand. Every row of a headerless stream
/// shares the same `Name` symbols — both the speculative and the
/// resumable path draw from this one table, so shape agreement with the
/// one-shot front-end is structural, not an accident of the arena
/// deduplicating per-row spellings.
fn column(columns: &mut Vec<Name>, idx: usize, interner: &Interner) -> Name {
    while columns.len() <= idx {
        columns.push(interner.intern(format!("Column{}", columns.len() + 1)));
    }
    columns[idx]
}

/// Line breaks (LF / CRLF / bare CR, each once) within `bytes`.
fn count_csv_lines(bytes: &[u8]) -> usize {
    // Fast path (no CR — the overwhelming case, since only quoted
    // fields can contain line endings at all): a vectorizable LF count.
    if bytes.iter().all(|&b| b != b'\r') {
        return bytes.iter().filter(|&&b| b == b'\n').count();
    }
    let mut n = 0usize;
    let mut prev_cr = false;
    for &b in bytes {
        if b == b'\r' || (b == b'\n' && !prev_cr) {
            n += 1;
        }
        prev_cr = b == b'\r';
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_value, parse_value_with};

    /// Streams `text` in chunks of `size` bytes; returns the rows.
    fn stream_chunked(text: &str, size: usize) -> Result<Vec<Value>, CsvError> {
        let mut s = Streamer::new();
        let mut out = Vec::new();
        for chunk in text.as_bytes().chunks(size.max(1)) {
            s.feed(chunk, &mut |v| out.push(v))?;
        }
        s.finish(&mut |v| out.push(v))?;
        Ok(out)
    }

    /// Asserts streaming at several chunk sizes agrees with the one-shot
    /// `parse_value` row list, values and errors alike.
    fn assert_agrees(text: &str) {
        let oneshot = parse_value(text).map(|v| match v {
            Value::List(rows) => rows,
            other => panic!("expected a row list, got {other}"),
        });
        for size in [1, 2, 3, 5, 64, 4096] {
            let streamed = stream_chunked(text, size);
            assert_eq!(streamed, oneshot, "chunk size {size} on {text:?}");
        }
    }

    #[test]
    fn rows_stream_with_any_split() {
        assert_agrees("a,b\n1,2\n3,4\n");
        assert_agrees("a,b\r\n1,2\r\n");
        assert_agrees("a\r1\r2");
        assert_agrees("a,b\n1\n2,y,z\n"); // ragged rows
        assert_agrees("a\n\n1"); // empty line row
        assert_agrees("a,b\n1,"); // trailing delimiter at EOF
        assert_agrees("Ozone, Temp\n41, 67\n17.5, #N/A\n");
        assert_agrees("a\n"); // header only
        assert_agrees("a"); // header only, no newline
    }

    #[test]
    fn quoting_streams_with_any_split() {
        assert_agrees("a\n\"x,y\"\n");
        assert_agrees("a\n\"x\ny\"\n");
        assert_agrees("a\n\"x\r\ny\"\n");
        assert_agrees("a\n\"he said \"\"hi\"\"\"\n");
        assert_agrees("h1,h2\nab\"c,d\"e\n"); // mid-field quotes literal
        assert_agrees("a\n\"x\"");
        assert_agrees("a\n\"\"\n");
    }

    #[test]
    fn utf8_cells_stream_with_any_split() {
        assert_agrees("sloupec,météo\nžluťoučký,🌧\n");
    }

    #[test]
    fn errors_agree_with_oneshot() {
        assert_agrees(""); // Empty
        assert_agrees("a\n\"oops"); // UnterminatedQuote(2)
        assert_agrees("a\n\"x\"y"); // CharAfterQuote(2, 'y')
        assert_agrees("h\n\"a\rb\"x"); // bare CR counts a line
        assert_agrees("h\n\"a\r\nb\"x"); // CRLF counts once
        assert_agrees("h\n\"a\rb\",ok\n\"oops"); // later unterminated quote
    }

    #[test]
    fn semicolon_and_multibyte_delimiters() {
        let opts = CsvOptions {
            delimiter: ';',
            ..CsvOptions::default()
        };
        let lits = LiteralOptions::default();
        for text in ["a;b\n1;2\n", "a;b\n\"x;y\";2\n"] {
            let oneshot = parse_value_with(text, &opts, &lits).unwrap();
            let mut s = Streamer::with_options(&opts, &lits);
            let mut rows = Vec::new();
            for chunk in text.as_bytes().chunks(1) {
                s.feed(chunk, &mut |v| rows.push(v)).unwrap();
            }
            s.finish(&mut |v| rows.push(v)).unwrap();
            assert_eq!(Value::List(rows), oneshot, "{text:?}");
        }
        // A multi-byte delimiter split across 1-byte feeds.
        let opts = CsvOptions {
            delimiter: '§',
            ..CsvOptions::default()
        };
        let text = "a§b\n1§\"x§y\"\n";
        let oneshot = parse_value_with(text, &opts, &lits).unwrap();
        let mut s = Streamer::with_options(&opts, &lits);
        let mut rows = Vec::new();
        for chunk in text.as_bytes().chunks(1) {
            s.feed(chunk, &mut |v| rows.push(v)).unwrap();
        }
        s.finish(&mut |v| rows.push(v)).unwrap();
        assert_eq!(Value::List(rows), oneshot);
    }

    #[test]
    fn headerless_names_columns_per_row() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let lits = LiteralOptions::default();
        let mut s = Streamer::with_options(&opts, &lits);
        let mut rows = Vec::new();
        s.feed(b"1,2\n3,4,5\n", &mut |v| rows.push(v)).unwrap();
        s.finish(&mut |v| rows.push(v)).unwrap();
        assert_eq!(rows.len(), 2);
        // Row 1 has two fields (no Column3 padding — documented
        // divergence from the one-shot path on ragged corpora).
        assert_eq!(rows[0].field("Column2"), Some(&Value::Int(2)));
        assert_eq!(rows[0].field("Column3"), None);
        assert_eq!(rows[1].field("Column3"), Some(&Value::Int(5)));
    }

    #[test]
    fn stream_is_poisoned_after_error() {
        let mut s = Streamer::new();
        let mut out = Vec::new();
        s.feed(b"a\n\"x\"y\n1\n", &mut |v| out.push(v)).unwrap_err();
        let err = s.feed(b"2\n", &mut |v| out.push(v)).unwrap_err();
        assert!(matches!(err, CsvError::CharAfterQuote(2, 'y')));
        assert!(out.is_empty());
    }

    #[test]
    fn unclosed_quote_trips_the_record_cap_at_one_byte_chunks() {
        let mut s = Streamer::new();
        s.set_max_record_bytes(64);
        let mut n = 0usize;
        s.feed(b"a,b\n1,\"never closes ", &mut |_| n += 1).unwrap();
        assert_eq!(n, 0); // only the header so far
        let mut err = None;
        for _ in 0..1000 {
            if let Err(e) = s.feed(b"x", &mut |_| n += 1) {
                err = Some(e);
                break;
            }
        }
        let err = err.expect("the cap must trip long before 1000 bytes");
        // The error names the row's start line.
        assert_eq!(err, CsvError::RecordTooLarge(64, 2));
        assert!(s.buf.len() <= 64 + 1, "buf grew to {}", s.buf.len());
        assert_eq!(s.finish(&mut |_| n += 1), Err(err));
    }

    #[test]
    fn invalid_utf8_reports_the_line() {
        let mut s = Streamer::new();
        s.feed(b"a\nok\n", &mut |_| ()).unwrap();
        s.feed(&[0xFF, b'\n'], &mut |_| ()).unwrap_err();
        assert_eq!(s.finish(&mut |_| ()), Err(CsvError::InvalidUtf8(3)));
    }
}
