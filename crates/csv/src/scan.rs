//! Chunked byte scanning for the CSV hot loops — re-exported from the
//! shared [`tfd_value::scan`] module.
//!
//! The SWAR helpers started life here driving the CSV boundary scanner's
//! unquoted fast path, the quoted-content skip and the record splitter
//! (PR 4); they were hoisted into `tfd-value` once the JSON and XML
//! boundary scanners adopted them too, so all three front-ends share one
//! implementation. This module remains as the compatibility path for
//! existing callers (`tfd_csv::scan::find_any3` et al.).

pub use tfd_value::scan::{
    find_any2, find_any3, find_any3_naive, find_any5, find_byte, find_byte_naive,
};
