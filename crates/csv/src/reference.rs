//! The retained char-level CSV parser — the honesty baseline for the
//! byte-level `crate::parser`.
//!
//! This module preserves the pre-byte-level implementation **verbatim**,
//! including two quoting bugs that the byte-level parser fixes:
//!
//! 1. a `"` appearing *mid-field* (e.g. `ab"c,d"e`) is treated as opening
//!    a quoted field, silently swallowing the delimiter — per RFC 4180 a
//!    quote is only special at field start;
//! 2. a bare `\r` inside a quoted field does not increment the line
//!    counter, so `UnterminatedQuote`/`CharAfterQuote` report wrong lines
//!    on classic-Mac line endings.
//!
//! Keeping the old behavior intact lets the regression tests in
//! `crate::parser` demonstrate the fixes against a live implementation,
//! and lets `cargo bench -p tfd-bench --bench pipeline` quantify the
//! byte-vs-char throughput difference (`pipeline/csv` vs
//! `pipeline/csv-reference`). Do not fix bugs here; fix them in
//! `crate::parser`.

use crate::parser::{CsvError, CsvOptions};
use crate::CsvFile;

/// Parses CSV text with default [`CsvOptions`] through the retained
/// char-level state machine.
///
/// # Errors
///
/// Returns [`CsvError`] for empty input or malformed quoting.
pub fn parse(input: &str) -> Result<CsvFile, CsvError> {
    parse_with(input, &CsvOptions::default())
}

/// Parses CSV text with explicit options through the retained char-level
/// state machine.
///
/// # Errors
///
/// Returns [`CsvError`] for empty input (in header mode) or malformed
/// quoting.
pub fn parse_with(input: &str, options: &CsvOptions) -> Result<CsvFile, CsvError> {
    let mut records = split_records(input, options.delimiter)?;
    if options.has_header {
        if records.is_empty() {
            return Err(CsvError::Empty);
        }
        let headers = records
            .remove(0)
            .into_iter()
            .map(|h| h.trim().to_owned())
            .collect();
        Ok(CsvFile::new(headers, records))
    } else {
        let width = records.iter().map(Vec::len).max().unwrap_or(0);
        let headers = (1..=width).map(|i| format!("Column{i}")).collect();
        Ok(CsvFile::new(headers, records))
    }
}

/// State machine over characters; returns one `Vec<String>` per record.
fn split_records(input: &str, delimiter: char) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    // `started` tracks whether the current record has any content, so a
    // trailing newline does not produce a phantom empty record.
    let mut started = false;
    let mut line = 1usize;

    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                started = true;
                let quote_line = line;
                // Quoted field: consume until the closing quote.
                loop {
                    match chars.next() {
                        None => return Err(CsvError::UnterminatedQuote(quote_line)),
                        Some('"') => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                field.push('"');
                            } else {
                                break;
                            }
                        }
                        Some('\n') => {
                            line += 1;
                            field.push('\n');
                        }
                        Some(c) => field.push(c),
                    }
                }
                // After the closing quote only a delimiter or line end may follow.
                match chars.peek() {
                    None => {}
                    Some(&c2) if c2 == delimiter || c2 == '\n' || c2 == '\r' => {}
                    Some(&c2) => return Err(CsvError::CharAfterQuote(line, c2)),
                }
            }
            '\r' => {
                // Part of CRLF; the '\n' branch finishes the record. A bare
                // CR is treated as a record separator too.
                if chars.peek() != Some(&'\n') {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    started = false;
                    line += 1;
                }
            }
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                started = false;
                line += 1;
            }
            c if c == delimiter => {
                started = true;
                record.push(std::mem::take(&mut field));
            }
            c => {
                started = true;
                field.push(c);
            }
        }
    }
    if started || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(input: &str) -> Vec<Vec<String>> {
        parse(input).unwrap().rows().to_vec()
    }

    #[test]
    fn reference_still_parses_the_happy_path() {
        let f = parse("a,b\n1,\"x,y\"\r\n3,4").unwrap();
        assert_eq!(f.headers(), &["a", "b"]);
        assert_eq!(
            f.rows(),
            &[
                vec!["1".to_owned(), "x,y".into()],
                vec!["3".into(), "4".into()]
            ]
        );
    }

    /// Documents retained bug 1: a mid-field quote opens a quoted field,
    /// so `ab"c,d"` swallows the delimiter into one cell and `ab"c,d"e`
    /// is rejected outright. The byte-level parser keeps mid-field quotes
    /// literal (see `crate::parser` regression tests).
    #[test]
    fn bug_midfield_quote_swallows_delimiter() {
        assert_eq!(rows("h\nab\"c,d\""), vec![vec!["abc,d".to_owned()]]);
        assert_eq!(
            parse("h\nab\"c,d\"e"),
            Err(CsvError::CharAfterQuote(2, 'e'))
        );
    }

    /// Documents retained bug 2: bare `\r` inside a quoted field does not
    /// advance the line counter, so the error line is wrong on
    /// classic-Mac line endings. The stray `x` sits on physical line 3
    /// (after `h\n` and the `\r` inside the quotes), but the reference
    /// reports line 2. The byte-level parser reports 3.
    #[test]
    fn bug_bare_cr_in_quoted_field_miscounts_lines() {
        assert_eq!(parse("h\n\"a\rb\"x"), Err(CsvError::CharAfterQuote(2, 'x')));
    }
}
