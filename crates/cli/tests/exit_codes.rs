//! End-to-end exit-code contract for the `tfd` binary.
//!
//! `--help` documents: 0 success, 1 usage error, 2 parse/resource
//! error, 3 I/O error, 4 analysis findings. These tests run the real
//! executable and assert the contract holds on every driver path, plus
//! the `--skip-errors` stderr summary format and the analysis report
//! channel (stdout, even on exit 4).

use std::path::PathBuf;
use std::process::{Command, Output};

fn tfd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tfd"))
        .args(args)
        .output()
        .expect("spawn tfd")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("tfd exited with a code")
}

fn write_temp(name: &str, content: &str) -> String {
    let dir = std::env::temp_dir().join("tfd-e2e-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn success_is_exit_zero_with_the_shape_on_stdout() {
    let f = write_temp("ok.json", "{\"a\": 1}\n{\"a\": 2, \"b\": true}\n");
    let out = tfd(&["infer", "--stream", &f]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("a : int"), "{stdout}");
    assert!(out.stderr.is_empty(), "{:?}", String::from_utf8(out.stderr));
}

#[test]
fn usage_errors_exit_one() {
    let f = write_temp("u.json", "{\"a\": 1}\n");
    for args in [
        &["infer", "--bogus-flag", &f][..],
        &["infer"][..],
        &["infer", "--format", "yaml", &f][..],
        &["infer", "--max-errors", "5", &f][..], // needs --skip-errors
        &["value", "--skip-errors", &f][..],
    ] {
        let out = tfd(args);
        assert_eq!(exit_code(&out), 1, "{args:?}: {out:?}");
        assert!(!out.stderr.is_empty(), "{args:?}");
    }
}

#[test]
fn parse_errors_exit_two_on_every_driver() {
    let f = write_temp("p.json", "{\"a\": 1}\n{\"a\": @}\n");
    for extra in [
        &[][..],
        &["--stream"][..],
        &["--jobs", "2"][..],
        &["--stream", "--jobs", "2"][..],
    ] {
        let mut args = vec!["infer"];
        args.extend_from_slice(extra);
        args.push(&f);
        let out = tfd(&args);
        assert_eq!(exit_code(&out), 2, "{extra:?}: {out:?}");
    }
}

#[test]
fn exceeding_the_error_budget_exits_two() {
    let f = write_temp("b.json", "{\"a\": @}\n{\"b\": @}\n{\"c\": 1}\n");
    let out = tfd(&["infer", "--skip-errors", "--max-errors", "1", &f]);
    assert_eq!(exit_code(&out), 2, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error budget exceeded"), "{stderr}");
}

#[test]
fn io_errors_exit_three() {
    for extra in [&[][..], &["--stream"][..], &["--jobs", "2"][..]] {
        let mut args = vec!["infer"];
        args.extend_from_slice(extra);
        args.push("/nonexistent/never/x.json");
        let out = tfd(&args);
        assert_eq!(exit_code(&out), 3, "{extra:?}: {out:?}");
    }
}

#[test]
fn skip_errors_prints_the_summary_on_stderr_and_exits_zero() {
    let f = write_temp("s.csv", "a,b\n1,x\n\"bad\"y,2\n3,z\n");
    let clean = write_temp("s_clean.csv", "a,b\n1,x\n3,z\n");
    let dirty_out = tfd(&["infer", "--stream", "--skip-errors", "--jobs", "2", &f]);
    assert_eq!(exit_code(&dirty_out), 0, "{dirty_out:?}");
    let clean_out = tfd(&["infer", "--stream", &clean]);
    assert_eq!(dirty_out.stdout, clean_out.stdout, "skip != clean subset");
    let stderr = String::from_utf8(dirty_out.stderr).unwrap();
    assert!(stderr.contains("skipped 1 malformed record"), "{stderr}");
    assert!(stderr.contains("line 3"), "{stderr}");
}

#[test]
fn breaking_diff_exits_four_with_the_report_on_stdout() {
    let old = write_temp("ev_old.csv", "id,score\n1,2.5\n2,3.0\n");
    let new = write_temp("ev_new.csv", "id,score\n1,high\n2,low\n");
    let out = tfd(&["diff", &old, &new]);
    assert_eq!(exit_code(&out), 4, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("type-changed"), "{stdout}");
    assert!(stdout.contains("$[].score"), "{stdout}");
    assert!(stdout.contains("breaking"), "{stdout}");
    assert!(out.stderr.is_empty(), "{:?}", String::from_utf8(out.stderr));
    // A corpus diffed against itself is identical: exit 0.
    let same = tfd(&["diff", "--mode", "full", &old, &old]);
    assert_eq!(exit_code(&same), 0, "{same:?}");
    let stdout = String::from_utf8(same.stdout).unwrap();
    assert!(stdout.contains("shapes are identical"), "{stdout}");
}

#[test]
fn diff_mode_decides_which_divergences_break() {
    // score becomes nullable: a widening — old values still conform.
    let old = write_temp("w_old.csv", "id,score\n1,2.5\n");
    let new = write_temp("w_new.csv", "id,score\n1,\n2,3.5\n");
    let back = tfd(&["diff", &old, &new]);
    assert_eq!(exit_code(&back), 0, "{back:?}");
    let stdout = String::from_utf8(back.stdout).unwrap();
    assert!(stdout.contains("nullability-introduced"), "{stdout}");
    let fwd = tfd(&["diff", "--mode", "forward", &old, &new]);
    assert_eq!(exit_code(&fwd), 4, "{fwd:?}");
}

#[test]
fn denied_lint_exits_four() {
    let f = write_temp("lint.csv", "id,score\n1,2.5\n2,high\n");
    let warn_only = tfd(&["analyze", &f]);
    assert_eq!(exit_code(&warn_only), 0, "{warn_only:?}");
    let denied = tfd(&["analyze", "--deny", "mixed-number-string", &f]);
    assert_eq!(exit_code(&denied), 4, "{denied:?}");
    let stdout = String::from_utf8(denied.stdout).unwrap();
    assert!(stdout.contains("error[mixed-number-string]"), "{stdout}");
}

#[test]
fn unsafe_access_path_exits_four() {
    let f = write_temp(
        "paths.json",
        r#"{"items": [{"name": "a", "note": null}, {"name": "b", "note": "x"}]}"#,
    );
    let safe = tfd(&["check-path", "--path", "items[].name", &f]);
    assert_eq!(exit_code(&safe), 0, "{safe:?}");
    let unsafe_out = tfd(&["check-path", "--path", "items[].note.len", &f]);
    assert_eq!(exit_code(&unsafe_out), 4, "{unsafe_out:?}");
    let stdout = String::from_utf8(unsafe_out.stdout).unwrap();
    assert!(stdout.contains("path-null-deref"), "{stdout}");
    // The `?` opt-chain satisfies the checker.
    let opted = tfd(&["check-path", "--path", "items[].note?", &f]);
    assert_eq!(exit_code(&opted), 0, "{opted:?}");
}

#[test]
fn json_analysis_output_is_a_single_object_on_stdout() {
    let old = write_temp("js_old.csv", "id,score\n1,2.5\n");
    let new = write_temp("js_new.csv", "id,score\n1,high\n");
    let out = tfd(&["diff", "--json", &old, &new]);
    assert_eq!(exit_code(&out), 4, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"compatible\":false"), "{stdout}");
    assert!(stdout.contains("\"kind\":\"type-changed\""), "{stdout}");
}

#[test]
fn stats_go_to_stderr_not_stdout() {
    let f = write_temp("stats.json", "{\"a\": 1}\n");
    let out = tfd(&["analyze", "--stats", &f]);
    assert_eq!(exit_code(&out), 0, "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("distinct names"), "{stderr}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(!stdout.contains("distinct names"), "{stdout}");
}

#[test]
fn help_documents_the_contract_and_exits_zero() {
    let out = tfd(&["--help"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "EXIT CODES",
        "--skip-errors",
        "--max-errors",
        "--max-record-bytes",
        "--max-depth",
        "analyze",
        "diff",
        "check-path",
        "--mode",
        "--deny",
        "--json",
        "--stats",
        "4   analysis findings",
    ] {
        assert!(stdout.contains(needle), "missing {needle}");
    }
}
