//! `tfd` — quicktype-style command-line shape inference.
//!
//! ```text
//! tfd infer  --format json [--samples N] FILE...   # print the inferred shape
//! tfd fsharp --format json FILE...                 # print F#-style provided types
//! tfd rust   --format json --module m --root Root FILE...  # print Rust types
//! tfd value  --format xml FILE                     # dump the universal data value
//! ```
//!
//! Exit codes follow the contract in `--help`: 0 success, 1 usage
//! error, 2 parse/resource error, 3 I/O error, 4 analysis findings.

use std::process::ExitCode;

mod cli;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        // Analysis findings are the command's *output* (stdout), not a
        // malfunction: exit 4 is the machine-readable part, the report
        // the human-readable one.
        Err(e @ cli::CliError::Analysis(_)) => {
            print!("{e}");
            ExitCode::from(e.exit_code())
        }
        Err(e) => {
            eprintln!("tfd: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
