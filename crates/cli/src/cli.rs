//! Command-line argument handling and subcommands for `tfd`.
//!
//! All per-format work routes through the engine layer
//! (`tfd_core::engine`): the CLI decides *which* format and *how many
//! workers*, the engine does the rest.

use tfd_codegen::{generate_global, CodegenOptions, SourceFormat};
use tfd_core::recover::{self, ErrorReport};
use tfd_core::stream::StreamError;
use tfd_core::{
    csh, engine, globalize_env, GlobalShape, InferOptions, RecoveryMode, RecoveryPolicy, Shape,
    StreamFormat,
};
use tfd_value::Value;

const USAGE: &str = "\
tfd — types from data (shape inference for JSON/XML/CSV)

USAGE:
    tfd <COMMAND> [OPTIONS] FILE...

COMMANDS:
    infer     print the inferred shape in the paper's notation
    fsharp    print F#-style provided type signatures
    rust      print generated Rust typed-access code
    value     dump the universal data value of a document

OPTIONS:
    --format <json|xml|csv|html>  input format (default: guessed from extension)
    --global                   XML global (by-name) inference (§6.2)
    --env                      with --global: print the recursive
                               definitions table (the ShapeEnv) under
                               the root shape
    --stream                   chunk-fed parse→infer: records are folded
                               into the shape as they complete, so corpora
                               larger than RAM work (not with value/html)
    --chunk-size <bytes>       read size for --stream (default: 65536)
    --jobs <N>                 parallel sharded parse→infer with N
                               worker threads (with or without --stream;
                               the corpus is cut at record boundaries and
                               per-shard shapes join with csh, so the
                               result is identical to --jobs 1; implies
                               record-stream reading, like --stream)
    --skip-errors              drop malformed records instead of aborting:
                               the parse re-syncs at the next record
                               boundary, the clean records are folded, and
                               a skip summary (count, first and last
                               errors) is printed on stderr — the shape
                               equals a run over the corpus with the bad
                               records deleted (not with value/html)
    --max-errors <N>           with --skip-errors: abort once more than N
                               records were skipped (default: 1000)
    --max-record-bytes <N>     hard cap on a single record's size in
                               bytes; a record that outgrows it fails (or,
                               with --skip-errors, is dropped) instead of
                               buffering without bound (default: 16777216)
    --max-depth <N>            cap on JSON/XML nesting depth
                               (defaults: JSON 128, XML 256)
    --module <name>            module name for `rust` (default: provided)
    --root <Name>              root type name (default: Root)
    --prefix <path>            support-crate path for `rust`
                               (default: ::types_from_data)
    --help                     show this help

EXIT CODES:
    0   success
    1   usage error (bad flags, unknown command or format)
    2   the input failed to parse, exceeded --max-errors, or tripped a
        resource cap
    3   an input file could not be read
";

/// A CLI failure, carrying the exit-code contract documented in
/// `--help`: usage errors exit 1, parse/resource errors exit 2, I/O
/// errors exit 3 (success is 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The invocation itself is wrong (unknown flag, command or format,
    /// missing files, contradictory flags). Exit code 1.
    Usage(String),
    /// The input failed to parse: a fail-fast parse error, an exceeded
    /// `--max-errors` budget, a tripped resource cap, or record-free
    /// input. Exit code 2.
    Parse(String),
    /// An input file could not be opened or read. Exit code 3.
    Io(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 1,
            CliError::Parse(_) => 2,
            CliError::Io(_) => 3,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Parse(m) | CliError::Io(m) => write!(f, "{m}"),
        }
    }
}

// Bare-string errors from argument handling are usage errors; parse and
// I/O failures are classified explicitly at their sites.
impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> CliError {
        CliError::Usage(m.to_owned())
    }
}

/// Runs the CLI; returns the text to print. Skip-mode summaries go to
/// stderr.
pub fn run(args: &[String]) -> Result<String, CliError> {
    run_with_warnings(args, &mut |w| eprintln!("tfd: {w}"))
}

/// [`run`] with the skip-summary channel exposed, so tests can capture
/// what a `--skip-errors` run reports without touching the process's
/// stderr.
pub fn run_with_warnings(args: &[String], warn: &mut dyn FnMut(&str)) -> Result<String, CliError> {
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        return Ok(USAGE.to_owned());
    }
    let command = args[0].as_str();
    let mut format: Option<Format> = None;
    let mut global = false;
    let mut env_table = false;
    let mut stream = false;
    let mut chunk_size = tfd_core::stream::DEFAULT_CHUNK_SIZE;
    let mut jobs: Option<usize> = None;
    let mut policy = RecoveryPolicy::default();
    let mut skip_errors = false;
    let mut max_errors_set = false;
    let mut recovery_flags = false;
    let mut module = "provided".to_owned();
    let mut root = "Root".to_owned();
    let mut prefix = "::types_from_data".to_owned();
    let mut files: Vec<String> = Vec::new();

    let mut i = 1usize;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                let v = args.get(i).ok_or("--format requires a value")?;
                format = Some(parse_format(v)?);
            }
            "--global" => global = true,
            "--env" => env_table = true,
            "--stream" => stream = true,
            "--chunk-size" => {
                i += 1;
                let v = args.get(i).ok_or("--chunk-size requires a value")?;
                chunk_size =
                    v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--chunk-size must be a positive integer, got {v}")
                    })?;
            }
            "--jobs" => {
                i += 1;
                let v = args.get(i).ok_or("--jobs requires a value")?;
                jobs = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("--jobs must be a positive integer, got {v}"))?,
                );
            }
            "--skip-errors" => {
                skip_errors = true;
                recovery_flags = true;
            }
            "--max-errors" => {
                i += 1;
                let v = args.get(i).ok_or("--max-errors requires a value")?;
                policy.max_errors = v
                    .parse::<usize>()
                    .map_err(|_| format!("--max-errors must be a non-negative integer, got {v}"))?;
                max_errors_set = true;
                recovery_flags = true;
            }
            "--max-record-bytes" => {
                i += 1;
                let v = args.get(i).ok_or("--max-record-bytes requires a value")?;
                policy.max_record_bytes =
                    v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--max-record-bytes must be a positive integer, got {v}")
                    })?;
                recovery_flags = true;
            }
            "--max-depth" => {
                i += 1;
                let v = args.get(i).ok_or("--max-depth requires a value")?;
                policy.max_depth =
                    Some(v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--max-depth must be a positive integer, got {v}")
                    })?);
                recovery_flags = true;
            }
            "--module" => {
                i += 1;
                module = args.get(i).ok_or("--module requires a value")?.clone();
            }
            "--root" => {
                i += 1;
                root = args.get(i).ok_or("--root requires a value")?.clone();
            }
            "--prefix" => {
                i += 1;
                prefix = args.get(i).ok_or("--prefix requires a value")?.clone();
            }
            "--help" | "-h" => return Ok(USAGE.to_owned()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown option {flag}\n\n{USAGE}").into());
            }
            file => files.push(file.to_owned()),
        }
        i += 1;
    }
    if files.is_empty() {
        return Err(format!("no input files\n\n{USAGE}").into());
    }
    if skip_errors {
        policy.mode = RecoveryMode::Skip;
    } else if max_errors_set {
        return Err(
            "--max-errors only bounds how many records --skip-errors may drop; \
             pass --skip-errors too"
                .into(),
        );
    }

    let format = match format {
        Some(f) => f,
        None => guess_format(&files[0])?,
    };
    if env_table && !global {
        return Err("--env requires --global (the definitions table is the \
             §6.2 global-inference environment)"
            .into());
    }

    if command == "value" {
        if stream || jobs.is_some() || recovery_flags {
            return Err(
                "--stream/--jobs/--skip-errors/--max-* are not supported with the \
                 value command (they drive the record-stream engine, which folds \
                 records into the shape and drops them, never materializing values)"
                    .into(),
            );
        }
        let values = read_values(&files, format)?;
        let mut out = String::new();
        for v in &values {
            out.push_str(&tfd_value::builder::to_pretty_string(v));
            out.push('\n');
        }
        return Ok(out);
    }

    let shape = if stream {
        stream_shape(&files, format, chunk_size, jobs.unwrap_or(1), &policy, warn)?
    } else if let Some(jobs) = jobs {
        // --jobs without --stream: whole files in memory, sharded at
        // record boundaries (record-stream semantics, like --stream).
        sharded_shape(&files, format, jobs, &policy, warn)?
    } else if recovery_flags {
        // Recovery flags imply the record-stream engine (like --jobs):
        // skipping and the resource caps are defined over record
        // boundaries, which the one-shot front-ends never see.
        sharded_shape(&files, format, 1, &policy, warn)?
    } else {
        infer(&read_values(&files, format)?, format)
    };
    // The §6.2 global mode goes through the env-carrying form
    // (`GlobalShape`): recursion is represented by μ-references into the
    // definitions table, so `--global` reaches a true fixed point even
    // on mutually recursive corpora.
    let global_shape = if global {
        globalize_env(shape)
    } else {
        GlobalShape::plain(shape)
    };

    match command {
        "infer" if env_table => Ok(render_env_table(&global_shape)),
        "infer" => Ok(format!("{}\n", global_shape.inline())),
        "fsharp" => {
            let provided = if global {
                tfd_provider::provide_global(&global_shape, &root)
            } else {
                tfd_provider::provide_idiomatic(&global_shape.root, &root)
            };
            Ok(tfd_provider::signature(&provided))
        }
        "rust" => {
            let options = CodegenOptions {
                crate_prefix: prefix,
                format: match format {
                    Format::Json => Some(SourceFormat::Json),
                    Format::Xml => Some(SourceFormat::Xml),
                    Format::Csv => Some(SourceFormat::Csv),
                    Format::Html => None,
                },
                sample_text: None,
            };
            Ok(generate_global(&global_shape, &module, &root, &options))
        }
        other => Err(format!("unknown command {other}\n\n{USAGE}").into()),
    }
}

fn read_values(files: &[String], format: Format) -> Result<Vec<Value>, CliError> {
    files.iter().map(|f| read_value(f, format)).collect()
}

/// Renders the `--global --env` view: the root shape followed by the
/// recursive definitions table, one entry per line.
fn render_env_table(global: &GlobalShape) -> String {
    let mut out = format!("{}\n", global.root);
    if global.env.is_empty() {
        out.push_str("(no global definitions)\n");
    } else {
        out.push_str("where\n");
        for (name, def) in global.env.iter() {
            out.push_str(&format!("  {name} = {}\n", Shape::Record(def.clone())));
        }
    }
    out
}

/// Lifts an engine [`StreamError`] for file `f` to a [`CliError`]:
/// reader failures are I/O errors (exit 3), everything else — parse
/// errors, exceeded budgets, tripped caps — is a parse error (exit 2).
fn engine_error(f: &str, e: StreamError) -> CliError {
    match e {
        StreamError::Io(_) => CliError::Io(format!("{f}: {e}")),
        other => CliError::Parse(format!("{f}: {other}")),
    }
}

/// The one-line `--skip-errors` summary for a file: how many records
/// were dropped, plus the first and last errors in document order.
fn format_report(f: &str, report: &ErrorReport) -> String {
    let first = report
        .first()
        .expect("a non-empty report has a first error");
    match report.last() {
        Some(last) if report.total() > 1 => format!(
            "{f}: skipped {} malformed records (first: {first}; last: {last})",
            report.total()
        ),
        _ => format!("{f}: skipped 1 malformed record ({first})"),
    }
}

/// The engine format for a CLI format (`html` has no streaming or
/// sharding front-end — it is the footnote-10 extension).
fn engine_format(format: Format, flag: &str) -> Result<StreamFormat, String> {
    match format {
        Format::Json => Ok(StreamFormat::Json),
        Format::Xml => Ok(StreamFormat::Xml),
        Format::Csv => Ok(StreamFormat::Csv),
        Format::Html => Err(format!("{flag} supports json, xml and csv inputs")),
    }
}

/// The engine-backed record-stream pipelines. Each file's records are
/// folded into a per-file shape (through the engine entry `summarize`
/// picks), the per-file folds merge with `csh` — exactly the
/// `infer_many` fold over the concatenated record sequence — and the
/// result is lifted to the one-shot corpus shape (the CSV row fold
/// re-wraps as a collection, so every mode prints the same shape).
/// Record-free input is rejected, matching the one-shot front-ends.
/// Under `--skip-errors`, each file's skip summary is sent to `warn`.
fn engine_shape(
    files: &[String],
    sformat: StreamFormat,
    warn: &mut dyn FnMut(&str),
    summarize: impl Fn(&str, &InferOptions) -> Result<recover::Recovered, CliError>,
) -> Result<Shape, CliError> {
    let options = engine::infer_options_dyn(sformat);
    let mut combined = Shape::Bottom;
    for f in files {
        let out = summarize(f, &options)?;
        if !out.report.is_empty() {
            warn(&format_report(f, &out.report));
        }
        if out.summary.records == 0 {
            return Err(CliError::Parse(format!("{f}: input contains no records")));
        }
        combined = csh(combined, out.summary.shape);
    }
    Ok(engine::wrap_corpus_shape_dyn(sformat, combined))
}

/// The `--stream` pipeline: each file is read in chunks through the
/// format's incremental front-end — corpora never need to fit in
/// memory. With `--jobs N` the reading thread only scans record
/// boundaries and fans record bundles out to N parser workers.
fn stream_shape(
    files: &[String],
    format: Format,
    chunk_size: usize,
    jobs: usize,
    policy: &RecoveryPolicy,
    warn: &mut dyn FnMut(&str),
) -> Result<Shape, CliError> {
    let sformat = engine_format(format, "--stream")?;
    engine_shape(files, sformat, warn, |f, options| {
        let file = std::fs::File::open(f).map_err(|e| CliError::Io(format!("{f}: {e}")))?;
        recover::infer_reader_policy_dyn(sformat, file, options, policy, chunk_size, jobs)
            .map_err(|e| engine_error(f, e))
    })
}

/// The `--jobs N` in-memory pipeline: each file is read whole, cut at
/// record boundaries and parsed→inferred by N shard workers; the
/// semilattice join makes the result identical to the sequential fold.
fn sharded_shape(
    files: &[String],
    format: Format,
    jobs: usize,
    policy: &RecoveryPolicy,
    warn: &mut dyn FnMut(&str),
) -> Result<Shape, CliError> {
    let sformat = engine_format(format, "--jobs")?;
    engine_shape(files, sformat, warn, |f, options| {
        let bytes = std::fs::read(f).map_err(|e| CliError::Io(format!("{f}: {e}")))?;
        recover::infer_slice_policy_dyn(sformat, &bytes, options, policy, jobs)
            .map_err(|e| engine_error(f, e))
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Json,
    Xml,
    Csv,
    Html,
}

fn parse_format(s: &str) -> Result<Format, String> {
    match s {
        "json" => Ok(Format::Json),
        "xml" => Ok(Format::Xml),
        "csv" => Ok(Format::Csv),
        "html" => Ok(Format::Html),
        other => Err(format!(
            "unknown format {other} (expected json, xml, csv or html)"
        )),
    }
}

fn guess_format(file: &str) -> Result<Format, String> {
    let lower = file.to_ascii_lowercase();
    if lower.ends_with(".json") {
        Ok(Format::Json)
    } else if lower.ends_with(".xml") {
        Ok(Format::Xml)
    } else if lower.ends_with(".csv") || lower.ends_with(".tsv") {
        Ok(Format::Csv)
    } else if lower.ends_with(".html") || lower.ends_with(".htm") {
        Ok(Format::Html)
    } else {
        Err(format!(
            "cannot guess the format of {file}; pass --format json|xml|csv"
        ))
    }
}

fn read_value(file: &str, format: Format) -> Result<Value, CliError> {
    let text = std::fs::read_to_string(file).map_err(|e| CliError::Io(format!("{file}: {e}")))?;
    match engine_format(format, "") {
        Ok(sformat) => engine::parse_value_dyn(sformat, &text)
            .map_err(|e| CliError::Parse(format!("{file}: {e}"))),
        Err(_) => {
            // HTML: the footnote-10 extension, outside the engine.
            let tables = tfd_html::parse_tables(&text);
            tables
                .first()
                .map(tfd_html::HtmlTable::to_value)
                .ok_or_else(|| CliError::Parse(format!("{file}: no <table> found")))
        }
    }
}

fn infer(values: &[Value], format: Format) -> Shape {
    let options = match engine_format(format, "") {
        Ok(sformat) => engine::infer_options_dyn(sformat),
        // HTML tables are CSV-like cell grids (§6.2 inference applies).
        Err(_) => InferOptions::csv(),
    };
    tfd_core::infer_many(values, &options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("tfd-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn run_args(args: &[&str]) -> Result<String, String> {
        run_cli(args).map_err(|e| e.to_string())
    }

    fn run_cli(args: &[&str]) -> Result<String, CliError> {
        run(&args.iter().map(|s| (*s).to_string()).collect::<Vec<_>>())
    }

    /// Runs the CLI capturing the `--skip-errors` summaries instead of
    /// printing them to stderr.
    fn run_warned(args: &[&str]) -> (Result<String, CliError>, Vec<String>) {
        let mut warnings = Vec::new();
        let out = run_with_warnings(
            &args.iter().map(|s| (*s).to_string()).collect::<Vec<_>>(),
            &mut |w| warnings.push(w.to_owned()),
        );
        (out, warnings)
    }

    #[test]
    fn help_is_printed() {
        assert!(run_args(&[]).unwrap().contains("USAGE"));
        assert!(run_args(&["--help"]).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn infer_prints_shape() {
        let f = write_temp("a.json", r#"[1, 2.5, null]"#);
        let out = run_args(&["infer", &f]).unwrap();
        assert_eq!(out.trim(), "[nullable float]");
    }

    #[test]
    fn infer_merges_multiple_files() {
        let f1 = write_temp("m1.json", r#"{ "x": 1 }"#);
        let f2 = write_temp("m2.json", r#"{ "x": 2, "y": true }"#);
        let out = run_args(&["infer", &f1, &f2]).unwrap();
        assert!(out.contains("y : nullable bool"), "{out}");
    }

    #[test]
    fn fsharp_prints_signature() {
        let f = write_temp("p.json", r#"[{ "name": "Jan", "age": 25 }]"#);
        let out = run_args(&["fsharp", "--root", "Person", &f]).unwrap();
        assert!(out.contains("member Name : string"), "{out}");
        assert!(out.contains("member Age : int"), "{out}");
    }

    #[test]
    fn rust_prints_module() {
        let f = write_temp("r.json", r#"{ "id": 7 }"#);
        let out = run_args(&["rust", "--module", "gen", "--root", "Thing", &f]).unwrap();
        assert!(out.contains("pub mod gen"), "{out}");
        assert!(out.contains("pub struct Thing"), "{out}");
        assert!(out.contains("pub fn id(&self)"), "{out}");
    }

    #[test]
    fn value_dumps_paper_notation() {
        let f = write_temp("v.xml", r#"<root id="1"/>"#);
        let out = run_args(&["value", &f]).unwrap();
        assert!(out.contains("root"), "{out}");
        assert!(out.contains("id \u{21a6} 1"), "{out}");
    }

    #[test]
    fn format_is_guessed_from_extension() {
        let f = write_temp("g.csv", "a,b\n1,2\n");
        let out = run_args(&["infer", &f]).unwrap();
        // Column a contains only 0/1 values → the §6.2 bit shape.
        assert!(out.contains("a : bit"), "{out}");
        assert!(out.contains("b : int"), "{out}");
        let unknown = write_temp("g.dat", "a,b\n1,2\n");
        assert!(run_args(&["infer", &unknown]).is_err());
        assert!(run_args(&["infer", "--format", "csv", &unknown]).is_ok());
    }

    #[test]
    fn global_flag_applies_xml_global_inference() {
        let f = write_temp(
            "g.xml",
            "<page><a><t x=\"1\"/></a><b><t y=\"2\"/></b></page>",
        );
        let plain = run_args(&["infer", &f]).unwrap();
        let global = run_args(&["infer", "--global", &f]).unwrap();
        assert_ne!(plain, global);
        assert_eq!(global.matches("x : nullable int").count(), 2, "{global}");
    }

    #[test]
    fn html_tables_infer_like_csv() {
        let f = write_temp(
            "t.html",
            "<table><tr><th>City</th><th>Temp</th></tr>\
             <tr><td>Prague</td><td>5</td></tr></table>",
        );
        let out = run_args(&["infer", &f]).unwrap();
        assert!(out.contains("City : string"), "{out}");
        assert!(out.contains("Temp : int"), "{out}");
    }

    #[test]
    fn stream_mode_matches_in_memory_inference() {
        // The same file must print the same shape with and without
        // --stream, for every format and tiny chunk sizes included.
        let cases = [
            ("s.csv", "id,name,score\n1,a,2.5\n2,b,\n"),
            ("s.xml", "<row id=\"1\"><v>x</v></row>"),
            ("s.json", r#"{"a": 1, "b": [true, null]}"#),
        ];
        for (name, content) in cases {
            let f = write_temp(name, content);
            let plain = run_args(&["infer", &f]).unwrap();
            for chunk in ["1", "7", "65536"] {
                let streamed = run_args(&["infer", "--stream", "--chunk-size", chunk, &f]).unwrap();
                assert_eq!(streamed, plain, "{name} at chunk size {chunk}");
            }
        }
    }

    #[test]
    fn stream_mode_merges_multiple_files() {
        let f1 = write_temp("sm1.json", r#"{ "x": 1 }"#);
        let f2 = write_temp("sm2.json", r#"{ "x": 2, "y": true }"#);
        let plain = run_args(&["infer", &f1, &f2]).unwrap();
        let streamed = run_args(&["infer", "--stream", &f1, &f2]).unwrap();
        assert_eq!(streamed, plain);
    }

    #[test]
    fn stream_mode_works_for_codegen_commands() {
        let f = write_temp("sg.csv", "a,b\n1,x\n");
        assert_eq!(
            run_args(&["fsharp", "--stream", &f]).unwrap(),
            run_args(&["fsharp", &f]).unwrap()
        );
        assert_eq!(
            run_args(&["rust", "--stream", "--module", "gen", &f]).unwrap(),
            run_args(&["rust", "--module", "gen", &f]).unwrap()
        );
    }

    #[test]
    fn stream_mode_rejects_value_and_html() {
        let f = write_temp("sv.json", "1");
        assert!(run_args(&["value", "--stream", &f]).is_err());
        let h = write_temp("sv.html", "<table><tr><td>1</td></tr></table>");
        assert!(run_args(&["infer", "--stream", &h]).is_err());
        assert!(run_args(&["infer", "--stream", "--chunk-size", "0", &f]).is_err());
        assert!(run_args(&["infer", "--stream", "--chunk-size", "x", &f]).is_err());
    }

    #[test]
    fn jobs_mode_matches_sequential_inference() {
        // Sharded parallel inference must print byte-identical output,
        // with and without --stream, for all three engine formats.
        let cases = [
            ("j.csv", "id,name,score\n1,a,2.5\n2,b,\n3,c,4.0\n"),
            ("j.xml", "<row id=\"1\"><v>x</v></row><row id=\"2\"/>"),
            ("j.json", "{\"a\": 1}\n{\"a\": 2.5, \"b\": [true, null]}\n"),
        ];
        for (name, content) in cases {
            let f = write_temp(name, content);
            let sequential = run_args(&["infer", "--stream", &f]).unwrap();
            for jobs in ["1", "2", "7"] {
                let par = run_args(&["infer", "--jobs", jobs, &f]).unwrap();
                assert_eq!(par, sequential, "{name} at --jobs {jobs}");
                let par_stream = run_args(&[
                    "infer",
                    "--stream",
                    "--jobs",
                    jobs,
                    "--chunk-size",
                    "16",
                    &f,
                ])
                .unwrap();
                assert_eq!(par_stream, sequential, "{name} at --stream --jobs {jobs}");
            }
        }
    }

    #[test]
    fn jobs_mode_works_for_codegen_and_global() {
        let f = write_temp("jg.csv", "a,b\n1,x\n2,y\n");
        assert_eq!(
            run_args(&["fsharp", "--jobs", "3", &f]).unwrap(),
            run_args(&["fsharp", "--stream", &f]).unwrap()
        );
        assert_eq!(
            run_args(&["rust", "--jobs", "3", "--module", "gen", &f]).unwrap(),
            run_args(&["rust", "--stream", "--module", "gen", &f]).unwrap()
        );
        let x = write_temp(
            "jg.xml",
            "<page><a><t x=\"1\"/></a><b><t y=\"2\"/></b></page>",
        );
        assert_eq!(
            run_args(&["infer", "--global", "--jobs", "4", &x]).unwrap(),
            run_args(&["infer", "--global", "--stream", &x]).unwrap()
        );
    }

    #[test]
    fn jobs_mode_reports_sequential_errors() {
        let f = write_temp("je.json", "{\"a\": 1}\n{\"b\": @}\n");
        let seq = run_args(&["infer", "--stream", &f]).unwrap_err();
        let par = run_args(&["infer", "--jobs", "4", &f]).unwrap_err();
        assert_eq!(par, seq);
        assert!(run_args(&["infer", "--jobs", "0", &f]).is_err());
        assert!(run_args(&["infer", "--jobs", "x", &f]).is_err());
        assert!(run_args(&["value", "--jobs", "2", &f]).is_err());
    }

    #[test]
    fn env_flag_prints_the_definitions_table() {
        let f = write_temp("e.xml", "<ul><li><ul><li/></ul></li></ul>");
        let out = run_args(&["infer", "--global", "--env", &f]).unwrap();
        assert!(out.contains("where"), "{out}");
        assert!(out.contains("ul = ul {"), "{out}");
        assert!(out.contains("li = li {"), "{out}");
        // Without --global the table flag is an error.
        assert!(run_args(&["infer", "--env", &f]).is_err());
        // A recursion-free corpus prints an empty table marker.
        let flat = write_temp("e2.xml", "<a><b/></a>");
        let out = run_args(&["infer", "--global", "--env", &flat]).unwrap();
        assert!(out.contains("(no global definitions)"), "{out}");
    }

    #[test]
    fn stream_mode_reports_parse_errors_with_positions() {
        let f = write_temp("se.json", "{\"a\": 1}\n{\"b\": @}\n");
        let err = run_args(&["infer", "--stream", &f]).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn stream_mode_rejects_record_free_input_like_the_oneshot_path() {
        // Both modes must reject input with nothing to infer from,
        // rather than --stream silently printing ⊥.
        for (name, content) in [
            ("e.json", "  \n "),
            ("e.xml", "<!-- only a comment -->"),
            ("e.csv", ""),
        ] {
            let f = write_temp(name, content);
            assert!(run_args(&["infer", &f]).is_err(), "{name} (one-shot)");
            let err = run_args(&["infer", "--stream", &f]).unwrap_err();
            assert!(
                err.contains("no records") || err.contains("no rows"),
                "{name} (stream): {err}"
            );
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_args(&["infer", "/nonexistent/x.json"]).is_err());
        assert!(run_args(&["bogus-command", "x.json"]).is_err());
        assert!(run_args(&["infer", "--format", "yaml", "x"]).is_err());
        let bad = write_temp("bad.json", "{");
        assert!(run_args(&["infer", &bad]).is_err());
    }

    #[test]
    fn errors_carry_the_documented_exit_codes() {
        let good = write_temp("code0.json", "{\"a\": 1}\n");
        assert!(run_cli(&["infer", &good]).is_ok());
        // 1: usage errors.
        assert_eq!(
            run_cli(&["infer", "--bogus", &good])
                .unwrap_err()
                .exit_code(),
            1
        );
        assert_eq!(run_cli(&["infer"]).unwrap_err().exit_code(), 1);
        // 2: parse errors, through every driver.
        let bad = write_temp("code2.json", "{\"a\": @}\n");
        for extra in [&[][..], &["--stream"][..], &["--jobs", "2"][..]] {
            let mut args = vec!["infer"];
            args.extend_from_slice(extra);
            args.push(&bad);
            assert_eq!(run_cli(&args).unwrap_err().exit_code(), 2, "{extra:?}");
        }
        // 3: unreadable input.
        for extra in [&[][..], &["--stream"][..], &["--jobs", "2"][..]] {
            let mut args = vec!["infer"];
            args.extend_from_slice(extra);
            args.push("/nonexistent/x.json");
            assert_eq!(run_cli(&args).unwrap_err().exit_code(), 3, "{extra:?}");
        }
        // The contract is user-visible.
        assert!(run_args(&["--help"]).unwrap().contains("EXIT CODES"));
    }

    #[test]
    fn skip_errors_drops_malformed_records_and_summarizes() {
        let dirty = write_temp(
            "skip.json",
            "{\"a\": 1}\n{\"a\": @}\n{\"a\": 2, \"b\": true}\n{\"a\": [1,]}\n{\"a\": 3}\n",
        );
        let clean = write_temp(
            "skip_clean.json",
            "{\"a\": 1}\n{\"a\": 2, \"b\": true}\n{\"a\": 3}\n",
        );
        // (--stream: the one-shot JSON front-end reads a single
        // document, while these corpora are record streams.)
        let want = run_args(&["infer", "--stream", &clean]).unwrap();
        // Fail-fast still aborts…
        assert_eq!(run_cli(&["infer", &dirty]).unwrap_err().exit_code(), 2);
        // …while every skip-mode driver folds exactly the clean subset.
        for extra in [
            &[][..],
            &["--jobs", "2"][..],
            &["--jobs", "7"][..],
            &["--stream"][..],
            &["--stream", "--chunk-size", "3", "--jobs", "2"][..],
        ] {
            let mut args = vec!["infer", "--skip-errors"];
            args.extend_from_slice(extra);
            args.push(&dirty);
            let (out, warnings) = run_warned(&args);
            assert_eq!(out.unwrap(), want, "{extra:?}");
            assert_eq!(warnings.len(), 1, "{extra:?}: {warnings:?}");
            assert!(
                warnings[0].contains("skipped 2 malformed records"),
                "{extra:?}: {}",
                warnings[0]
            );
            // First/last positions are stream-global document order.
            assert!(warnings[0].contains("first:"), "{}", warnings[0]);
            assert!(warnings[0].contains("line 2"), "{}", warnings[0]);
            assert!(warnings[0].contains("line 4"), "{}", warnings[0]);
        }
    }

    #[test]
    fn skip_errors_budget_aborts_with_a_parse_error() {
        let dirty = write_temp(
            "budget.json",
            "{\"a\": @}\n{\"b\": @}\n{\"c\": @}\n{\"d\": 1}\n",
        );
        for extra in [&[][..], &["--stream"][..], &["--jobs", "3"][..]] {
            let mut args = vec!["infer", "--skip-errors", "--max-errors", "2"];
            args.extend_from_slice(extra);
            args.push(&dirty);
            let err = run_cli(&args).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{extra:?}");
            let msg = err.to_string();
            assert!(msg.contains("error budget exceeded"), "{extra:?}: {msg}");
            assert!(msg.contains("line 1"), "{extra:?}: {msg}");
        }
        // A generous budget lets the run through.
        let ok = run_cli(&["infer", "--skip-errors", "--max-errors", "3", &dirty]);
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn recovery_flags_imply_the_record_stream_engine() {
        // --max-depth without --stream/--jobs still reaches the engine.
        let deep = write_temp("deep.json", "[[[[[1]]]]]\n");
        let err = run_cli(&["infer", "--max-depth", "3", &deep]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("nesting"), "{err}");
        assert!(run_cli(&["infer", "--max-depth", "9", &deep]).is_ok());
        // --max-record-bytes likewise.
        let wide = write_temp("wide.json", "{\"a\": \"0123456789abcdef\"}\n");
        let err = run_cli(&["infer", "--max-record-bytes", "8", &wide]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("record exceeds"), "{err}");
    }

    #[test]
    fn recovery_flag_misuse_is_a_usage_error() {
        let f = write_temp("misuse.json", "{\"a\": 1}\n");
        for args in [
            &["infer", "--max-errors", "5", &f][..],
            &["infer", "--skip-errors", "--max-errors", "-1", &f][..],
            &["infer", "--max-record-bytes", "0", &f][..],
            &["infer", "--max-depth", "0", &f][..],
            &["value", "--skip-errors", &f][..],
            &["infer", "--skip-errors", "--format", "html", &f][..],
        ] {
            let err = run_cli(args).unwrap_err();
            assert_eq!(err.exit_code(), 1, "{args:?}: {err}");
        }
    }
}
