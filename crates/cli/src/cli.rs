//! Command-line argument handling and subcommands for `tfd`.
//!
//! All per-format work routes through the engine layer
//! (`tfd_core::engine`): the CLI decides *which* format and *how many
//! workers*, the engine does the rest.

use tfd_codegen::{generate_global, CodegenOptions, SourceFormat};
use tfd_core::analyze::{
    check_path, diff_global, fingerprint, lint_rule_names, run_lints, AccessPath, CompatMode,
    Diagnostic, LintConfig, LintLevel, PathReport, Severity,
};
use tfd_core::recover::ErrorReport;
use tfd_core::report::{diagnostics_json, diff_json, json_escape};
use tfd_core::stream::StreamError;
use tfd_core::{
    csh, engine, globalize_env, GlobalShape, InferOptions, RecoveryMode, RecoveryPolicy, Shape,
    StreamFormat,
};
use tfd_value::{Interner, Value};

const USAGE: &str = "\
tfd — types from data (shape inference for JSON/XML/CSV)

USAGE:
    tfd <COMMAND> [OPTIONS] FILE...

COMMANDS:
    infer     print the inferred shape in the paper's notation
    fsharp    print F#-style provided type signatures
    rust      print generated Rust typed-access code
    value     dump the universal data value of a document
    analyze   infer a shape, run shape lints over it and check access
              paths; prints the shape fingerprint and every finding
    diff      infer the shapes of exactly two corpora (old, new) and
              report every divergence, classified as safe or breaking
              under the chosen --mode
    check-path  verify --path access paths against the inferred shape:
              a safe path cannot fail on any conforming input
    serve     run the live schema registry: a daemon where tenants
              POST corpora, shapes fold incrementally (versioned), and
              providers, conformance checks and schema diffs are served
              from the registry over HTTP (see README for endpoints)
    stats     query a running registry (--addr) for process-wide and
              per-tenant interner/shape figures

OPTIONS:
    --format <json|xml|csv|html>  input format (default: guessed from extension)
    --global                   XML global (by-name) inference (§6.2)
    --env                      with --global: print the recursive
                               definitions table (the ShapeEnv) under
                               the root shape
    --stream                   chunk-fed parse→infer: records are folded
                               into the shape as they complete, so corpora
                               larger than RAM work (not with value/html)
    --chunk-size <bytes>       read size for --stream (default: 65536)
    --jobs <N>                 parallel sharded parse→infer with N
                               worker threads (with or without --stream;
                               the corpus is cut at record boundaries and
                               per-shard shapes join with csh, so the
                               result is identical to --jobs 1; implies
                               record-stream reading, like --stream)
    --skip-errors              drop malformed records instead of aborting:
                               the parse re-syncs at the next record
                               boundary, the clean records are folded, and
                               a skip summary (count, first and last
                               errors) is printed on stderr — the shape
                               equals a run over the corpus with the bad
                               records deleted (not with value/html)
    --max-errors <N>           with --skip-errors: abort once more than N
                               records were skipped (default: 1000)
    --max-record-bytes <N>     hard cap on a single record's size in
                               bytes; a record that outgrows it fails (or,
                               with --skip-errors, is dropped) instead of
                               buffering without bound (default: 16777216)
    --max-depth <N>            cap on JSON/XML nesting depth
                               (defaults: JSON 128, XML 256)
    --module <name>            module name for `rust` (default: provided)
    --root <Name>              root type name (default: Root)
    --prefix <path>            support-crate path for `rust`
                               (default: ::types_from_data)
    --mode <backward|forward|full>
                               compatibility direction for `diff`
                               (default: backward — may every value of
                               the old shape be consumed by code
                               compiled against the new one?)
    --path <p>                 access path for analyze/check-path
                               (repeatable), e.g. items[].name — `.f`
                               projects a field, `[]` maps over a
                               collection, `?` opt-chains a nullable
    --allow <rule>             silence a lint rule (or `all`)
    --warn <rule>              report a lint rule (or `all`) as warning
    --deny <rule>              report a lint rule (or `all`) as error:
                               any finding makes `analyze` exit 4
                               (later --allow/--warn/--deny flags win)
    --json                     machine-readable analyze/diff/check-path/
                               stats output (one JSON object on stdout)
    --addr <host:port>         serve: address to bind (port 0 picks an
                               ephemeral port); stats: registry to query
    --max-body-bytes <N>       serve: cap on one uploaded corpus body in
                               bytes (default: 268435456)
    --max-connections <N>      serve: cap on concurrently handled
                               connections; excess requests get an
                               immediate 503 (default: 64)
    --stats                    print name-interner statistics to stderr:
                               one per-corpus delta as each file's name
                               arena drops, then the process-wide
                               retained total
    --help                     show this help

EXIT CODES:
    0   success
    1   usage error (bad flags, unknown command or format)
    2   the input failed to parse, exceeded --max-errors, or tripped a
        resource cap
    3   an input file could not be read
    4   analysis findings: `diff` found breaking divergences under
        --mode, a denied lint fired, or a checked access path is unsafe
        (the report still prints to stdout)
";

/// A CLI failure, carrying the exit-code contract documented in
/// `--help`: usage errors exit 1, parse/resource errors exit 2, I/O
/// errors exit 3 (success is 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The invocation itself is wrong (unknown flag, command or format,
    /// missing files, contradictory flags). Exit code 1.
    Usage(String),
    /// The input failed to parse: a fail-fast parse error, an exceeded
    /// `--max-errors` budget, a tripped resource cap, or record-free
    /// input. Exit code 2.
    Parse(String),
    /// An input file could not be opened or read. Exit code 3.
    Io(String),
    /// The inputs parsed fine but the analysis found what the caller
    /// asked it to look for: breaking `diff` divergences, denied lint
    /// findings, or an unsafe access path. Exit code 4. The payload is
    /// the full report, which belongs on *stdout* (it is the command's
    /// output, not a malfunction).
    Analysis(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 1,
            CliError::Parse(_) => 2,
            CliError::Io(_) => 3,
            CliError::Analysis(_) => 4,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Parse(m) | CliError::Io(m) | CliError::Analysis(m) => {
                write!(f, "{m}")
            }
        }
    }
}

// Bare-string errors from argument handling are usage errors; parse and
// I/O failures are classified explicitly at their sites.
impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> CliError {
        CliError::Usage(m.to_owned())
    }
}

/// Runs the CLI; returns the text to print. Skip-mode summaries go to
/// stderr.
pub fn run(args: &[String]) -> Result<String, CliError> {
    run_with_warnings(args, &mut |w| eprintln!("tfd: {w}"))
}

/// [`run`] with the skip-summary channel exposed, so tests can capture
/// what a `--skip-errors` run reports without touching the process's
/// stderr.
pub fn run_with_warnings(args: &[String], warn: &mut dyn FnMut(&str)) -> Result<String, CliError> {
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        return Ok(USAGE.to_owned());
    }
    let command = args[0].as_str();
    let mut format: Option<Format> = None;
    let mut global = false;
    let mut env_table = false;
    let mut stream = false;
    let mut chunk_size = tfd_core::stream::DEFAULT_CHUNK_SIZE;
    let mut jobs: Option<usize> = None;
    let mut policy = RecoveryPolicy::default();
    let mut skip_errors = false;
    let mut max_errors_set = false;
    let mut recovery_flags = false;
    let mut module = "provided".to_owned();
    let mut root = "Root".to_owned();
    let mut prefix = "::types_from_data".to_owned();
    let mut mode = CompatMode::Backward;
    let mut paths: Vec<String> = Vec::new();
    let mut lint_config = LintConfig::new();
    let mut json = false;
    let mut stats = false;
    let mut addr: Option<String> = None;
    let mut max_body_bytes: Option<usize> = None;
    let mut max_connections: Option<usize> = None;
    let mut files: Vec<String> = Vec::new();

    let mut i = 1usize;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                let v = args.get(i).ok_or("--format requires a value")?;
                format = Some(parse_format(v)?);
            }
            "--global" => global = true,
            "--env" => env_table = true,
            "--stream" => stream = true,
            "--chunk-size" => {
                i += 1;
                let v = args.get(i).ok_or("--chunk-size requires a value")?;
                chunk_size =
                    v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--chunk-size must be a positive integer, got {v}")
                    })?;
            }
            "--jobs" => {
                i += 1;
                let v = args.get(i).ok_or("--jobs requires a value")?;
                jobs = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("--jobs must be a positive integer, got {v}"))?,
                );
            }
            "--skip-errors" => {
                skip_errors = true;
                recovery_flags = true;
            }
            "--max-errors" => {
                i += 1;
                let v = args.get(i).ok_or("--max-errors requires a value")?;
                policy.max_errors = v
                    .parse::<usize>()
                    .map_err(|_| format!("--max-errors must be a non-negative integer, got {v}"))?;
                max_errors_set = true;
                recovery_flags = true;
            }
            "--max-record-bytes" => {
                i += 1;
                let v = args.get(i).ok_or("--max-record-bytes requires a value")?;
                policy.max_record_bytes =
                    v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--max-record-bytes must be a positive integer, got {v}")
                    })?;
                recovery_flags = true;
            }
            "--max-depth" => {
                i += 1;
                let v = args.get(i).ok_or("--max-depth requires a value")?;
                policy.max_depth =
                    Some(v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--max-depth must be a positive integer, got {v}")
                    })?);
                recovery_flags = true;
            }
            "--module" => {
                i += 1;
                module = args.get(i).ok_or("--module requires a value")?.clone();
            }
            "--root" => {
                i += 1;
                root = args.get(i).ok_or("--root requires a value")?.clone();
            }
            "--prefix" => {
                i += 1;
                prefix = args.get(i).ok_or("--prefix requires a value")?.clone();
            }
            "--mode" => {
                i += 1;
                let v = args.get(i).ok_or("--mode requires a value")?;
                mode = v.parse::<CompatMode>()?;
            }
            "--path" => {
                i += 1;
                paths.push(args.get(i).ok_or("--path requires a value")?.clone());
            }
            level_flag @ ("--allow" | "--warn" | "--deny") => {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| format!("{level_flag} requires a lint rule name or `all`"))?;
                if v != "all" && !lint_rule_names().contains(&v.as_str()) {
                    return Err(format!(
                        "unknown lint rule {v} (expected all, {})",
                        lint_rule_names().join(", ")
                    )
                    .into());
                }
                let level = match level_flag {
                    "--allow" => LintLevel::Allow,
                    "--warn" => LintLevel::Warn,
                    _ => LintLevel::Deny,
                };
                lint_config.set(v, level);
            }
            "--json" => json = true,
            "--stats" => stats = true,
            "--addr" => {
                i += 1;
                addr = Some(
                    args.get(i)
                        .ok_or("--addr requires a host:port value")?
                        .clone(),
                );
            }
            "--max-body-bytes" => {
                i += 1;
                let v = args.get(i).ok_or("--max-body-bytes requires a value")?;
                max_body_bytes =
                    Some(v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--max-body-bytes must be a positive integer, got {v}")
                    })?);
            }
            "--max-connections" => {
                i += 1;
                let v = args.get(i).ok_or("--max-connections requires a value")?;
                max_connections =
                    Some(v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--max-connections must be a positive integer, got {v}")
                    })?);
            }
            "--help" | "-h" => return Ok(USAGE.to_owned()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown option {flag}\n\n{USAGE}").into());
            }
            file => files.push(file.to_owned()),
        }
        i += 1;
    }
    // The registry commands take an address, not input files; they must
    // dodge the files-required check below.
    if command == "serve" || command == "stats" {
        if !files.is_empty() {
            return Err(format!(
                "{command} reads no input files (corpora arrive over HTTP); got {files:?}"
            )
            .into());
        }
        let addr = addr.ok_or_else(|| format!("{command} requires --addr host:port"))?;
        return if command == "serve" {
            run_serve(&addr, max_body_bytes, max_connections, warn)
        } else {
            run_registry_stats(&addr, json)
        };
    }
    if files.is_empty() {
        return Err(format!("no input files\n\n{USAGE}").into());
    }
    if skip_errors {
        policy.mode = RecoveryMode::Skip;
    } else if max_errors_set {
        return Err(
            "--max-errors only bounds how many records --skip-errors may drop; \
             pass --skip-errors too"
                .into(),
        );
    }

    let format = match format {
        Some(f) => f,
        None => guess_format(&files[0])?,
    };
    if env_table && !global {
        return Err("--env requires --global (the definitions table is the \
             §6.2 global-inference environment)"
            .into());
    }

    if command == "value" {
        if stream || jobs.is_some() || recovery_flags {
            return Err(
                "--stream/--jobs/--skip-errors/--max-* are not supported with the \
                 value command (they drive the record-stream engine, which folds \
                 records into the shape and drops them, never materializing values)"
                    .into(),
            );
        }
        // One arena for the whole invocation: the dumped values live
        // until they are rendered, then names and text are reclaimed
        // together when the arena drops at the end of this block.
        let interner = Interner::new();
        let values = read_values(&files, format, &interner)?;
        let mut out = String::new();
        for v in &values {
            out.push_str(&tfd_value::builder::to_pretty_string(v));
            out.push('\n');
        }
        emit_corpus_stats(stats, "corpus", &interner, warn);
        emit_stats(stats, warn);
        return Ok(out);
    }

    // One corpus → one shape, through whichever driver the flags chose,
    // so the analysis commands compose with --stream/--jobs/--skip-…
    // exactly like `infer` does. `diff` folds each corpus separately.
    let corpus_shape = |fs: &[String], warn: &mut dyn FnMut(&str)| -> Result<Shape, CliError> {
        if stream {
            stream_shape(
                fs,
                format,
                chunk_size,
                jobs.unwrap_or(1),
                &policy,
                stats,
                warn,
            )
        } else if let Some(jobs) = jobs {
            // --jobs without --stream: whole files in memory, sharded at
            // record boundaries (record-stream semantics, like --stream).
            sharded_shape(fs, format, jobs, &policy, stats, warn)
        } else if recovery_flags {
            // Recovery flags imply the record-stream engine (like --jobs):
            // skipping and the resource caps are defined over record
            // boundaries, which the one-shot front-ends never see.
            sharded_shape(fs, format, 1, &policy, stats, warn)
        } else {
            oneshot_shape(fs, format, stats, warn)
        }
    };
    // The §6.2 global mode goes through the env-carrying form
    // (`GlobalShape`): recursion is represented by μ-references into the
    // definitions table, so `--global` reaches a true fixed point even
    // on mutually recursive corpora.
    let to_global = |shape: Shape| {
        if global {
            globalize_env(shape)
        } else {
            GlobalShape::plain(shape)
        }
    };
    let parsed_paths: Vec<AccessPath> = paths
        .iter()
        .map(|p| {
            p.parse()
                .map_err(|e| CliError::Usage(format!("--path {p}: {e}")))
        })
        .collect::<Result<_, _>>()?;

    if command == "diff" {
        if files.len() != 2 {
            return Err(format!(
                "diff compares exactly two corpora (old, new); got {} input file(s)",
                files.len()
            )
            .into());
        }
        let old = to_global(corpus_shape(&files[..1], warn)?);
        let new = to_global(corpus_shape(&files[1..], warn)?);
        let report = diff_global(&old, &new, mode);
        let text = if json {
            diff_json(&report)
        } else {
            report.to_string()
        };
        emit_stats(stats, warn);
        return if report.is_compatible() {
            Ok(text)
        } else {
            Err(CliError::Analysis(text))
        };
    }

    let global_shape = to_global(corpus_shape(&files, warn)?);

    if command == "analyze" || command == "check-path" {
        if command == "check-path" && parsed_paths.is_empty() {
            return Err("check-path needs at least one --path to verify".into());
        }
        let lints = if command == "analyze" {
            run_lints(&global_shape, &lint_config)
        } else {
            Vec::new()
        };
        let path_reports: Vec<(&AccessPath, PathReport)> = parsed_paths
            .iter()
            .map(|p| (p, check_path(&global_shape, p)))
            .collect();
        let failed = lints.iter().any(|d| d.severity == Severity::Error)
            || path_reports.iter().any(|(_, r)| !r.is_safe());
        let text = if json {
            render_analysis_json(command, &global_shape, &lints, &path_reports)
        } else {
            render_analysis(command, &global_shape, &lints, &path_reports)
        };
        emit_stats(stats, warn);
        return if failed {
            Err(CliError::Analysis(text))
        } else {
            Ok(text)
        };
    }

    let out = match command {
        "infer" if env_table => Ok(render_env_table(&global_shape)),
        "infer" => Ok(format!("{}\n", global_shape.inline())),
        "fsharp" => {
            let provided = if global {
                tfd_provider::provide_global(&global_shape, &root)
            } else {
                tfd_provider::provide_idiomatic(&global_shape.root, &root)
            };
            Ok(tfd_provider::signature(&provided))
        }
        "rust" => {
            let options = CodegenOptions {
                crate_prefix: prefix,
                format: match format {
                    Format::Json => Some(SourceFormat::Json),
                    Format::Xml => Some(SourceFormat::Xml),
                    Format::Csv => Some(SourceFormat::Csv),
                    Format::Html => None,
                },
                sample_text: None,
            };
            Ok(generate_global(&global_shape, &module, &root, &options))
        }
        other => Err(CliError::from(format!(
            "unknown command {other}\n\n{USAGE}"
        ))),
    };
    emit_stats(stats, warn);
    out
}

/// The `--stats` process summary, on the warning (stderr) channel so
/// it never mixes into command output: what is *still* retained across
/// all live arenas once the per-corpus arenas have dropped (the
/// process-default arena plus whatever the run reinterned into it).
fn emit_stats(enabled: bool, warn: &mut dyn FnMut(&str)) {
    if enabled {
        let s = tfd_value::intern::stats();
        warn(&format!(
            "interner: {} distinct names, {} bytes retained across {} live arena(s)",
            s.symbols, s.retained_bytes, s.arenas
        ));
    }
}

/// The `--stats` per-corpus delta: one corpus arena's footprint,
/// reported just before the arena drops and the figures go back down.
fn emit_corpus_stats(enabled: bool, label: &str, interner: &Interner, warn: &mut dyn FnMut(&str)) {
    if enabled {
        let s = interner.stats();
        warn(&format!(
            "interner[{label}]: {} distinct names, {} bytes retained (reclaimed when the \
             corpus arena drops)",
            s.symbols, s.retained_bytes
        ));
    }
}

/// Human-readable `analyze`/`check-path` report.
fn render_analysis(
    command: &str,
    global: &GlobalShape,
    lints: &[Diagnostic],
    paths: &[(&AccessPath, PathReport)],
) -> String {
    let mut out = String::new();
    if command == "analyze" {
        out.push_str(&format!("fingerprint: {}\n", fingerprint(global)));
    }
    for d in lints {
        out.push_str(&format!("{d}\n"));
    }
    for (p, r) in paths {
        for d in &r.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        match (&r.result, r.is_safe()) {
            (Some(shape), true) => out.push_str(&format!("path {p}: safe — {shape}\n")),
            (_, safe) => out.push_str(&format!(
                "path {p}: {}\n",
                if safe { "safe" } else { "UNSAFE" }
            )),
        }
    }
    let errors = lints
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = lints
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let unsafe_paths = paths.iter().filter(|(_, r)| !r.is_safe()).count();
    if command == "analyze" {
        out.push_str(&format!(
            "{} lint finding(s): {errors} error(s), {warnings} warning(s)",
            lints.len()
        ));
        if !paths.is_empty() {
            out.push_str(&format!(
                "; {} path(s) checked, {unsafe_paths} unsafe",
                paths.len()
            ));
        }
        out.push('\n');
    } else {
        out.push_str(&format!(
            "{} path(s) checked, {unsafe_paths} unsafe\n",
            paths.len()
        ));
    }
    out
}

/// Machine-readable `analyze`/`check-path` report: one JSON object.
fn render_analysis_json(
    command: &str,
    global: &GlobalShape,
    lints: &[Diagnostic],
    paths: &[(&AccessPath, PathReport)],
) -> String {
    let mut out = String::from("{");
    if command == "analyze" {
        out.push_str(&format!("\"fingerprint\":\"{}\",", fingerprint(global)));
        out.push_str("\"diagnostics\":");
        out.push_str(&diagnostics_json(lints));
        out.push(',');
    }
    out.push_str("\"paths\":[");
    for (i, (p, r)) in paths.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":\"{}\",\"safe\":{},\"result\":{},\"diagnostics\":{}}}",
            json_escape(&p.to_string()),
            r.is_safe(),
            match &r.result {
                Some(shape) => format!("\"{}\"", json_escape(&shape.to_string())),
                None => "null".to_owned(),
            },
            diagnostics_json(&r.diagnostics)
        ));
    }
    out.push_str("]}\n");
    out
}

fn read_values(
    files: &[String],
    format: Format,
    interner: &Interner,
) -> Result<Vec<Value>, CliError> {
    files
        .iter()
        .map(|f| read_value(f, format, interner))
        .collect()
}

/// Renders the `--global --env` view: the root shape followed by the
/// recursive definitions table, one entry per line.
/// `tfd serve --addr HOST:PORT`: binds the registry daemon and blocks
/// in its accept loop until the process is killed. The bound address is
/// announced on stderr (useful with port 0).
fn run_serve(
    addr: &str,
    max_body_bytes: Option<usize>,
    max_connections: Option<usize>,
    warn: &mut dyn FnMut(&str),
) -> Result<String, CliError> {
    let defaults = tfd_serve::ServeConfig::default();
    let config = tfd_serve::ServeConfig {
        max_body_bytes: max_body_bytes.unwrap_or(defaults.max_body_bytes),
        max_connections: max_connections.unwrap_or(defaults.max_connections),
        ..defaults
    };
    let server = tfd_serve::Server::bind(addr, config)
        .map_err(|e| CliError::Io(format!("{addr}: bind failed: {e}")))?;
    let local = server
        .local_addr()
        .map_err(|e| CliError::Io(e.to_string()))?;
    warn(&format!("serving schema registry on http://{local}/v1"));
    server.run();
    Ok(String::new())
}

/// `tfd stats --addr HOST:PORT`: asks a running registry for its
/// process-wide and per-tenant interner/shape figures. `--json` prints
/// the daemon's body verbatim; the default renders it for humans (via
/// the repo's own JSON front-end — the registry speaks a dialect the
/// engine can read back).
fn run_registry_stats(addr: &str, json: bool) -> Result<String, CliError> {
    let resp = tfd_serve::request(addr, "GET", "/v1/stats", None)
        .map_err(|e| CliError::Io(format!("{addr}: {e}")))?;
    let body = resp.text();
    if resp.status != 200 {
        return Err(CliError::Io(format!(
            "{addr}: stats returned HTTP {}: {}",
            resp.status,
            body.trim()
        )));
    }
    if json {
        return Ok(body);
    }
    let interner = Interner::new();
    let v = engine::parse_value_dyn_in(StreamFormat::Json, &body, &interner)
        .map_err(|e| CliError::Parse(format!("{addr}: unparseable stats body: {e}")))?;
    let int_of = |v: Option<&Value>| match v {
        Some(Value::Int(n)) => *n,
        _ => 0,
    };
    let str_of = |v: Option<&Value>| match v {
        Some(Value::Str(s)) => s.clone(),
        _ => String::new(),
    };
    let mut out = String::new();
    if let Some(p) = v.field("process") {
        out.push_str(&format!(
            "process interner: {} symbols, {} bytes retained across {} arena(s)\n",
            int_of(p.field("symbols")),
            int_of(p.field("retained_bytes")),
            int_of(p.field("arenas")),
        ));
    }
    if let Some(c) = v.field("connections") {
        out.push_str(&format!(
            "connections: {} active of {} allowed ({} accepted, {} refused)\n",
            int_of(c.field("active")),
            int_of(c.field("capacity")),
            int_of(c.field("accepted")),
            int_of(c.field("refused")),
        ));
    }
    let tenants = v.field("tenants").and_then(Value::elements).unwrap_or(&[]);
    out.push_str(&format!("{} tenant(s)\n", tenants.len()));
    for t in tenants {
        let intern = t.field("intern");
        out.push_str(&format!(
            "  {} [{}] v{} fingerprint {}: {} records, {} bytes in; arena: {} symbols, {} bytes retained\n",
            str_of(t.field("tenant")),
            str_of(t.field("format")),
            int_of(t.field("version")),
            str_of(t.field("fingerprint")),
            int_of(t.field("records")),
            int_of(t.field("bytes")),
            int_of(intern.and_then(|i| i.field("symbols"))),
            int_of(intern.and_then(|i| i.field("retained_bytes"))),
        ));
    }
    Ok(out)
}

fn render_env_table(global: &GlobalShape) -> String {
    let mut out = format!("{}\n", global.root);
    if global.env.is_empty() {
        out.push_str("(no global definitions)\n");
    } else {
        out.push_str("where\n");
        for (name, def) in global.env.iter() {
            out.push_str(&format!("  {name} = {}\n", Shape::Record(def.clone())));
        }
    }
    out
}

/// Lifts an engine [`StreamError`] for file `f` to a [`CliError`]:
/// reader failures are I/O errors (exit 3), everything else — parse
/// errors, exceeded budgets, tripped caps — is a parse error (exit 2).
fn engine_error(f: &str, e: StreamError) -> CliError {
    match e {
        StreamError::Io(_) => CliError::Io(format!("{f}: {e}")),
        other => CliError::Parse(format!("{f}: {other}")),
    }
}

/// The one-line `--skip-errors` summary for a file: how many records
/// were dropped, plus the first and last errors in document order.
fn format_report(f: &str, report: &ErrorReport) -> String {
    let first = report
        .first()
        .expect("a non-empty report has a first error");
    match report.last() {
        Some(last) if report.total() > 1 => format!(
            "{f}: skipped {} malformed records (first: {first}; last: {last})",
            report.total()
        ),
        _ => format!("{f}: skipped 1 malformed record ({first})"),
    }
}

/// The engine format for a CLI format (`html` has no streaming or
/// sharding front-end — it is the footnote-10 extension).
fn engine_format(format: Format, flag: &str) -> Result<StreamFormat, String> {
    match format {
        Format::Json => Ok(StreamFormat::Json),
        Format::Xml => Ok(StreamFormat::Xml),
        Format::Csv => Ok(StreamFormat::Csv),
        Format::Html => Err(format!("{flag} supports json, xml and csv inputs")),
    }
}

/// The engine-backed record-stream pipelines, routed through the
/// corpus-parallel driver [`engine::infer_sources_parallel`]: one full
/// pipeline + one scoped arena per input file, with the `--jobs` budget
/// split across files (a many-file corpus is embarrassingly parallel at
/// the file level). Results come back in file order, so the `csh` merge
/// of the per-file folds — exactly the `infer_many` fold over the
/// concatenated record sequence — and the first-error-wins abort are
/// byte-identical to the old sequential per-file loop; the result is
/// lifted to the one-shot corpus shape (the CSV row fold re-wraps as a
/// collection, so every mode prints the same shape). Record-free input
/// is rejected, matching the one-shot front-ends. Under
/// `--skip-errors`, each file's skip summary is sent to `warn`.
fn engine_shape(
    files: &[String],
    sformat: StreamFormat,
    sources: &[engine::CorpusSource<'_>],
    jobs: usize,
    policy: &RecoveryPolicy,
    stats: bool,
    warn: &mut dyn FnMut(&str),
) -> Result<Shape, CliError> {
    let options = engine::infer_options_dyn(sformat);
    let results = engine::infer_sources_parallel(sformat, sources, &options, policy, jobs);
    let mut combined = Shape::Bottom;
    for (f, result) in files.iter().zip(results) {
        let mut out = match result {
            Ok(out) => out,
            Err(e) => return Err(engine_error(f, e)),
        };
        if !out.recovered.report.is_empty() {
            warn(&format_report(f, &out.recovered.report));
        }
        if out.recovered.summary.records == 0 {
            return Err(CliError::Parse(format!("{f}: input contains no records")));
        }
        // The fold's survivor is the schema-sized shape: migrate its
        // names into the process arena, then drop the corpus arena —
        // the file's whole data vocabulary is reclaimed right here.
        out.recovered.summary.shape.reintern(Interner::global());
        emit_corpus_stats(stats, f, &out.arena, warn);
        drop(out.arena);
        combined = csh(combined, out.recovered.summary.shape);
    }
    Ok(engine::wrap_corpus_shape_dyn(sformat, combined))
}

/// The `--stream` pipeline: each file is read in chunks through the
/// format's incremental front-end — corpora never need to fit in
/// memory. With `--jobs N` the budget spans files × record-bundle
/// workers: the reading threads only scan record boundaries and push
/// record bundles onto each file's shared work queue.
fn stream_shape(
    files: &[String],
    format: Format,
    chunk_size: usize,
    jobs: usize,
    policy: &RecoveryPolicy,
    stats: bool,
    warn: &mut dyn FnMut(&str),
) -> Result<Shape, CliError> {
    let sformat = engine_format(format, "--stream")?;
    let sources: Vec<engine::CorpusSource<'_>> = files
        .iter()
        .map(|f| engine::CorpusSource::Stream {
            path: f,
            chunk_size,
        })
        .collect();
    engine_shape(files, sformat, &sources, jobs, policy, stats, warn)
}

/// The `--jobs N` in-memory pipeline: each file is read whole, cut at
/// record boundaries and parsed→inferred by shard workers; the
/// semilattice join makes the result identical to the sequential fold.
fn sharded_shape(
    files: &[String],
    format: Format,
    jobs: usize,
    policy: &RecoveryPolicy,
    stats: bool,
    warn: &mut dyn FnMut(&str),
) -> Result<Shape, CliError> {
    let sformat = engine_format(format, "--jobs")?;
    let sources: Vec<engine::CorpusSource<'_>> = files
        .iter()
        .map(|f| engine::CorpusSource::File { path: f })
        .collect();
    engine_shape(files, sformat, &sources, jobs, policy, stats, warn)
}

/// The default one-shot pipeline: each file parses whole into a value
/// inside its own name arena; the per-file shape (the same `csh` fold
/// [`tfd_core::infer_many`] computes over the concatenated values) is
/// reinterned into the process arena and the file's vocabulary is
/// reclaimed before the next file opens.
fn oneshot_shape(
    files: &[String],
    format: Format,
    stats: bool,
    warn: &mut dyn FnMut(&str),
) -> Result<Shape, CliError> {
    let mut combined = Shape::Bottom;
    for f in files {
        let interner = Interner::new();
        let value = read_value(f, format, &interner)?;
        let mut shape = infer(std::slice::from_ref(&value), format);
        shape.reintern(Interner::global());
        emit_corpus_stats(stats, f, &interner, warn);
        drop(value);
        drop(interner);
        combined = csh(combined, shape);
    }
    Ok(combined)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Json,
    Xml,
    Csv,
    Html,
}

fn parse_format(s: &str) -> Result<Format, String> {
    match s {
        "json" => Ok(Format::Json),
        "xml" => Ok(Format::Xml),
        "csv" => Ok(Format::Csv),
        "html" => Ok(Format::Html),
        other => Err(format!(
            "unknown format {other} (expected json, xml, csv or html)"
        )),
    }
}

fn guess_format(file: &str) -> Result<Format, String> {
    let lower = file.to_ascii_lowercase();
    if lower.ends_with(".json") {
        Ok(Format::Json)
    } else if lower.ends_with(".xml") {
        Ok(Format::Xml)
    } else if lower.ends_with(".csv") || lower.ends_with(".tsv") {
        Ok(Format::Csv)
    } else if lower.ends_with(".html") || lower.ends_with(".htm") {
        Ok(Format::Html)
    } else {
        Err(format!(
            "cannot guess the format of {file}; pass --format json|xml|csv"
        ))
    }
}

fn read_value(file: &str, format: Format, interner: &Interner) -> Result<Value, CliError> {
    let text = std::fs::read_to_string(file).map_err(|e| CliError::Io(format!("{file}: {e}")))?;
    match engine_format(format, "") {
        Ok(sformat) => engine::parse_value_dyn_in(sformat, &text, interner)
            .map_err(|e| CliError::Parse(format!("{file}: {e}"))),
        Err(_) => {
            // HTML: the footnote-10 extension, outside the engine (its
            // front-end interns into the process arena).
            let tables = tfd_html::parse_tables(&text);
            tables
                .first()
                .map(tfd_html::HtmlTable::to_value)
                .ok_or_else(|| CliError::Parse(format!("{file}: no <table> found")))
        }
    }
}

fn infer(values: &[Value], format: Format) -> Shape {
    let options = match engine_format(format, "") {
        Ok(sformat) => engine::infer_options_dyn(sformat),
        // HTML tables are CSV-like cell grids (§6.2 inference applies).
        Err(_) => InferOptions::csv(),
    };
    tfd_core::infer_many(values, &options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("tfd-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn run_args(args: &[&str]) -> Result<String, String> {
        run_cli(args).map_err(|e| e.to_string())
    }

    fn run_cli(args: &[&str]) -> Result<String, CliError> {
        run(&args.iter().map(|s| (*s).to_string()).collect::<Vec<_>>())
    }

    /// Runs the CLI capturing the `--skip-errors` summaries instead of
    /// printing them to stderr.
    fn run_warned(args: &[&str]) -> (Result<String, CliError>, Vec<String>) {
        let mut warnings = Vec::new();
        let out = run_with_warnings(
            &args.iter().map(|s| (*s).to_string()).collect::<Vec<_>>(),
            &mut |w| warnings.push(w.to_owned()),
        );
        (out, warnings)
    }

    #[test]
    fn help_is_printed() {
        assert!(run_args(&[]).unwrap().contains("USAGE"));
        assert!(run_args(&["--help"]).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn infer_prints_shape() {
        let f = write_temp("a.json", r#"[1, 2.5, null]"#);
        let out = run_args(&["infer", &f]).unwrap();
        assert_eq!(out.trim(), "[nullable float]");
    }

    #[test]
    fn infer_merges_multiple_files() {
        let f1 = write_temp("m1.json", r#"{ "x": 1 }"#);
        let f2 = write_temp("m2.json", r#"{ "x": 2, "y": true }"#);
        let out = run_args(&["infer", &f1, &f2]).unwrap();
        assert!(out.contains("y : nullable bool"), "{out}");
    }

    #[test]
    fn fsharp_prints_signature() {
        let f = write_temp("p.json", r#"[{ "name": "Jan", "age": 25 }]"#);
        let out = run_args(&["fsharp", "--root", "Person", &f]).unwrap();
        assert!(out.contains("member Name : string"), "{out}");
        assert!(out.contains("member Age : int"), "{out}");
    }

    #[test]
    fn rust_prints_module() {
        let f = write_temp("r.json", r#"{ "id": 7 }"#);
        let out = run_args(&["rust", "--module", "gen", "--root", "Thing", &f]).unwrap();
        assert!(out.contains("pub mod gen"), "{out}");
        assert!(out.contains("pub struct Thing"), "{out}");
        assert!(out.contains("pub fn id(&self)"), "{out}");
    }

    #[test]
    fn value_dumps_paper_notation() {
        let f = write_temp("v.xml", r#"<root id="1"/>"#);
        let out = run_args(&["value", &f]).unwrap();
        assert!(out.contains("root"), "{out}");
        assert!(out.contains("id \u{21a6} 1"), "{out}");
    }

    #[test]
    fn format_is_guessed_from_extension() {
        let f = write_temp("g.csv", "a,b\n1,2\n");
        let out = run_args(&["infer", &f]).unwrap();
        // Column a contains only 0/1 values → the §6.2 bit shape.
        assert!(out.contains("a : bit"), "{out}");
        assert!(out.contains("b : int"), "{out}");
        let unknown = write_temp("g.dat", "a,b\n1,2\n");
        assert!(run_args(&["infer", &unknown]).is_err());
        assert!(run_args(&["infer", "--format", "csv", &unknown]).is_ok());
    }

    #[test]
    fn global_flag_applies_xml_global_inference() {
        let f = write_temp(
            "g.xml",
            "<page><a><t x=\"1\"/></a><b><t y=\"2\"/></b></page>",
        );
        let plain = run_args(&["infer", &f]).unwrap();
        let global = run_args(&["infer", "--global", &f]).unwrap();
        assert_ne!(plain, global);
        assert_eq!(global.matches("x : nullable int").count(), 2, "{global}");
    }

    #[test]
    fn html_tables_infer_like_csv() {
        let f = write_temp(
            "t.html",
            "<table><tr><th>City</th><th>Temp</th></tr>\
             <tr><td>Prague</td><td>5</td></tr></table>",
        );
        let out = run_args(&["infer", &f]).unwrap();
        assert!(out.contains("City : string"), "{out}");
        assert!(out.contains("Temp : int"), "{out}");
    }

    #[test]
    fn stream_mode_matches_in_memory_inference() {
        // The same file must print the same shape with and without
        // --stream, for every format and tiny chunk sizes included.
        let cases = [
            ("s.csv", "id,name,score\n1,a,2.5\n2,b,\n"),
            ("s.xml", "<row id=\"1\"><v>x</v></row>"),
            ("s.json", r#"{"a": 1, "b": [true, null]}"#),
        ];
        for (name, content) in cases {
            let f = write_temp(name, content);
            let plain = run_args(&["infer", &f]).unwrap();
            for chunk in ["1", "7", "65536"] {
                let streamed = run_args(&["infer", "--stream", "--chunk-size", chunk, &f]).unwrap();
                assert_eq!(streamed, plain, "{name} at chunk size {chunk}");
            }
        }
    }

    #[test]
    fn stream_mode_merges_multiple_files() {
        let f1 = write_temp("sm1.json", r#"{ "x": 1 }"#);
        let f2 = write_temp("sm2.json", r#"{ "x": 2, "y": true }"#);
        let plain = run_args(&["infer", &f1, &f2]).unwrap();
        let streamed = run_args(&["infer", "--stream", &f1, &f2]).unwrap();
        assert_eq!(streamed, plain);
    }

    #[test]
    fn stream_mode_works_for_codegen_commands() {
        let f = write_temp("sg.csv", "a,b\n1,x\n");
        assert_eq!(
            run_args(&["fsharp", "--stream", &f]).unwrap(),
            run_args(&["fsharp", &f]).unwrap()
        );
        assert_eq!(
            run_args(&["rust", "--stream", "--module", "gen", &f]).unwrap(),
            run_args(&["rust", "--module", "gen", &f]).unwrap()
        );
    }

    #[test]
    fn stream_mode_rejects_value_and_html() {
        let f = write_temp("sv.json", "1");
        assert!(run_args(&["value", "--stream", &f]).is_err());
        let h = write_temp("sv.html", "<table><tr><td>1</td></tr></table>");
        assert!(run_args(&["infer", "--stream", &h]).is_err());
        assert!(run_args(&["infer", "--stream", "--chunk-size", "0", &f]).is_err());
        assert!(run_args(&["infer", "--stream", "--chunk-size", "x", &f]).is_err());
    }

    #[test]
    fn jobs_mode_matches_sequential_inference() {
        // Sharded parallel inference must print byte-identical output,
        // with and without --stream, for all three engine formats.
        let cases = [
            ("j.csv", "id,name,score\n1,a,2.5\n2,b,\n3,c,4.0\n"),
            ("j.xml", "<row id=\"1\"><v>x</v></row><row id=\"2\"/>"),
            ("j.json", "{\"a\": 1}\n{\"a\": 2.5, \"b\": [true, null]}\n"),
        ];
        for (name, content) in cases {
            let f = write_temp(name, content);
            let sequential = run_args(&["infer", "--stream", &f]).unwrap();
            for jobs in ["1", "2", "7"] {
                let par = run_args(&["infer", "--jobs", jobs, &f]).unwrap();
                assert_eq!(par, sequential, "{name} at --jobs {jobs}");
                let par_stream = run_args(&[
                    "infer",
                    "--stream",
                    "--jobs",
                    jobs,
                    "--chunk-size",
                    "16",
                    &f,
                ])
                .unwrap();
                assert_eq!(par_stream, sequential, "{name} at --stream --jobs {jobs}");
            }
        }
    }

    #[test]
    fn jobs_mode_works_for_codegen_and_global() {
        let f = write_temp("jg.csv", "a,b\n1,x\n2,y\n");
        assert_eq!(
            run_args(&["fsharp", "--jobs", "3", &f]).unwrap(),
            run_args(&["fsharp", "--stream", &f]).unwrap()
        );
        assert_eq!(
            run_args(&["rust", "--jobs", "3", "--module", "gen", &f]).unwrap(),
            run_args(&["rust", "--stream", "--module", "gen", &f]).unwrap()
        );
        let x = write_temp(
            "jg.xml",
            "<page><a><t x=\"1\"/></a><b><t y=\"2\"/></b></page>",
        );
        assert_eq!(
            run_args(&["infer", "--global", "--jobs", "4", &x]).unwrap(),
            run_args(&["infer", "--global", "--stream", &x]).unwrap()
        );
    }

    #[test]
    fn jobs_mode_reports_sequential_errors() {
        let f = write_temp("je.json", "{\"a\": 1}\n{\"b\": @}\n");
        let seq = run_args(&["infer", "--stream", &f]).unwrap_err();
        let par = run_args(&["infer", "--jobs", "4", &f]).unwrap_err();
        assert_eq!(par, seq);
        assert!(run_args(&["infer", "--jobs", "0", &f]).is_err());
        assert!(run_args(&["infer", "--jobs", "x", &f]).is_err());
        assert!(run_args(&["value", "--jobs", "2", &f]).is_err());
    }

    #[test]
    fn env_flag_prints_the_definitions_table() {
        let f = write_temp("e.xml", "<ul><li><ul><li/></ul></li></ul>");
        let out = run_args(&["infer", "--global", "--env", &f]).unwrap();
        assert!(out.contains("where"), "{out}");
        assert!(out.contains("ul = ul {"), "{out}");
        assert!(out.contains("li = li {"), "{out}");
        // Without --global the table flag is an error.
        assert!(run_args(&["infer", "--env", &f]).is_err());
        // A recursion-free corpus prints an empty table marker.
        let flat = write_temp("e2.xml", "<a><b/></a>");
        let out = run_args(&["infer", "--global", "--env", &flat]).unwrap();
        assert!(out.contains("(no global definitions)"), "{out}");
    }

    #[test]
    fn stream_mode_reports_parse_errors_with_positions() {
        let f = write_temp("se.json", "{\"a\": 1}\n{\"b\": @}\n");
        let err = run_args(&["infer", "--stream", &f]).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn stream_mode_rejects_record_free_input_like_the_oneshot_path() {
        // Both modes must reject input with nothing to infer from,
        // rather than --stream silently printing ⊥.
        for (name, content) in [
            ("e.json", "  \n "),
            ("e.xml", "<!-- only a comment -->"),
            ("e.csv", ""),
        ] {
            let f = write_temp(name, content);
            assert!(run_args(&["infer", &f]).is_err(), "{name} (one-shot)");
            let err = run_args(&["infer", "--stream", &f]).unwrap_err();
            assert!(
                err.contains("no records") || err.contains("no rows"),
                "{name} (stream): {err}"
            );
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_args(&["infer", "/nonexistent/x.json"]).is_err());
        assert!(run_args(&["bogus-command", "x.json"]).is_err());
        assert!(run_args(&["infer", "--format", "yaml", "x"]).is_err());
        let bad = write_temp("bad.json", "{");
        assert!(run_args(&["infer", &bad]).is_err());
    }

    #[test]
    fn errors_carry_the_documented_exit_codes() {
        let good = write_temp("code0.json", "{\"a\": 1}\n");
        assert!(run_cli(&["infer", &good]).is_ok());
        // 1: usage errors.
        assert_eq!(
            run_cli(&["infer", "--bogus", &good])
                .unwrap_err()
                .exit_code(),
            1
        );
        assert_eq!(run_cli(&["infer"]).unwrap_err().exit_code(), 1);
        // 2: parse errors, through every driver.
        let bad = write_temp("code2.json", "{\"a\": @}\n");
        for extra in [&[][..], &["--stream"][..], &["--jobs", "2"][..]] {
            let mut args = vec!["infer"];
            args.extend_from_slice(extra);
            args.push(&bad);
            assert_eq!(run_cli(&args).unwrap_err().exit_code(), 2, "{extra:?}");
        }
        // 3: unreadable input.
        for extra in [&[][..], &["--stream"][..], &["--jobs", "2"][..]] {
            let mut args = vec!["infer"];
            args.extend_from_slice(extra);
            args.push("/nonexistent/x.json");
            assert_eq!(run_cli(&args).unwrap_err().exit_code(), 3, "{extra:?}");
        }
        // The contract is user-visible.
        assert!(run_args(&["--help"]).unwrap().contains("EXIT CODES"));
    }

    #[test]
    fn skip_errors_drops_malformed_records_and_summarizes() {
        let dirty = write_temp(
            "skip.json",
            "{\"a\": 1}\n{\"a\": @}\n{\"a\": 2, \"b\": true}\n{\"a\": [1,]}\n{\"a\": 3}\n",
        );
        let clean = write_temp(
            "skip_clean.json",
            "{\"a\": 1}\n{\"a\": 2, \"b\": true}\n{\"a\": 3}\n",
        );
        // (--stream: the one-shot JSON front-end reads a single
        // document, while these corpora are record streams.)
        let want = run_args(&["infer", "--stream", &clean]).unwrap();
        // Fail-fast still aborts…
        assert_eq!(run_cli(&["infer", &dirty]).unwrap_err().exit_code(), 2);
        // …while every skip-mode driver folds exactly the clean subset.
        for extra in [
            &[][..],
            &["--jobs", "2"][..],
            &["--jobs", "7"][..],
            &["--stream"][..],
            &["--stream", "--chunk-size", "3", "--jobs", "2"][..],
        ] {
            let mut args = vec!["infer", "--skip-errors"];
            args.extend_from_slice(extra);
            args.push(&dirty);
            let (out, warnings) = run_warned(&args);
            assert_eq!(out.unwrap(), want, "{extra:?}");
            assert_eq!(warnings.len(), 1, "{extra:?}: {warnings:?}");
            assert!(
                warnings[0].contains("skipped 2 malformed records"),
                "{extra:?}: {}",
                warnings[0]
            );
            // First/last positions are stream-global document order.
            assert!(warnings[0].contains("first:"), "{}", warnings[0]);
            assert!(warnings[0].contains("line 2"), "{}", warnings[0]);
            assert!(warnings[0].contains("line 4"), "{}", warnings[0]);
        }
    }

    #[test]
    fn skip_errors_budget_aborts_with_a_parse_error() {
        let dirty = write_temp(
            "budget.json",
            "{\"a\": @}\n{\"b\": @}\n{\"c\": @}\n{\"d\": 1}\n",
        );
        for extra in [&[][..], &["--stream"][..], &["--jobs", "3"][..]] {
            let mut args = vec!["infer", "--skip-errors", "--max-errors", "2"];
            args.extend_from_slice(extra);
            args.push(&dirty);
            let err = run_cli(&args).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{extra:?}");
            let msg = err.to_string();
            assert!(msg.contains("error budget exceeded"), "{extra:?}: {msg}");
            assert!(msg.contains("line 1"), "{extra:?}: {msg}");
        }
        // A generous budget lets the run through.
        let ok = run_cli(&["infer", "--skip-errors", "--max-errors", "3", &dirty]);
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn recovery_flags_imply_the_record_stream_engine() {
        // --max-depth without --stream/--jobs still reaches the engine.
        let deep = write_temp("deep.json", "[[[[[1]]]]]\n");
        let err = run_cli(&["infer", "--max-depth", "3", &deep]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("nesting"), "{err}");
        assert!(run_cli(&["infer", "--max-depth", "9", &deep]).is_ok());
        // --max-record-bytes likewise.
        let wide = write_temp("wide.json", "{\"a\": \"0123456789abcdef\"}\n");
        let err = run_cli(&["infer", "--max-record-bytes", "8", &wide]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("record exceeds"), "{err}");
    }

    #[test]
    fn analyze_reports_fingerprint_lints_and_paths() {
        let f = write_temp(
            "an.json",
            r#"{"items": [{"name": "a", "note": null}, {"name": "b", "note": "x"}]}"#,
        );
        let out = run_args(&["analyze", &f]).unwrap();
        assert!(out.contains("fingerprint: "), "{out}");
        assert!(out.contains("0 error(s)"), "{out}");
        let out = run_args(&["analyze", "--path", "items[].name", &f]).unwrap();
        assert!(out.contains("path $.items[].name: safe — string"), "{out}");
        // An unsafe path flips the command into the Analysis error.
        let err = run_cli(&["analyze", "--path", "items[].note.len", &f]).unwrap_err();
        assert_eq!(err.exit_code(), 4);
        assert!(err.to_string().contains("path-null-deref"), "{err}");
        // A malformed path is a usage error, not an analysis finding.
        let err = run_cli(&["analyze", "--path", "items[0]", &f]).unwrap_err();
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn analyze_lint_levels_drive_the_exit_code() {
        // score is sometimes a float, sometimes a string → the
        // mixed-number-string lint fires (CSV columns inferred per-row).
        let f = write_temp("lint.csv", "id,score\n1,2.5\n2,high\n");
        let out = run_args(&["analyze", &f]).unwrap();
        assert!(out.contains("warning[mixed-number-string]"), "{out}");
        // Denied: same finding, error severity, exit 4.
        let err = run_cli(&["analyze", "--deny", "mixed-number-string", &f]).unwrap_err();
        assert_eq!(err.exit_code(), 4);
        assert!(
            err.to_string().contains("error[mixed-number-string]"),
            "{err}"
        );
        // Allowed: silent again (later flags win over earlier ones).
        let out = run_args(&[
            "analyze",
            "--deny",
            "all",
            "--allow",
            "mixed-number-string",
            &f,
        ])
        .unwrap();
        assert!(out.contains("0 lint finding(s)"), "{out}");
        // Unknown rule names are usage errors that list the registry.
        let err = run_cli(&["analyze", "--deny", "bogus-rule", &f]).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("mixed-number-string"), "{err}");
    }

    #[test]
    fn diff_classifies_and_exits_by_mode() {
        let old = write_temp("d_old.csv", "id,score\n1,2.5\n");
        let widened = write_temp("d_new.csv", "id,score\n1,\n2,3.5\n");
        // Widening (score becomes nullable): backward-safe…
        let out = run_args(&["diff", &old, &widened]).unwrap();
        assert!(out.contains("nullability-introduced"), "{out}");
        assert!(out.contains("0 breaking"), "{out}");
        // …but forward-breaking, and full covers both directions.
        for mode in ["forward", "full"] {
            let err = run_cli(&["diff", "--mode", mode, &old, &widened]).unwrap_err();
            assert_eq!(err.exit_code(), 4, "{mode}");
            assert!(err.to_string().contains("breaking"), "{mode}: {err}");
        }
        // Identical corpora: empty report, exit 0, in every mode.
        let out = run_args(&["diff", "--mode", "full", &old, &old]).unwrap();
        assert!(out.contains("shapes are identical"), "{out}");
        // Wrong arity and bad mode are usage errors.
        assert_eq!(run_cli(&["diff", &old]).unwrap_err().exit_code(), 1);
        assert_eq!(
            run_cli(&["diff", "--mode", "sideways", &old, &old])
                .unwrap_err()
                .exit_code(),
            1
        );
    }

    #[test]
    fn diff_composes_with_stream_and_jobs() {
        let old = write_temp("ds_old.csv", "id,score\n1,2.5\n2,3.0\n");
        let new = write_temp("ds_new.csv", "id,score\n1,high\n2,low\n");
        let plain = run_cli(&["diff", &old, &new]).unwrap_err();
        for extra in [&["--stream"][..], &["--jobs", "2"][..]] {
            let mut args = vec!["diff"];
            args.extend_from_slice(extra);
            args.extend([old.as_str(), new.as_str()]);
            let err = run_cli(&args).unwrap_err();
            assert_eq!(err.exit_code(), 4, "{extra:?}");
            assert_eq!(err.to_string(), plain.to_string(), "{extra:?}");
        }
    }

    #[test]
    fn json_output_is_machine_readable() {
        let old = write_temp("j_old.csv", "id,score\n1,2.5\n");
        let new = write_temp("j_new.csv", "id,score\n1,high\n");
        let err = run_cli(&["diff", "--json", &old, &new]).unwrap_err();
        let text = err.to_string();
        assert!(
            text.starts_with('{') && text.trim_end().ends_with('}'),
            "{text}"
        );
        assert!(text.contains("\"kind\":\"type-changed\""), "{text}");
        assert!(text.contains("\"compatible\":false"), "{text}");
        assert!(text.contains("\"breaking\":true"), "{text}");
        let f = write_temp("j_an.json", r#"{"a": 1}"#);
        let out = run_args(&["analyze", "--json", "--path", "a", &f]).unwrap();
        assert!(out.contains("\"fingerprint\":"), "{out}");
        assert!(out.contains("\"safe\":true"), "{out}");
        assert!(out.contains("\"result\":\"int\""), "{out}");
    }

    #[test]
    fn check_path_command_verifies_paths() {
        let f = write_temp(
            "cp.json",
            r#"{"user": {"name": "jan"}, "tags": ["a", "b"]}"#,
        );
        let out = run_args(&["check-path", "--path", "user.name", "--path", "tags[]", &f]).unwrap();
        assert!(out.contains("2 path(s) checked, 0 unsafe"), "{out}");
        let err = run_cli(&["check-path", "--path", "user.age", &f]).unwrap_err();
        assert_eq!(err.exit_code(), 4);
        assert!(err.to_string().contains("path-missing-field"), "{err}");
        // No paths given: usage error.
        assert_eq!(run_cli(&["check-path", &f]).unwrap_err().exit_code(), 1);
    }

    #[test]
    fn stats_flag_reports_per_corpus_deltas_and_a_process_summary() {
        let f = write_temp("st.json", r#"{"alpha": 1, "beta": true}"#);
        let (out, warnings) = run_warned(&["infer", "--stats", &f]);
        assert!(out.is_ok());
        // One per-corpus delta (the file's own arena) plus the
        // process-wide summary of what stays live after it drops.
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("interner["), "{}", warnings[0]);
        assert!(warnings[0].contains("distinct names"), "{}", warnings[0]);
        assert!(warnings[0].contains("reclaimed"), "{}", warnings[0]);
        assert!(warnings[1].contains("bytes retained"), "{}", warnings[1]);
        assert!(warnings[1].contains("live arena"), "{}", warnings[1]);
        // Also on analysis commands, and off by default.
        let (_, warnings) = run_warned(&["analyze", "--stats", &f]);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        let (_, warnings) = run_warned(&["infer", &f]);
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn sequential_runs_drop_each_files_arena() {
        // Two files with disjoint vocabularies: after the run, the
        // process-wide retained figures must reflect only the
        // (schema-sized) reinterned survivors, not both corpora — and a
        // repeat run must not grow the process arena further.
        let a = write_temp(
            "seq_a.json",
            r#"{"seq_arena_key_a1": 1, "seq_arena_key_a2": 2}"#,
        );
        let b = write_temp(
            "seq_b.json",
            r#"{"seq_arena_key_b1": 1, "seq_arena_key_b2": 2}"#,
        );
        let run = || run_cli(&["infer", &a, &b]).unwrap();
        let first = run();
        let baseline = tfd_value::intern::stats();
        let second = run();
        assert_eq!(first, second);
        let after = tfd_value::intern::stats();
        // Every name the second run needed was already reinterned by
        // the first, and both per-file arenas dropped: stats return to
        // the post-first-run baseline instead of accumulating.
        assert_eq!(after.symbols, baseline.symbols);
        assert_eq!(after.retained_bytes, baseline.retained_bytes);
        assert_eq!(after.arenas, baseline.arenas);
    }

    #[test]
    fn recovery_flag_misuse_is_a_usage_error() {
        let f = write_temp("misuse.json", "{\"a\": 1}\n");
        for args in [
            &["infer", "--max-errors", "5", &f][..],
            &["infer", "--skip-errors", "--max-errors", "-1", &f][..],
            &["infer", "--max-record-bytes", "0", &f][..],
            &["infer", "--max-depth", "0", &f][..],
            &["value", "--skip-errors", &f][..],
            &["infer", "--skip-errors", "--format", "html", &f][..],
        ] {
            let err = run_cli(args).unwrap_err();
            assert_eq!(err.exit_code(), 1, "{args:?}: {err}");
        }
    }
}
