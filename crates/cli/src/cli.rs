//! Command-line argument handling and subcommands for `tfd`.
//!
//! All per-format work routes through the engine layer
//! (`tfd_core::engine`): the CLI decides *which* format and *how many
//! workers*, the engine does the rest.

use tfd_codegen::{generate_global, CodegenOptions, SourceFormat};
use tfd_core::{csh, engine, globalize_env, GlobalShape, InferOptions, Shape, StreamFormat};
use tfd_value::Value;

const USAGE: &str = "\
tfd — types from data (shape inference for JSON/XML/CSV)

USAGE:
    tfd <COMMAND> [OPTIONS] FILE...

COMMANDS:
    infer     print the inferred shape in the paper's notation
    fsharp    print F#-style provided type signatures
    rust      print generated Rust typed-access code
    value     dump the universal data value of a document

OPTIONS:
    --format <json|xml|csv|html>  input format (default: guessed from extension)
    --global                   XML global (by-name) inference (§6.2)
    --env                      with --global: print the recursive
                               definitions table (the ShapeEnv) under
                               the root shape
    --stream                   chunk-fed parse→infer: records are folded
                               into the shape as they complete, so corpora
                               larger than RAM work (not with value/html)
    --chunk-size <bytes>       read size for --stream (default: 65536)
    --jobs <N>                 parallel sharded parse→infer with N
                               worker threads (with or without --stream;
                               the corpus is cut at record boundaries and
                               per-shard shapes join with csh, so the
                               result is identical to --jobs 1; implies
                               record-stream reading, like --stream)
    --module <name>            module name for `rust` (default: provided)
    --root <Name>              root type name (default: Root)
    --prefix <path>            support-crate path for `rust`
                               (default: ::types_from_data)
    --help                     show this help
";

/// Runs the CLI; returns the text to print.
pub fn run(args: &[String]) -> Result<String, String> {
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        return Ok(USAGE.to_owned());
    }
    let command = args[0].as_str();
    let mut format: Option<Format> = None;
    let mut global = false;
    let mut env_table = false;
    let mut stream = false;
    let mut chunk_size = tfd_core::stream::DEFAULT_CHUNK_SIZE;
    let mut jobs: Option<usize> = None;
    let mut module = "provided".to_owned();
    let mut root = "Root".to_owned();
    let mut prefix = "::types_from_data".to_owned();
    let mut files: Vec<String> = Vec::new();

    let mut i = 1usize;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                let v = args.get(i).ok_or("--format requires a value")?;
                format = Some(parse_format(v)?);
            }
            "--global" => global = true,
            "--env" => env_table = true,
            "--stream" => stream = true,
            "--chunk-size" => {
                i += 1;
                let v = args.get(i).ok_or("--chunk-size requires a value")?;
                chunk_size =
                    v.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("--chunk-size must be a positive integer, got {v}")
                    })?;
            }
            "--jobs" => {
                i += 1;
                let v = args.get(i).ok_or("--jobs requires a value")?;
                jobs = Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("--jobs must be a positive integer, got {v}"))?,
                );
            }
            "--module" => {
                i += 1;
                module = args.get(i).ok_or("--module requires a value")?.clone();
            }
            "--root" => {
                i += 1;
                root = args.get(i).ok_or("--root requires a value")?.clone();
            }
            "--prefix" => {
                i += 1;
                prefix = args.get(i).ok_or("--prefix requires a value")?.clone();
            }
            "--help" | "-h" => return Ok(USAGE.to_owned()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown option {flag}\n\n{USAGE}"));
            }
            file => files.push(file.to_owned()),
        }
        i += 1;
    }
    if files.is_empty() {
        return Err(format!("no input files\n\n{USAGE}"));
    }

    let format = match format {
        Some(f) => f,
        None => guess_format(&files[0])?,
    };
    if env_table && !global {
        return Err("--env requires --global (the definitions table is the \
             §6.2 global-inference environment)"
            .to_owned());
    }

    if command == "value" {
        if stream || jobs.is_some() {
            return Err(
                "--stream/--jobs are not supported with the value command (records \
                 are folded into the shape and dropped, never materialized)"
                    .to_owned(),
            );
        }
        let values = read_values(&files, format)?;
        let mut out = String::new();
        for v in &values {
            out.push_str(&tfd_value::builder::to_pretty_string(v));
            out.push('\n');
        }
        return Ok(out);
    }

    let shape = if stream {
        stream_shape(&files, format, chunk_size, jobs.unwrap_or(1))?
    } else if let Some(jobs) = jobs {
        // --jobs without --stream: whole files in memory, sharded at
        // record boundaries (record-stream semantics, like --stream).
        sharded_shape(&files, format, jobs)?
    } else {
        infer(&read_values(&files, format)?, format)
    };
    // The §6.2 global mode goes through the env-carrying form
    // (`GlobalShape`): recursion is represented by μ-references into the
    // definitions table, so `--global` reaches a true fixed point even
    // on mutually recursive corpora.
    let global_shape = if global {
        globalize_env(shape)
    } else {
        GlobalShape::plain(shape)
    };

    match command {
        "infer" if env_table => Ok(render_env_table(&global_shape)),
        "infer" => Ok(format!("{}\n", global_shape.inline())),
        "fsharp" => {
            let provided = if global {
                tfd_provider::provide_global(&global_shape, &root)
            } else {
                tfd_provider::provide_idiomatic(&global_shape.root, &root)
            };
            Ok(tfd_provider::signature(&provided))
        }
        "rust" => {
            let options = CodegenOptions {
                crate_prefix: prefix,
                format: match format {
                    Format::Json => Some(SourceFormat::Json),
                    Format::Xml => Some(SourceFormat::Xml),
                    Format::Csv => Some(SourceFormat::Csv),
                    Format::Html => None,
                },
                sample_text: None,
            };
            Ok(generate_global(&global_shape, &module, &root, &options))
        }
        other => Err(format!("unknown command {other}\n\n{USAGE}")),
    }
}

fn read_values(files: &[String], format: Format) -> Result<Vec<Value>, String> {
    files.iter().map(|f| read_value(f, format)).collect()
}

/// Renders the `--global --env` view: the root shape followed by the
/// recursive definitions table, one entry per line.
fn render_env_table(global: &GlobalShape) -> String {
    let mut out = format!("{}\n", global.root);
    if global.env.is_empty() {
        out.push_str("(no global definitions)\n");
    } else {
        out.push_str("where\n");
        for (name, def) in global.env.iter() {
            out.push_str(&format!("  {name} = {}\n", Shape::Record(def.clone())));
        }
    }
    out
}

/// The engine format for a CLI format (`html` has no streaming or
/// sharding front-end — it is the footnote-10 extension).
fn engine_format(format: Format, flag: &str) -> Result<StreamFormat, String> {
    match format {
        Format::Json => Ok(StreamFormat::Json),
        Format::Xml => Ok(StreamFormat::Xml),
        Format::Csv => Ok(StreamFormat::Csv),
        Format::Html => Err(format!("{flag} supports json, xml and csv inputs")),
    }
}

/// The engine-backed record-stream pipelines. Each file's records are
/// folded into a per-file shape (through the engine entry `summarize`
/// picks), the per-file folds merge with `csh` — exactly the
/// `infer_many` fold over the concatenated record sequence — and the
/// result is lifted to the one-shot corpus shape (the CSV row fold
/// re-wraps as a collection, so every mode prints the same shape).
/// Record-free input is rejected, matching the one-shot front-ends.
fn engine_shape(
    files: &[String],
    sformat: StreamFormat,
    summarize: impl Fn(&str, &InferOptions) -> Result<tfd_core::StreamSummary, String>,
) -> Result<Shape, String> {
    let options = engine::infer_options_dyn(sformat);
    let mut combined = Shape::Bottom;
    for f in files {
        let summary = summarize(f, &options)?;
        if summary.records == 0 {
            return Err(format!("{f}: input contains no records"));
        }
        combined = csh(combined, summary.shape);
    }
    Ok(engine::wrap_corpus_shape_dyn(sformat, combined))
}

/// The `--stream` pipeline: each file is read in chunks through the
/// format's incremental front-end — corpora never need to fit in
/// memory. With `--jobs N` the reading thread only scans record
/// boundaries and fans record bundles out to N parser workers.
fn stream_shape(
    files: &[String],
    format: Format,
    chunk_size: usize,
    jobs: usize,
) -> Result<Shape, String> {
    let sformat = engine_format(format, "--stream")?;
    engine_shape(files, sformat, |f, options| {
        let file = std::fs::File::open(f).map_err(|e| format!("{f}: {e}"))?;
        engine::infer_reader_parallel_dyn(sformat, file, options, chunk_size, jobs)
            .map_err(|e| format!("{f}: {e}"))
    })
}

/// The `--jobs N` in-memory pipeline: each file is read whole, cut at
/// record boundaries and parsed→inferred by N shard workers; the
/// semilattice join makes the result identical to the sequential fold.
fn sharded_shape(files: &[String], format: Format, jobs: usize) -> Result<Shape, String> {
    let sformat = engine_format(format, "--jobs")?;
    engine_shape(files, sformat, |f, options| {
        let bytes = std::fs::read(f).map_err(|e| format!("{f}: {e}"))?;
        engine::infer_slice_dyn(sformat, &bytes, options, jobs).map_err(|e| format!("{f}: {e}"))
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Json,
    Xml,
    Csv,
    Html,
}

fn parse_format(s: &str) -> Result<Format, String> {
    match s {
        "json" => Ok(Format::Json),
        "xml" => Ok(Format::Xml),
        "csv" => Ok(Format::Csv),
        "html" => Ok(Format::Html),
        other => Err(format!(
            "unknown format {other} (expected json, xml, csv or html)"
        )),
    }
}

fn guess_format(file: &str) -> Result<Format, String> {
    let lower = file.to_ascii_lowercase();
    if lower.ends_with(".json") {
        Ok(Format::Json)
    } else if lower.ends_with(".xml") {
        Ok(Format::Xml)
    } else if lower.ends_with(".csv") || lower.ends_with(".tsv") {
        Ok(Format::Csv)
    } else if lower.ends_with(".html") || lower.ends_with(".htm") {
        Ok(Format::Html)
    } else {
        Err(format!(
            "cannot guess the format of {file}; pass --format json|xml|csv"
        ))
    }
}

fn read_value(file: &str, format: Format) -> Result<Value, String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    match engine_format(format, "") {
        Ok(sformat) => engine::parse_value_dyn(sformat, &text).map_err(|e| format!("{file}: {e}")),
        Err(_) => {
            // HTML: the footnote-10 extension, outside the engine.
            let tables = tfd_html::parse_tables(&text);
            tables
                .first()
                .map(tfd_html::HtmlTable::to_value)
                .ok_or_else(|| format!("{file}: no <table> found"))
        }
    }
}

fn infer(values: &[Value], format: Format) -> Shape {
    let options = match engine_format(format, "") {
        Ok(sformat) => engine::infer_options_dyn(sformat),
        // HTML tables are CSV-like cell grids (§6.2 inference applies).
        Err(_) => InferOptions::csv(),
    };
    tfd_core::infer_many(values, &options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("tfd-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn run_args(args: &[&str]) -> Result<String, String> {
        run(&args.iter().map(|s| (*s).to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn help_is_printed() {
        assert!(run_args(&[]).unwrap().contains("USAGE"));
        assert!(run_args(&["--help"]).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn infer_prints_shape() {
        let f = write_temp("a.json", r#"[1, 2.5, null]"#);
        let out = run_args(&["infer", &f]).unwrap();
        assert_eq!(out.trim(), "[nullable float]");
    }

    #[test]
    fn infer_merges_multiple_files() {
        let f1 = write_temp("m1.json", r#"{ "x": 1 }"#);
        let f2 = write_temp("m2.json", r#"{ "x": 2, "y": true }"#);
        let out = run_args(&["infer", &f1, &f2]).unwrap();
        assert!(out.contains("y : nullable bool"), "{out}");
    }

    #[test]
    fn fsharp_prints_signature() {
        let f = write_temp("p.json", r#"[{ "name": "Jan", "age": 25 }]"#);
        let out = run_args(&["fsharp", "--root", "Person", &f]).unwrap();
        assert!(out.contains("member Name : string"), "{out}");
        assert!(out.contains("member Age : int"), "{out}");
    }

    #[test]
    fn rust_prints_module() {
        let f = write_temp("r.json", r#"{ "id": 7 }"#);
        let out = run_args(&["rust", "--module", "gen", "--root", "Thing", &f]).unwrap();
        assert!(out.contains("pub mod gen"), "{out}");
        assert!(out.contains("pub struct Thing"), "{out}");
        assert!(out.contains("pub fn id(&self)"), "{out}");
    }

    #[test]
    fn value_dumps_paper_notation() {
        let f = write_temp("v.xml", r#"<root id="1"/>"#);
        let out = run_args(&["value", &f]).unwrap();
        assert!(out.contains("root"), "{out}");
        assert!(out.contains("id \u{21a6} 1"), "{out}");
    }

    #[test]
    fn format_is_guessed_from_extension() {
        let f = write_temp("g.csv", "a,b\n1,2\n");
        let out = run_args(&["infer", &f]).unwrap();
        // Column a contains only 0/1 values → the §6.2 bit shape.
        assert!(out.contains("a : bit"), "{out}");
        assert!(out.contains("b : int"), "{out}");
        let unknown = write_temp("g.dat", "a,b\n1,2\n");
        assert!(run_args(&["infer", &unknown]).is_err());
        assert!(run_args(&["infer", "--format", "csv", &unknown]).is_ok());
    }

    #[test]
    fn global_flag_applies_xml_global_inference() {
        let f = write_temp(
            "g.xml",
            "<page><a><t x=\"1\"/></a><b><t y=\"2\"/></b></page>",
        );
        let plain = run_args(&["infer", &f]).unwrap();
        let global = run_args(&["infer", "--global", &f]).unwrap();
        assert_ne!(plain, global);
        assert_eq!(global.matches("x : nullable int").count(), 2, "{global}");
    }

    #[test]
    fn html_tables_infer_like_csv() {
        let f = write_temp(
            "t.html",
            "<table><tr><th>City</th><th>Temp</th></tr>\
             <tr><td>Prague</td><td>5</td></tr></table>",
        );
        let out = run_args(&["infer", &f]).unwrap();
        assert!(out.contains("City : string"), "{out}");
        assert!(out.contains("Temp : int"), "{out}");
    }

    #[test]
    fn stream_mode_matches_in_memory_inference() {
        // The same file must print the same shape with and without
        // --stream, for every format and tiny chunk sizes included.
        let cases = [
            ("s.csv", "id,name,score\n1,a,2.5\n2,b,\n"),
            ("s.xml", "<row id=\"1\"><v>x</v></row>"),
            ("s.json", r#"{"a": 1, "b": [true, null]}"#),
        ];
        for (name, content) in cases {
            let f = write_temp(name, content);
            let plain = run_args(&["infer", &f]).unwrap();
            for chunk in ["1", "7", "65536"] {
                let streamed = run_args(&["infer", "--stream", "--chunk-size", chunk, &f]).unwrap();
                assert_eq!(streamed, plain, "{name} at chunk size {chunk}");
            }
        }
    }

    #[test]
    fn stream_mode_merges_multiple_files() {
        let f1 = write_temp("sm1.json", r#"{ "x": 1 }"#);
        let f2 = write_temp("sm2.json", r#"{ "x": 2, "y": true }"#);
        let plain = run_args(&["infer", &f1, &f2]).unwrap();
        let streamed = run_args(&["infer", "--stream", &f1, &f2]).unwrap();
        assert_eq!(streamed, plain);
    }

    #[test]
    fn stream_mode_works_for_codegen_commands() {
        let f = write_temp("sg.csv", "a,b\n1,x\n");
        assert_eq!(
            run_args(&["fsharp", "--stream", &f]).unwrap(),
            run_args(&["fsharp", &f]).unwrap()
        );
        assert_eq!(
            run_args(&["rust", "--stream", "--module", "gen", &f]).unwrap(),
            run_args(&["rust", "--module", "gen", &f]).unwrap()
        );
    }

    #[test]
    fn stream_mode_rejects_value_and_html() {
        let f = write_temp("sv.json", "1");
        assert!(run_args(&["value", "--stream", &f]).is_err());
        let h = write_temp("sv.html", "<table><tr><td>1</td></tr></table>");
        assert!(run_args(&["infer", "--stream", &h]).is_err());
        assert!(run_args(&["infer", "--stream", "--chunk-size", "0", &f]).is_err());
        assert!(run_args(&["infer", "--stream", "--chunk-size", "x", &f]).is_err());
    }

    #[test]
    fn jobs_mode_matches_sequential_inference() {
        // Sharded parallel inference must print byte-identical output,
        // with and without --stream, for all three engine formats.
        let cases = [
            ("j.csv", "id,name,score\n1,a,2.5\n2,b,\n3,c,4.0\n"),
            ("j.xml", "<row id=\"1\"><v>x</v></row><row id=\"2\"/>"),
            ("j.json", "{\"a\": 1}\n{\"a\": 2.5, \"b\": [true, null]}\n"),
        ];
        for (name, content) in cases {
            let f = write_temp(name, content);
            let sequential = run_args(&["infer", "--stream", &f]).unwrap();
            for jobs in ["1", "2", "7"] {
                let par = run_args(&["infer", "--jobs", jobs, &f]).unwrap();
                assert_eq!(par, sequential, "{name} at --jobs {jobs}");
                let par_stream = run_args(&[
                    "infer",
                    "--stream",
                    "--jobs",
                    jobs,
                    "--chunk-size",
                    "16",
                    &f,
                ])
                .unwrap();
                assert_eq!(par_stream, sequential, "{name} at --stream --jobs {jobs}");
            }
        }
    }

    #[test]
    fn jobs_mode_works_for_codegen_and_global() {
        let f = write_temp("jg.csv", "a,b\n1,x\n2,y\n");
        assert_eq!(
            run_args(&["fsharp", "--jobs", "3", &f]).unwrap(),
            run_args(&["fsharp", "--stream", &f]).unwrap()
        );
        assert_eq!(
            run_args(&["rust", "--jobs", "3", "--module", "gen", &f]).unwrap(),
            run_args(&["rust", "--stream", "--module", "gen", &f]).unwrap()
        );
        let x = write_temp(
            "jg.xml",
            "<page><a><t x=\"1\"/></a><b><t y=\"2\"/></b></page>",
        );
        assert_eq!(
            run_args(&["infer", "--global", "--jobs", "4", &x]).unwrap(),
            run_args(&["infer", "--global", "--stream", &x]).unwrap()
        );
    }

    #[test]
    fn jobs_mode_reports_sequential_errors() {
        let f = write_temp("je.json", "{\"a\": 1}\n{\"b\": @}\n");
        let seq = run_args(&["infer", "--stream", &f]).unwrap_err();
        let par = run_args(&["infer", "--jobs", "4", &f]).unwrap_err();
        assert_eq!(par, seq);
        assert!(run_args(&["infer", "--jobs", "0", &f]).is_err());
        assert!(run_args(&["infer", "--jobs", "x", &f]).is_err());
        assert!(run_args(&["value", "--jobs", "2", &f]).is_err());
    }

    #[test]
    fn env_flag_prints_the_definitions_table() {
        let f = write_temp("e.xml", "<ul><li><ul><li/></ul></li></ul>");
        let out = run_args(&["infer", "--global", "--env", &f]).unwrap();
        assert!(out.contains("where"), "{out}");
        assert!(out.contains("ul = ul {"), "{out}");
        assert!(out.contains("li = li {"), "{out}");
        // Without --global the table flag is an error.
        assert!(run_args(&["infer", "--env", &f]).is_err());
        // A recursion-free corpus prints an empty table marker.
        let flat = write_temp("e2.xml", "<a><b/></a>");
        let out = run_args(&["infer", "--global", "--env", &flat]).unwrap();
        assert!(out.contains("(no global definitions)"), "{out}");
    }

    #[test]
    fn stream_mode_reports_parse_errors_with_positions() {
        let f = write_temp("se.json", "{\"a\": 1}\n{\"b\": @}\n");
        let err = run_args(&["infer", "--stream", &f]).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn stream_mode_rejects_record_free_input_like_the_oneshot_path() {
        // Both modes must reject input with nothing to infer from,
        // rather than --stream silently printing ⊥.
        for (name, content) in [
            ("e.json", "  \n "),
            ("e.xml", "<!-- only a comment -->"),
            ("e.csv", ""),
        ] {
            let f = write_temp(name, content);
            assert!(run_args(&["infer", &f]).is_err(), "{name} (one-shot)");
            let err = run_args(&["infer", "--stream", &f]).unwrap_err();
            assert!(
                err.contains("no records") || err.contains("no rows"),
                "{name} (stream): {err}"
            );
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_args(&["infer", "/nonexistent/x.json"]).is_err());
        assert!(run_args(&["bogus-command", "x.json"]).is_err());
        assert!(run_args(&["infer", "--format", "yaml", "x"]).is_err());
        let bad = write_temp("bad.json", "{");
        assert!(run_args(&["infer", &bad]).is_err());
    }
}
